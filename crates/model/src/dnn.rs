//! The sparse DNN model object and the serial reference inference.

use crate::spec::DnnSpec;
use fsd_sparse::{layer_forward_reference, CsrMatrix, SparseRows};

/// A generated sparse DNN: `spec.layers` square CSR matrices plus the
/// activation parameters. This is the "trained model" artifact that gets
/// partitioned offline and loaded (whole or in row blocks) by workers.
#[derive(Clone, Debug)]
pub struct SparseDnn {
    spec: DnnSpec,
    layers: Vec<CsrMatrix>,
}

/// Execution trace of a serial inference run: per-layer activation
/// statistics used as ground truth by tests and as workload descriptors by
/// the cost model's predictors.
#[derive(Clone, Debug, Default)]
pub struct InferenceTrace {
    /// Activation nnz entering each layer (index 0 = input batch).
    pub layer_input_nnz: Vec<usize>,
    /// Activation rows (neurons alive) entering each layer.
    pub layer_input_rows: Vec<usize>,
    /// Total multiply-add work units.
    pub work: u64,
}

impl SparseDnn {
    /// Wraps generated layers. Panics if any layer has the wrong shape —
    /// that is a generator bug, not a runtime condition.
    pub fn new(spec: DnnSpec, layers: Vec<CsrMatrix>) -> SparseDnn {
        assert_eq!(layers.len(), spec.layers, "layer count mismatch");
        for (k, l) in layers.iter().enumerate() {
            assert_eq!(l.rows(), spec.neurons, "layer {k} row count");
            assert_eq!(l.cols(), spec.neurons, "layer {k} col count");
        }
        SparseDnn { spec, layers }
    }

    /// The model's specification.
    pub fn spec(&self) -> &DnnSpec {
        &self.spec
    }

    /// Weight matrix of layer `k` (0-based).
    pub fn layer(&self, k: usize) -> &CsrMatrix {
        &self.layers[k]
    }

    /// All layers, in order.
    pub fn layers(&self) -> &[CsrMatrix] {
        &self.layers
    }

    /// Total stored weights across layers.
    pub fn total_nnz(&self) -> usize {
        self.layers.iter().map(|l| l.nnz()).sum()
    }

    /// Approximate in-memory bytes of the whole (unpartitioned) model —
    /// what FSD-Inf-Serial must fit into a single FaaS instance.
    pub fn mem_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.mem_bytes()).sum()
    }

    /// Runs the full network serially on `inputs`, returning the final
    /// activations. This is the ground-truth oracle: every distributed
    /// variant must produce exactly these rows.
    pub fn serial_inference(&self, inputs: &SparseRows) -> SparseRows {
        self.serial_inference_traced(inputs).0
    }

    /// [`SparseDnn::serial_inference`] plus a per-layer [`InferenceTrace`].
    pub fn serial_inference_traced(&self, inputs: &SparseRows) -> (SparseRows, InferenceTrace) {
        let mut trace = InferenceTrace::default();
        let mut x = inputs.clone();
        for w in &self.layers {
            trace.layer_input_nnz.push(x.nnz());
            trace.layer_input_rows.push(x.n_rows());
            let (next, work) = layer_forward_reference(w, &x, self.spec.bias, self.spec.clip);
            trace.work += work;
            x = next;
        }
        (x, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_dnn, generate_inputs};
    use crate::spec::InputSpec;

    fn small() -> SparseDnn {
        generate_dnn(&DnnSpec {
            neurons: 64,
            layers: 6,
            nnz_per_row: 8,
            bias: -0.05,
            clip: 32.0,
            seed: 11,
        })
    }

    #[test]
    fn accessors() {
        let dnn = small();
        assert_eq!(dnn.layers().len(), 6);
        assert_eq!(dnn.total_nnz(), 64 * 8 * 6);
        assert!(dnn.mem_bytes() > dnn.total_nnz() * 8);
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn new_rejects_wrong_layer_count() {
        let dnn = small();
        let spec = *dnn.spec();
        SparseDnn::new(spec, dnn.layers()[..3].to_vec());
    }

    #[test]
    fn serial_inference_is_deterministic_and_alive() {
        let dnn = small();
        let inputs = generate_inputs(64, &InputSpec::scaled(32, 5));
        let a = dnn.serial_inference(&inputs);
        let b = dnn.serial_inference(&inputs);
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "all activations died — weight/bias calibration broken"
        );
    }

    #[test]
    fn activations_respect_clip() {
        let dnn = small();
        let inputs = generate_inputs(64, &InputSpec::scaled(32, 5));
        let out = dnn.serial_inference(&inputs);
        for (_, _, vals) in out.iter() {
            assert!(
                vals.iter().all(|&v| v > 0.0 && v <= 32.0),
                "activation outside (0, 32]"
            );
        }
    }

    #[test]
    fn trace_records_every_layer() {
        let dnn = small();
        let inputs = generate_inputs(64, &InputSpec::scaled(32, 5));
        let (_, trace) = dnn.serial_inference_traced(&inputs);
        assert_eq!(trace.layer_input_nnz.len(), 6);
        assert_eq!(trace.layer_input_rows.len(), 6);
        assert_eq!(trace.layer_input_nnz[0], inputs.nnz());
        assert!(trace.work > 0);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let dnn = small();
        let out = dnn.serial_inference(&SparseRows::new(8));
        assert!(out.is_empty());
    }
}
