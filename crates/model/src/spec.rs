//! Model specifications mirroring the Sparse DNN Graph Challenge grid.

/// Parameters of a synthetic sparse DNN.
///
/// The Graph Challenge evaluates per-layer neuron counts
/// `N ∈ {1024, 4096, 16384, 65536}` with `L = 120` layers, ~32 connections
/// per neuron, ReLU clipped at 32, and a per-`N` bias. [`DnnSpec::paper`]
/// reproduces that grid; [`DnnSpec::scaled`] provides the reduced default
/// grid used by tests and the default benchmark scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnnSpec {
    /// Neurons per layer (`N`).
    pub neurons: usize,
    /// Number of fully-connected sparse layers (`L`).
    pub layers: usize,
    /// Incoming connections per neuron (Graph Challenge uses 32).
    pub nnz_per_row: usize,
    /// Bias added to every structurally nonzero pre-activation.
    pub bias: f32,
    /// ReLU clip ceiling (Graph Challenge thresholds activations at 32).
    pub clip: f32,
    /// Seed for the deterministic weight/topology generator.
    pub seed: u64,
}

impl DnnSpec {
    /// The bias the paper applies for each Graph Challenge neuron count
    /// (−0.30, −0.35, −0.40, −0.45 for N = 1024 … 65536). Other sizes
    /// interpolate on `log2(N)`.
    pub fn bias_for_neurons(neurons: usize) -> f32 {
        match neurons {
            1024 => -0.30,
            4096 => -0.35,
            16384 => -0.40,
            65536 => -0.45,
            n => {
                let l = (n.max(2) as f32).log2();
                // Linear in log2: matches the published points exactly.
                (-0.30 - (l - 10.0) * 0.025).clamp(-0.60, -0.10)
            }
        }
    }

    /// Paper-scale spec: `L = 120`, 32 connections/neuron, clip 32, and the
    /// published per-`N` bias.
    pub fn paper(neurons: usize, seed: u64) -> DnnSpec {
        DnnSpec {
            neurons,
            layers: 120,
            nnz_per_row: 32,
            bias: Self::bias_for_neurons(neurons),
            clip: 32.0,
            seed,
        }
    }

    /// Reduced-scale spec preserving the structural ratios: `L = 24` layers
    /// and 8 connections/neuron with the same published bias (the weight
    /// calibration in the generator adapts to `nnz_per_row`).
    pub fn scaled(neurons: usize, seed: u64) -> DnnSpec {
        DnnSpec {
            neurons,
            layers: 24,
            nnz_per_row: 8,
            bias: Self::bias_for_neurons(neurons),
            clip: 32.0,
            seed,
        }
    }

    /// Total structural nonzeros over all layers.
    pub fn total_nnz(&self) -> usize {
        self.neurons * self.nnz_per_row * self.layers
    }

    /// Estimated in-memory weight bytes (CSR: 8 per nnz + indptr).
    pub fn weight_bytes(&self) -> usize {
        self.total_nnz() * 8 + self.layers * (self.neurons + 1) * 8
    }
}

/// Parameters of a synthetic inference input batch.
///
/// The Graph Challenge uses 10 000 thresholded MNIST-like samples scaled to
/// `N` pixels and flattened; entries are binary. We reproduce that shape
/// with a seeded sparse binary generator concentrated on a leading
/// "image region" of the neuron space (MNIST upscaling leaves trailing
/// neurons dark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputSpec {
    /// Number of samples in the batch.
    pub batch: usize,
    /// Fraction of the neuron space that can be active in an input
    /// (the "image region"); MNIST-to-1024 upscaling keeps ≈ 0.77.
    pub active_region: f32,
    /// Probability that a pixel inside the region is lit.
    pub density: f32,
    /// Seed for the deterministic input generator.
    pub seed: u64,
}

impl InputSpec {
    /// Paper-scale batch: 10 000 samples, MNIST-like density.
    pub fn paper(seed: u64) -> InputSpec {
        InputSpec {
            batch: 10_000,
            active_region: 0.77,
            density: 0.15,
            seed,
        }
    }

    /// Reduced-scale batch for tests and default benches.
    pub fn scaled(batch: usize, seed: u64) -> InputSpec {
        InputSpec {
            batch,
            active_region: 0.77,
            density: 0.15,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_biases() {
        assert_eq!(DnnSpec::bias_for_neurons(1024), -0.30);
        assert_eq!(DnnSpec::bias_for_neurons(4096), -0.35);
        assert_eq!(DnnSpec::bias_for_neurons(16384), -0.40);
        assert_eq!(DnnSpec::bias_for_neurons(65536), -0.45);
    }

    #[test]
    fn interpolated_bias_is_monotone_and_bounded() {
        let mut last = 0.0f32;
        for n in [256usize, 512, 2048, 8192, 32768, 131072] {
            let b = DnnSpec::bias_for_neurons(n);
            assert!(
                (-0.60..=-0.10).contains(&b),
                "bias {b} out of range for {n}"
            );
            assert!(b < last, "bias must decrease with N");
            last = b;
        }
    }

    #[test]
    fn paper_spec_matches_benchmark() {
        let s = DnnSpec::paper(16384, 7);
        assert_eq!(s.layers, 120);
        assert_eq!(s.nnz_per_row, 32);
        assert_eq!(s.clip, 32.0);
        assert_eq!(s.total_nnz(), 16384 * 32 * 120);
    }

    #[test]
    fn weight_bytes_scale_with_n() {
        assert!(DnnSpec::paper(4096, 0).weight_bytes() > DnnSpec::paper(1024, 0).weight_bytes());
        assert!(DnnSpec::scaled(1024, 0).weight_bytes() < DnnSpec::paper(1024, 0).weight_bytes());
    }
}
