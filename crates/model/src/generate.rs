//! Deterministic synthetic sparse DNN and input generators.
//!
//! The Graph Challenge networks are RadiX-Net topologies: every neuron has a
//! fixed number of incoming connections and the per-layer permutation
//! "rotates" so that information from every input neuron can reach every
//! output neuron after a few layers. We reproduce that structure with a
//! seeded generator: row `i` of layer `k` connects to a strided, layer-
//! dependent window of the previous layer, plus per-edge jitter, so no two
//! layers share a sparsity pattern but each row has exactly `nnz_per_row`
//! entries.

use crate::dnn::SparseDnn;
use crate::spec::{DnnSpec, InputSpec};
use fsd_sparse::{CsrMatrix, SparseRows};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Expected fraction of (neuron, sample) pairs lit in a default input batch
/// (`active_region * density` of [`InputSpec::scaled`]); the weight
/// calibration anchors on it.
const DEFAULT_INPUT_ACTIVITY: f32 = 0.77 * 0.15;

/// Half-width of the uniform weight distribution.
///
/// Weights are zero-mean uniform on `[-a, a]`. The RMS is calibrated so the
/// pre-activation standard deviation is preserved layer to layer
/// (`σ_out ≈ σ_in`): `w_rms = γ / sqrt(nnz_per_row · q)` with activity
/// `q ≈` [`DEFAULT_INPUT_ACTIVITY`] and a mildly supercritical `γ = 1.15`
/// so magnitudes drift up into the ReLU clip rather than dying out. The
/// negative Graph Challenge bias then thresholds survival, which keeps the
/// alive fraction stable and sparse across arbitrarily deep stacks — the
/// property the benchmark's calibrated synthetic weights provide.
fn weight_scale(spec: &DnnSpec) -> f32 {
    let gamma = 1.15f32;
    let w_rms = gamma / (spec.nnz_per_row as f32 * DEFAULT_INPUT_ACTIVITY).sqrt();
    w_rms * 3.0f32.sqrt() // uniform[-a, a] has rms a/sqrt(3)
}

/// Generates all layer matrices for `spec`. Deterministic in `spec.seed`.
pub fn generate_dnn(spec: &DnnSpec) -> SparseDnn {
    assert!(
        spec.neurons >= spec.nnz_per_row,
        "need at least nnz_per_row neurons"
    );
    assert!(spec.neurons <= u32::MAX as usize, "neuron ids must fit u32");
    let mut layers = Vec::with_capacity(spec.layers);
    let scale = weight_scale(spec);
    // Fraction of long-range ("rewired") connections. RadiX-Net layers mix
    // locality (butterfly windows) with longer strides; a small-world blend
    // reproduces both properties: locality that a good partitioner can
    // exploit, and global mixing across a deep stack. Long-range targets are
    // *correlated within coarse neuron groups* — pruned/structured DNNs keep
    // correlated remote fan-in, which is exactly what lets hypergraph
    // partitioning beat random partitioning by the paper's ~1 OOM margin.
    const LONG_RANGE_DENOM: u64 = 8; // 1-in-8 edges ≈ 12.5%
    let group = (spec.neurons as u64 / 32).max(8); // long-range correlation granule
    for k in 0..spec.layers {
        let mut rng = StdRng::seed_from_u64(
            spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k as u64 + 1)),
        );
        // Window stride cycles through radix-style powers of two per layer.
        let spread = 1u64 << (k % 3);
        let n = spec.neurons as u64;
        let mut indptr = Vec::with_capacity(spec.neurons + 1);
        let mut indices = Vec::with_capacity(spec.neurons * spec.nnz_per_row);
        let mut values = Vec::with_capacity(spec.neurons * spec.nnz_per_row);
        indptr.push(0usize);
        let mut cols: Vec<u32> = Vec::with_capacity(spec.nnz_per_row);
        for i in 0..spec.neurons as u64 {
            cols.clear();
            for j in 0..spec.nnz_per_row as u64 {
                let c = if rng.gen_range(0..LONG_RANGE_DENOM) == 0 {
                    // Long-range edge shared by the whole group of `i`:
                    // every row in the group pulls the same remote columns.
                    splitmix(spec.seed ^ (i / group) << 20 ^ j << 8 ^ k as u64) % n
                } else {
                    // Local window around the neuron's own index.
                    let jitter = rng.gen_range(0..spread);
                    (i + j * spread + jitter) % n
                };
                cols.push(c as u32);
            }
            cols.sort_unstable();
            cols.dedup();
            // Top up collisions deterministically to keep exactly nnz_per_row.
            let mut probe = (i + 1) % n;
            while cols.len() < spec.nnz_per_row {
                let c = probe as u32;
                if let Err(pos) = cols.binary_search(&c) {
                    cols.insert(pos, c);
                }
                probe = (probe + spread) % n;
            }
            for &c in cols.iter() {
                indices.push(c);
                // Zero-mean weights; ReLU + the negative bias threshold then
                // control survival, as in the benchmark (see weight_scale).
                values.push(rng.gen_range(-scale..scale));
            }
            indptr.push(indices.len());
        }
        let m = CsrMatrix::new(spec.neurons, spec.neurons, indptr, indices, values)
            .expect("generator produces valid CSR");
        layers.push(m);
    }
    SparseDnn::new(*spec, layers)
}

/// SplitMix64 finalizer — a deterministic hash for correlated long-range
/// edge placement (independent of the per-layer RNG stream).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a sparse binary input batch shaped like thresholded MNIST
/// samples scaled to `neurons` pixels. Deterministic in `spec.seed`.
///
/// Output: a [`SparseRows`] with global row ids 0..neurons (rows with no lit
/// pixel are absent) and `spec.batch` columns.
pub fn generate_inputs(neurons: usize, spec: &InputSpec) -> SparseRows {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC0FF_EE00_D15E_A5E5);
    let region = ((neurons as f32 * spec.active_region) as usize).clamp(1, neurons);
    let mut block = SparseRows::new(spec.batch);
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<f32> = Vec::new();
    for row in 0..region as u32 {
        cols.clear();
        vals.clear();
        for sample in 0..spec.batch as u32 {
            if rng.gen::<f32>() < spec.density {
                cols.push(sample);
                vals.push(1.0);
            }
        }
        if !cols.is_empty() {
            block.push_row(row, &cols, &vals);
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DnnSpec {
        DnnSpec {
            neurons: 64,
            layers: 4,
            nnz_per_row: 8,
            bias: -0.1,
            clip: 32.0,
            seed: 42,
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate_dnn(&spec());
        let b = generate_dnn(&spec());
        for k in 0..a.spec().layers {
            assert_eq!(a.layer(k), b.layer(k), "layer {k} differs across runs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dnn(&spec());
        let mut s2 = spec();
        s2.seed = 43;
        let b = generate_dnn(&s2);
        assert_ne!(a.layer(0), b.layer(0));
    }

    #[test]
    fn every_row_has_exact_fanin() {
        let dnn = generate_dnn(&spec());
        for k in 0..4 {
            let m = dnn.layer(k);
            for r in 0..m.rows() {
                assert_eq!(m.row_nnz(r), 8, "layer {k} row {r}");
            }
        }
    }

    #[test]
    fn layers_have_distinct_patterns() {
        let dnn = generate_dnn(&spec());
        assert_ne!(dnn.layer(0), dnn.layer(1));
        assert_ne!(dnn.layer(1), dnn.layer(2));
    }

    #[test]
    fn weights_are_bounded_and_centered() {
        let dnn = generate_dnn(&spec());
        let a = 3.0f32.sqrt() * 1.15 / (8.0 * super::DEFAULT_INPUT_ACTIVITY).sqrt();
        let (mut sum, mut count) = (0.0f64, 0usize);
        for k in 0..4 {
            for (_, _, vals) in dnn.layer(k).iter_rows() {
                for &v in vals {
                    assert!(v.abs() <= a + 1e-6, "weight {v} outside [-{a}, {a}]");
                    sum += v as f64;
                    count += 1;
                }
            }
        }
        let mean = sum / count as f64;
        assert!(mean.abs() < 0.05, "weight mean {mean} not near zero");
    }

    #[test]
    fn activations_survive_deep_stacks() {
        // The calibration must keep a sparse-but-alive activation stream
        // through many layers (the paper runs L = 120).
        use crate::spec::InputSpec;
        let spec = DnnSpec {
            neurons: 128,
            layers: 40,
            nnz_per_row: 8,
            bias: -0.30,
            clip: 32.0,
            seed: 3,
        };
        let dnn = generate_dnn(&spec);
        let inputs = crate::generate::generate_inputs(128, &InputSpec::scaled(64, 3));
        let (out, trace) = dnn.serial_inference_traced(&inputs);
        assert!(
            !out.is_empty(),
            "activations died before layer {}",
            spec.layers
        );
        // Sparse: never saturates to a fully dense activation matrix.
        let cap = 128 * 64;
        for (k, &nnz) in trace.layer_input_nnz.iter().enumerate() {
            assert!(
                nnz < cap * 7 / 10,
                "layer {k} activations nearly dense ({nnz}/{cap})"
            );
        }
    }

    #[test]
    fn topology_is_mostly_local() {
        // Most connections sit in a bounded window near the row index (the
        // property hypergraph partitioning exploits); a minority are
        // long-range (the property that mixes the network across layers).
        let dnn = generate_dnn(&spec());
        let n = 64i64;
        let (mut local, mut total) = (0usize, 0usize);
        for k in 0..4 {
            let m = dnn.layer(k);
            let window = (8 * (1 << (k % 3)) + 8) as i64;
            for (r, cols, _) in m.iter_rows() {
                for &c in cols {
                    let d = (c as i64 - r as i64).rem_euclid(n);
                    if d <= window || d >= n - 2 {
                        local += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = local as f64 / total as f64;
        assert!(frac > 0.75, "only {frac:.2} of edges are local");
        assert!(frac < 0.999, "no long-range edges generated at all");
    }

    #[test]
    fn long_range_edges_reach_everywhere() {
        // With 12.5% rewiring, the union of all columns at distance > window
        // should cover a substantial part of the layer.
        let big = DnnSpec {
            neurons: 512,
            layers: 1,
            nnz_per_row: 8,
            bias: -0.1,
            clip: 32.0,
            seed: 5,
        };
        let dnn = generate_dnn(&big);
        let m = dnn.layer(0);
        let mut far = std::collections::HashSet::new();
        for (r, cols, _) in m.iter_rows() {
            for &c in cols {
                let d = (c as i64 - r as i64).rem_euclid(512);
                if d > 64 && d < 448 {
                    far.insert(c);
                }
            }
        }
        assert!(
            far.len() > 100,
            "long-range edges cover only {} columns",
            far.len()
        );
    }

    #[test]
    fn inputs_deterministic_and_binary() {
        let i1 = generate_inputs(64, &InputSpec::scaled(32, 9));
        let i2 = generate_inputs(64, &InputSpec::scaled(32, 9));
        assert_eq!(i1, i2);
        for (_, _, vals) in i1.iter() {
            assert!(vals.iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn inputs_respect_active_region() {
        let spec = InputSpec {
            batch: 16,
            active_region: 0.5,
            density: 0.9,
            seed: 1,
        };
        let inputs = generate_inputs(100, &spec);
        assert!(
            inputs.ids().iter().all(|&r| r < 50),
            "rows outside active region lit"
        );
        assert!(!inputs.is_empty());
    }

    #[test]
    fn input_density_roughly_matches() {
        let spec = InputSpec {
            batch: 200,
            active_region: 1.0,
            density: 0.2,
            seed: 3,
        };
        let inputs = generate_inputs(200, &spec);
        let frac = inputs.nnz() as f32 / (200.0 * 200.0);
        assert!((0.15..0.25).contains(&frac), "density {frac} far from 0.2");
    }
}
