//! # fsd-model — sparse DNN benchmark substrate
//!
//! Reproduces the role of the MIT/IEEE/Amazon Sparse DNN Graph Challenge in
//! the paper's evaluation: a deterministic generator for large, deep, sparse
//! networks ([`generate_dnn`]) and thresholded sparse input batches
//! ([`generate_inputs`]), plus the single-node reference inference that
//! serves as the ground-truth oracle ([`SparseDnn::serial_inference`]).
//!
//! ```
//! use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
//!
//! let spec = DnnSpec::scaled(256, 7);
//! let dnn = generate_dnn(&spec);
//! let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(16, 7));
//! let out = dnn.serial_inference(&inputs);
//! assert!(out.nnz() > 0);
//! ```
#![forbid(unsafe_code)]

mod dnn;
mod generate;
mod spec;

pub use dnn::{InferenceTrace, SparseDnn};
pub use generate::{generate_dnn, generate_inputs};
pub use spec::{DnnSpec, InputSpec};
