// BAD: opens a billing window it never closes.
pub fn serve(ctx: &mut WorkerCtx, item: &WorkItem) -> Output {
    ctx.begin_request(item.flow, item.dispatch_at);
    run_batches(ctx, item)
}
