// GOOD: begin/finish balance within the function body.
pub fn serve(ctx: &mut WorkerCtx, item: &WorkItem) -> Output {
    if item.warm {
        ctx.begin_request(item.flow, item.dispatch_at);
    }
    let out = run_batches(ctx, item);
    let report = ctx.finish_request();
    finish(out, report)
}
