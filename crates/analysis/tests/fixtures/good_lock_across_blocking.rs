// GOOD: drop the guard before blocking; condvar waits consume the guard
// (the lock is released atomically while parked).
pub fn drain(&self) {
    let guard = self.inner.lock();
    let batch = guard.take_batch();
    drop(guard);
    std::thread::sleep(Duration::from_millis(10));
    self.flush(batch);
}

pub fn park(&self) {
    let mut stopped = self.lock.lock();
    while !*stopped {
        let result = self.cvar.wait_timeout(&mut stopped, self.interval);
        if result.timed_out() {
            self.reap();
        }
    }
}
