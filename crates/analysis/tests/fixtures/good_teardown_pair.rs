// GOOD: every create/provision has a teardown twin in the same module.
pub fn create_session(&self, name: &str) -> Session {
    Session::new(name)
}

pub fn remove_session(&self, name: &str) {
    self.sessions.lock().remove(name);
}

pub fn provision_lanes(&self, n: usize) -> Lanes {
    Lanes::new(n)
}

pub fn teardown_lanes(&self, lanes: Lanes) {
    lanes.close();
}

pub fn insert_block(&self, key: &str) {
    self.blocks.lock().insert(key.to_string());
}

pub fn evict_block(&self, key: &str) {
    self.blocks.lock().remove(key);
}
