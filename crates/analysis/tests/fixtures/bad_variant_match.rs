// BAD: one match hides variants behind `_`, another behind a binding.
pub fn route(v: Variant) -> u32 {
    match v {
        Variant::Serial => 0,
        Variant::Queue => 1,
        _ => 2,
    }
}

pub fn passthrough(v: Variant) -> Variant {
    match v {
        Variant::Auto => Variant::Serial,
        other => other,
    }
}
