// BAD: four ways to crash a library crate.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect(&format!("no second in {xs:?}"))
}

pub fn third(kind: u8) -> u32 {
    match kind {
        0 => 0,
        _ => unreachable!(),
    }
}

pub fn fourth() -> u32 {
    panic!("not yet");
}
