// GOOD: every variant named; bindings constrained with `@` patterns.
pub fn route(v: Variant) -> u32 {
    match v {
        Variant::Serial => 0,
        Variant::Queue => 1,
        Variant::Object => 2,
        Variant::Hybrid => 3,
        Variant::Direct => 4,
        Variant::Auto => 5,
    }
}

pub fn passthrough(v: Variant) -> Variant {
    match v {
        Variant::Auto => Variant::Serial,
        o @ (Variant::Serial
        | Variant::Queue
        | Variant::Object
        | Variant::Hybrid
        | Variant::Direct) => o,
    }
}

pub fn not_a_variant_match(j: usize) -> Variant {
    // Variant only on the arm RHS: this is a match over an integer.
    match j % 3 {
        0 => Variant::Queue,
        1 => Variant::Object,
        _ => Variant::Serial,
    }
}
