// GOOD: structured errors, documented expects, and test code is exempt.
pub fn first(xs: &[u32]) -> Result<u32, Error> {
    xs.first().copied().ok_or(Error::Empty)
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.first().expect("callers verified non-empty above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
        if xs.len() > 1 {
            panic!("impossible");
        }
    }
}
