fn good_retry_over_put(opts: &Opts, lane: &mut VClock, store: &ObjectStore, key: &str) {
    // Re-PUT of the same key is idempotent: a retried attempt overwrites
    // its own partial effect.
    let (res, retries) = opts.retry.run(lane, |lane| {
        store.put(lane, "b", key, vec![1, 2, 3])
    });
    let _ = (res, retries);
}

fn good_receive_outside_policy(lane: &mut VClock, env: &CloudEnv, q: u32) {
    // Consuming receives are fine outside a retry closure.
    let msgs = env.queue(q).receive_wait(lane, 10);
    let _ = msgs;
}

fn good_unrelated_run(runner: &Runner, lane: &mut VClock) {
    // `.run(` on a non-retry receiver is not the policy's run.
    let out = runner.run(lane, |lane| lane.tick());
    let _ = out;
}
