// GOOD: the display form lives in *_name helpers; a const is the other
// sanctioned single-definition-point pattern.
pub const ARTIFACT_BUCKET: &str = "bucket-artifacts";

pub fn topic_name(topic: usize) -> String {
    format!("topic-{topic}")
}

pub fn queue_name(flow: u64, rank: u32) -> String {
    format!("fsd-f{flow}-q{rank}")
}

pub fn publish(topic: usize) -> String {
    topic_name(topic)
}
