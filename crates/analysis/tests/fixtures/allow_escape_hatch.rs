// Escape hatch: a documented allow silences exactly the named lint on the
// next source line, and nothing else.
pub fn replay(&self, model: &str) -> Service {
    self.service(model)
        // fsd_lint::allow(no-unwrap): replay drivers fail fast on
        // misconfigured traces, documented under # Panics.
        .unwrap_or_else(|| panic!("model {model:?} not registered"))
}

pub fn still_flagged(&self) -> u32 {
    self.count.checked_add(1).unwrap()
}
