// BAD: provisions resources with no teardown on the public surface.
pub fn create_session(&self, name: &str) -> Session {
    Session::new(name)
}

pub fn provision_lanes(&self, n: usize) -> Lanes {
    Lanes::new(n)
}

pub fn insert_block(&self, key: &str) {
    self.blocks.lock().insert(key.to_string());
}

// A generic remover is not the insert twin: eviction must be spelled out.
pub fn remove_block(&self, key: &str) {
    self.blocks.lock().remove(key);
}
