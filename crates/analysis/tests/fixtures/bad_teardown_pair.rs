// BAD: provisions resources with no teardown on the public surface.
pub fn create_session(&self, name: &str) -> Session {
    Session::new(name)
}

pub fn provision_lanes(&self, n: usize) -> Lanes {
    Lanes::new(n)
}
