fn bad_retry_over_receive(opts: &Opts, lane: &mut VClock, env: &CloudEnv, q: u32) {
    let (res, retries) = opts.retry.run(lane, |lane| {
        env.queue(q).receive_wait(lane, 10)
    });
    let _ = (res, retries);
}

fn bad_retry_over_delete(lane: &mut VClock, env: &CloudEnv, q: u32, handles: Vec<u64>) {
    let (res, _) = RetryPolicy::default().run(lane, |lane| {
        env.queue(q).delete_batch(lane, &handles)
    });
    let _ = res;
}
