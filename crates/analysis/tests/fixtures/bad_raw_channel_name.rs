// BAD: channel names assembled inline instead of via *_name helpers.
pub fn publish(topic: usize) -> String {
    format!("topic-{topic}")
}

pub fn stash(flow: u64, rank: u32) -> String {
    format!("fsd-f{flow}-q{rank}")
}
