// BAD: holds the pool lock while sleeping and while draining a channel.
pub fn drain(&self) {
    let guard = self.inner.lock();
    std::thread::sleep(Duration::from_millis(10));
    guard.flush();
}

pub fn pump(&self, rx: &Receiver<u32>) -> u32 {
    let mut total = self.total.lock();
    while let Ok(v) = rx.recv() {
        *total += v;
    }
    *total
}
