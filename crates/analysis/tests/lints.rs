//! Fixture tests: one known-bad and one known-good snippet per lint,
//! asserting the exact diagnostics (lint name + line) the scanner emits.
//! The fixtures live in `tests/fixtures/` — a directory the workspace
//! walker skips, so committed bad code never fails the real lint run.

use fsd_analysis::{lint_source, LintConfig};

fn variants() -> Vec<String> {
    ["Serial", "Queue", "Object", "Hybrid", "Direct", "Auto"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn cfg(path: &str) -> LintConfig {
    LintConfig {
        variants: variants(),
        path: path.to_string(),
    }
}

/// `(lint, line)` pairs of every finding, in sorted order.
fn findings(src: &str, path: &str) -> Vec<(&'static str, u32)> {
    lint_source(src, &cfg(path))
        .into_iter()
        .map(|f| (f.lint, f.line))
        .collect()
}

#[test]
fn variant_exhaustive_flags_catch_alls_and_gaps() {
    let bad = include_str!("fixtures/bad_variant_match.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![("variant-exhaustive", 3), ("variant-exhaustive", 11)]
    );
    let good = include_str!("fixtures/good_variant_match.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn variant_exhaustive_reports_missing_variant_names() {
    let bad = include_str!("fixtures/bad_variant_match.rs");
    let out = lint_source(bad, &cfg("crates/core/src/fixture.rs"));
    assert!(
        out[0].message.contains("Auto")
            && out[0].message.contains("Hybrid")
            && out[0].message.contains("Object"),
        "diagnostic must name the unnamed variants: {}",
        out[0].message
    );
}

#[test]
fn billing_pair_flags_unbalanced_windows() {
    let bad = include_str!("fixtures/bad_billing_pair.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![("billing-pair", 2)]
    );
    let good = include_str!("fixtures/good_billing_pair.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn raw_channel_name_flags_inline_literals() {
    let bad = include_str!("fixtures/bad_raw_channel_name.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![("raw-channel-name", 3), ("raw-channel-name", 7)]
    );
    let good = include_str!("fixtures/good_raw_channel_name.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn teardown_pair_flags_orphan_provisioners() {
    let bad = include_str!("fixtures/bad_teardown_pair.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![
            ("teardown-pair", 2),
            ("teardown-pair", 6),
            ("teardown-pair", 10),
        ]
    );
    let good = include_str!("fixtures/good_teardown_pair.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn teardown_pair_is_scoped_to_core_and_comm() {
    // The same orphan provisioners outside crates/core//crates/comm pass:
    // other crates do not manage cloud resources.
    let bad = include_str!("fixtures/bad_teardown_pair.rs");
    assert_eq!(findings(bad, "crates/sched/src/fixture.rs"), vec![]);
}

#[test]
fn no_unwrap_flags_the_panic_family() {
    let bad = include_str!("fixtures/bad_no_unwrap.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![
            ("no-unwrap", 3),
            ("no-unwrap", 7),
            ("no-unwrap", 13),
            ("no-unwrap", 18)
        ]
    );
    let good = include_str!("fixtures/good_no_unwrap.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn no_unwrap_exempts_tests_benches_and_bins() {
    let bad = include_str!("fixtures/bad_no_unwrap.rs");
    for path in [
        "crates/core/tests/fixture.rs",
        "crates/core/benches/fixture.rs",
        "crates/core/src/bin/tool.rs",
        "tests/fixture.rs",
    ] {
        assert_eq!(findings(bad, path), vec![], "{path} must be exempt");
    }
}

#[test]
fn lock_across_blocking_flags_live_guards() {
    let bad = include_str!("fixtures/bad_lock_across_blocking.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![("lock-across-blocking", 4), ("lock-across-blocking", 10)]
    );
    let good = include_str!("fixtures/good_lock_across_blocking.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn retry_idempotent_flags_consuming_ops_in_retry_closures() {
    let bad = include_str!("fixtures/bad_retry_idempotent.rs");
    assert_eq!(
        findings(bad, "crates/core/src/fixture.rs"),
        vec![("retry-idempotent", 3), ("retry-idempotent", 10)]
    );
    let good = include_str!("fixtures/good_retry_idempotent.rs");
    assert_eq!(findings(good, "crates/core/src/fixture.rs"), vec![]);
}

#[test]
fn allow_comment_silences_only_the_named_line() {
    let src = include_str!("fixtures/allow_escape_hatch.rs");
    // The documented panic! is silenced; the undocumented unwrap is not.
    assert_eq!(
        findings(src, "crates/core/src/fixture.rs"),
        vec![("no-unwrap", 11)]
    );
}
