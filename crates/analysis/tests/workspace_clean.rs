//! Self-check: `fsd_lint` over the real workspace reports zero findings.
//! This is the test CI leans on — any invariant regression anywhere in the
//! workspace fails here with the offending `path:line: [lint]` diagnostics.

use std::path::PathBuf;

#[test]
fn workspace_has_zero_lint_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf();
    let findings = fsd_analysis::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "fsd_lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn variant_enum_is_discovered_from_the_workspace() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let engine = std::fs::read_to_string(root.join("crates/core/src/engine.rs"))
        .expect("engine.rs readable");
    let variants = fsd_analysis::discover_variants_in(&engine).expect("Variant enum found");
    assert_eq!(
        variants,
        vec!["Serial", "Queue", "Object", "Hybrid", "Direct", "Auto"],
        "discovered variant set must track the enum declaration"
    );
}
