//! `fsd-lint`: a dependency-free, token-level static analyzer that enforces
//! FSD-Inference project invariants the compiler cannot see.
//!
//! The build container is offline, so there is no `syn`/`proc-macro2` to lean
//! on. Instead this crate ships a small hand-rolled lexer (comments, strings,
//! raw strings, char-vs-lifetime disambiguation, line numbers) and a set of
//! lint passes that work on the token stream plus a little shape recovery
//! (brace matching, `#[cfg(test)]` region tracking, match-arm splitting).
//!
//! Launch lints (all deny-by-default; see `ALL_LINTS`):
//!
//! | lint | invariant |
//! |------|-----------|
//! | `variant-exhaustive` | every `match` over `Variant` in non-test code names all variants — no `_` or binding catch-all, so adding a variant fails lint at every stale site |
//! | `billing-pair` | `.begin_request(..)` calls balance `.finish_request(..)` calls within a function body |
//! | `raw-channel-name` | queue/bucket/topic name literals (`fsd-f*`, `bucket-*`, `topic-*`) only appear inside `*_name` helper functions |
//! | `teardown-pair` | every `pub fn create_*`/`provision_*` in `crates/core`/`crates/comm` has a `remove_*`/`delete_*`/`teardown_*`/`destroy_*` twin in the same module; every `pub fn insert_*` has an `evict_*` twin |
//! | `no-unwrap` | no `.unwrap()`, bare/undocumented `.expect(..)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` in non-test library code |
//! | `lock-across-blocking` | a live `.lock()` guard must not be held across `.wait*(`/`.recv*(`/`sleep(` (condvar waits that consume the guard are recognized and allowed) |
//! | `retry-idempotent` | a `RetryPolicy` `.run(..)` closure must not call non-idempotent channel ops (`receive_wait`, `take_visible`, `poll`, `poll_and_stash`, `settle_receives`, `delete_batch`, `enqueue`) — a retried attempt repeats its calls, so only idempotent ops may sit inside one |
//!
//! Escape hatch: a comment containing `fsd_lint::allow(lint-name)` (optionally
//! a comma-separated list, optionally followed by `: reason`) suppresses those
//! lints on the comment's line and the next source line.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint name: non-exhaustive `match` over `Variant`.
pub const LINT_VARIANT_EXHAUSTIVE: &str = "variant-exhaustive";
/// Lint name: unbalanced `begin_request`/`finish_request` in a function body.
pub const LINT_BILLING_PAIR: &str = "billing-pair";
/// Lint name: raw channel-name string literal outside a `*_name` helper.
pub const LINT_RAW_CHANNEL_NAME: &str = "raw-channel-name";
/// Lint name: `create_*`/`provision_*`/`insert_*` without a teardown twin.
pub const LINT_TEARDOWN_PAIR: &str = "teardown-pair";
/// Lint name: `unwrap`/undocumented `expect`/`panic!`-family in library code.
pub const LINT_NO_UNWRAP: &str = "no-unwrap";
/// Lint name: mutex guard held across a blocking call.
pub const LINT_LOCK_BLOCKING: &str = "lock-across-blocking";
/// Lint name: non-idempotent op inside a `RetryPolicy::run` closure.
pub const LINT_RETRY_IDEMPOTENT: &str = "retry-idempotent";

/// Every lint this binary knows about, in diagnostic-name form.
pub const ALL_LINTS: [&str; 7] = [
    LINT_VARIANT_EXHAUSTIVE,
    LINT_BILLING_PAIR,
    LINT_RAW_CHANNEL_NAME,
    LINT_TEARDOWN_PAIR,
    LINT_NO_UNWRAP,
    LINT_LOCK_BLOCKING,
    LINT_RETRY_IDEMPOTENT,
];

/// A single diagnostic: `path:line: [lint] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line of the diagnostic anchor.
    pub line: u32,
    /// One of [`ALL_LINTS`].
    pub lint: &'static str,
    /// Human-readable explanation of the violated invariant.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file lint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// The full variant set of the workspace `Variant` enum. Empty disables
    /// the `variant-exhaustive` lint (e.g. before discovery has run).
    pub variants: Vec<String>,
    /// Workspace-relative path of the file; drives path-scoped rules
    /// (test/bench exemptions, core/comm-only lints) and diagnostics.
    pub path: String,
}

impl LintConfig {
    fn is_test_path(&self) -> bool {
        let p = &self.path;
        p.starts_with("tests/")
            || p.starts_with("benches/")
            || p.starts_with("examples/")
            || p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
    }

    fn is_bin_path(&self) -> bool {
        self.path.contains("/src/bin/")
    }

    fn is_core_or_comm(&self) -> bool {
        self.path.starts_with("crates/core/") || self.path.starts_with("crates/comm/")
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Word,
    Str,
    Num,
    Ch,
    Life,
    Sym,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: Kind,
    text: String,
    line: u32,
}

impl Tok {
    fn is_sym(&self, c: char) -> bool {
        self.kind == Kind::Sym && self.text.len() == 1 && self.text.starts_with(c)
    }

    fn is_word(&self, w: &str) -> bool {
        self.kind == Kind::Word && self.text == w
    }
}

/// Lines on which each lint is suppressed via `fsd_lint::allow(..)` comments.
type Allows = BTreeMap<u32, BTreeSet<String>>;

fn parse_allow_names(comment: &str) -> Vec<String> {
    let Some(start) = comment.find("fsd_lint::allow(") else {
        return Vec::new();
    };
    let rest = &comment[start + "fsd_lint::allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|n| n.trim().to_string())
        .filter(|n| !n.is_empty())
        .collect()
}

fn allowed(allows: &Allows, line: u32, lint: &str) -> bool {
    allows
        .get(&line)
        .is_some_and(|s| s.contains(lint) || s.contains("all"))
}

fn lex(src: &str) -> (Vec<Tok>, Allows) {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    // (comment line, lint names) — resolved to an Allows map after lexing,
    // once token positions are known.
    let mut directives: Vec<(u32, Vec<String>)> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let count_newlines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let names = parse_allow_names(&text);
            if !names.is_empty() {
                directives.push((line, names));
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = bytes[start..i.min(n)].iter().collect();
            let names = parse_allow_names(&text);
            if !names.is_empty() {
                directives.push((start_line, names));
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i;
            if c == 'b' && bytes[j + 1] == 'r' {
                j += 1;
            }
            if bytes[j] == 'r' || (c == 'r' && j == i) {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && bytes[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && bytes[k] == '"' && (bytes[j] == 'r') {
                    // Scan to closing quote followed by `hashes` hashes.
                    let body_start = k + 1;
                    let mut m = body_start;
                    while m < n {
                        if bytes[m] == '"' {
                            let mut h = 0usize;
                            while m + 1 + h < n && h < hashes && bytes[m + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                break;
                            }
                        }
                        m += 1;
                    }
                    let text: String = bytes[body_start..m.min(n)].iter().collect();
                    line += count_newlines(&bytes[i..m.min(n)]);
                    toks.push(Tok {
                        kind: Kind::Str,
                        text,
                        line,
                    });
                    i = (m + 1 + hashes).min(n);
                    continue;
                }
            }
        }
        // Plain / byte string.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let body_start = j;
            while j < n {
                if bytes[j] == '\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == '"' {
                    break;
                }
                if bytes[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            let text: String = bytes[body_start..j.min(n)].iter().collect();
            toks.push(Tok {
                kind: Kind::Str,
                text,
                line: start_line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = bytes.get(i + 1).copied().unwrap_or(' ');
            let after = bytes.get(i + 2).copied().unwrap_or(' ');
            if (next.is_alphabetic() || next == '_') && after != '\'' {
                // Lifetime.
                let mut j = i + 1;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: Kind::Life,
                    text: bytes[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: 'x', '\n', '\u{..}'.
            let mut j = i + 1;
            while j < n {
                if bytes[j] == '\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == '\'' {
                    break;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: Kind::Ch,
                text: String::new(),
                line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Ident / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: Kind::Word,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number (digits plus alnum/`.`/`_` continuation: 0xff, 1_000, 1.5e3).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (bytes[i].is_alphanumeric()
                    || bytes[i] == '_'
                    || (bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            toks.push(Tok {
                kind: Kind::Num,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        toks.push(Tok {
            kind: Kind::Sym,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    // A directive covers its own line (trailing comments) and the line of
    // the next code token after it, however many comment lines intervene.
    let mut allows = Allows::new();
    for (cline, names) in directives {
        let mut lines = vec![cline];
        if let Some(next) = toks.iter().find(|t| t.line > cline) {
            lines.push(next.line);
        }
        for l in lines {
            allows.entry(l).or_default().extend(names.iter().cloned());
        }
    }
    (toks, allows)
}

// ---------------------------------------------------------------------------
// Shape recovery helpers
// ---------------------------------------------------------------------------

/// Index of the matching close token for the open bracket at `open`, or the
/// stream end if unbalanced.
fn matching_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks.get(open).map(|t| t.text.as_str()) {
        Some("{") => ('{', '}'),
        Some("(") => ('(', ')'),
        Some("[") => ('[', ']'),
        _ => return open,
    };
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_sym(o) {
            depth += 1;
        } else if t.is_sym(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Marks each token as test code: inside an item carrying a `#[cfg(test)]` or
/// `#[test]`-family attribute (attribute detection + brace matching).
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_sym('#') && toks.get(i + 1).is_some_and(|t| t.is_sym('[')) {
            let close = matching_close(toks, i + 1);
            let attr_words: Vec<&str> = toks[i + 1..=close.min(toks.len() - 1)]
                .iter()
                .filter(|t| t.kind == Kind::Word)
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr = attr_words.first() == Some(&"test")
                || (attr_words.contains(&"cfg") && attr_words.contains(&"test"));
            if is_test_attr {
                // Find the item body: first `{` before any top-level `;`.
                let mut j = close + 1;
                let mut depth = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if depth == 0 && t.is_sym('{') {
                        let end = matching_close(toks, j);
                        for m in mask.iter_mut().take(end + 1).skip(i) {
                            *m = true;
                        }
                        break;
                    }
                    if depth == 0 && t.is_sym(';') {
                        // `#[cfg(test)] use ...;` — only the statement is test.
                        for m in mask.iter_mut().take(j + 1).skip(i) {
                            *m = true;
                        }
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// For each token index, the name of the innermost enclosing `fn`, if any.
fn fn_context(toks: &[Tok]) -> Vec<Option<String>> {
    let mut ctx: Vec<Option<String>> = vec![None; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_word("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == Kind::Word {
                    let name = name_tok.text.clone();
                    // Body: first `{` at zero ()/[]/<-free depth after the
                    // parameter list. Track only ()/[] — generics `<>` are
                    // ambiguous with comparisons and never contain `{`
                    // in signatures we lint.
                    let mut j = i + 2;
                    let mut depth = 0i32;
                    while j < toks.len() {
                        let t = &toks[j];
                        if depth == 0 && t.is_sym('{') {
                            let end = matching_close(toks, j);
                            for slot in ctx.iter_mut().take(end + 1).skip(j) {
                                *slot = Some(name.clone());
                            }
                            break;
                        }
                        if depth == 0 && t.is_sym(';') {
                            break; // trait method declaration, no body
                        }
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
        }
        i += 1;
    }
    ctx
}

// ---------------------------------------------------------------------------
// Lint passes
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    toks: &'a [Tok],
    test: &'a [bool],
    allows: &'a Allows,
    cfg: &'a LintConfig,
}

impl FileCtx<'_> {
    fn push(&self, out: &mut Vec<Finding>, line: u32, lint: &'static str, message: String) {
        if !allowed(self.allows, line, lint) {
            out.push(Finding {
                file: self.cfg.path.clone(),
                line,
                lint,
                message,
            });
        }
    }
}

/// Lint 1: `variant-exhaustive`.
fn lint_variant_exhaustive(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.cfg.variants.is_empty() {
        return;
    }
    let toks = ctx.toks;
    let full: BTreeSet<&str> = ctx.cfg.variants.iter().map(String::as_str).collect();
    for i in 0..toks.len() {
        if !toks[i].is_word("match") || ctx.test[i] {
            continue;
        }
        // Locate the match body `{`: first top-level brace after the scrutinee.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if depth == 0 && t.is_sym('{') {
                body_open = Some(j);
                break;
            }
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let close = matching_close(toks, open);

        // Split arms: boundaries are depth-0 `,` and depth-0 block closes.
        let mut named: BTreeSet<String> = BTreeSet::new();
        let mut has_catch_all = false;
        let mut mentions_variant = false;
        let mut depth = 0i32;
        let mut arm_start = open + 1;
        let mut k = open + 1;
        while k < close {
            let t = &toks[k];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        arm_start = k + 1; // block-bodied arm just ended
                    }
                }
                "," if depth == 0 => arm_start = k + 1,
                "=" if depth == 0 && toks.get(k + 1).is_some_and(|t| t.is_sym('>')) => {
                    // Pattern tokens: arm_start..k, guard stripped.
                    let mut pat: Vec<&Tok> = Vec::new();
                    for p in toks.iter().take(k).skip(arm_start) {
                        if p.is_word("if") {
                            break;
                        }
                        pat.push(p);
                    }
                    // Collect `Variant::Name` mentions.
                    for w in 0..pat.len() {
                        if pat[w].is_word("Variant")
                            && pat.get(w + 1).is_some_and(|t| t.is_sym(':'))
                            && pat.get(w + 2).is_some_and(|t| t.is_sym(':'))
                        {
                            mentions_variant = true;
                            if let Some(name) = pat.get(w + 3) {
                                if name.kind == Kind::Word {
                                    named.insert(name.text.clone());
                                }
                            }
                        }
                    }
                    // Catch-all: a lone `_` or a lone lowercase binding.
                    let non_trivial: Vec<&&Tok> = pat
                        .iter()
                        .filter(|t| !t.is_word("mut") && !t.is_word("ref"))
                        .collect();
                    if non_trivial.len() == 1 {
                        let only = non_trivial[0];
                        let lone_binding = only.kind == Kind::Word
                            && only
                                .text
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_lowercase() || c == '_');
                        if only.is_sym('_') || lone_binding {
                            has_catch_all = true;
                        }
                    }
                    // Skip past `=>` so `>` is not miscounted.
                    k += 1;
                }
                _ => {}
            }
            k += 1;
        }

        if mentions_variant {
            let missing: Vec<&str> = full
                .iter()
                .filter(|v| !named.contains(**v))
                .copied()
                .collect();
            if has_catch_all || !missing.is_empty() {
                let mut why = Vec::new();
                if has_catch_all {
                    why.push("catch-all arm".to_string());
                }
                if !missing.is_empty() {
                    why.push(format!("unnamed variants: {}", missing.join(", ")));
                }
                ctx.push(
                    out,
                    toks[i].line,
                    LINT_VARIANT_EXHAUSTIVE,
                    format!(
                        "match over Variant must name every variant explicitly ({})",
                        why.join("; ")
                    ),
                );
            }
        }
    }
}

/// Lint 2: `billing-pair`.
fn lint_billing_pair(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_word("fn") && !ctx.test[i] {
            let name = toks
                .get(i + 1)
                .filter(|t| t.kind == Kind::Word)
                .map(|t| t.text.clone());
            // Find the body.
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                if depth == 0 && toks[j].is_sym('{') {
                    break;
                }
                if depth == 0 && toks[j].is_sym(';') {
                    j = toks.len();
                    break;
                }
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() {
                i += 1;
                continue;
            }
            let close = matching_close(toks, j);
            let mut begins = 0usize;
            let mut finishes = 0usize;
            for k in j..close {
                if toks[k].is_sym('.') && toks.get(k + 2).is_some_and(|t| t.is_sym('(')) {
                    if toks[k + 1].is_word("begin_request") {
                        begins += 1;
                    } else if toks[k + 1].is_word("finish_request") {
                        finishes += 1;
                    }
                }
            }
            if begins != finishes {
                ctx.push(
                    out,
                    toks[i].line,
                    LINT_BILLING_PAIR,
                    format!(
                        "fn {} has {} begin_request call(s) but {} finish_request call(s); billing windows must pair within a function body",
                        name.unwrap_or_else(|| "<anon>".into()),
                        begins,
                        finishes
                    ),
                );
            }
        }
        i += 1;
    }
}

/// Lint 3: `raw-channel-name`.
fn lint_raw_channel_name(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let fns = fn_context(ctx.toks);
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != Kind::Str || ctx.test[i] {
            continue;
        }
        let s = &t.text;
        let channel_like = {
            // `fsd-f<digit-or-brace>`: a flow-namespaced channel name.
            let flow = s.len() > 5
                && s.starts_with("fsd-f")
                && s[5..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '{');
            flow || s.starts_with("bucket-") || s.starts_with("topic-")
        };
        if !channel_like {
            continue;
        }
        match &fns[i] {
            // Literals outside any fn are named consts — the sanctioned
            // single-definition-point pattern.
            None => continue,
            Some(f) if f.ends_with("_name") => continue,
            Some(f) => ctx.push(
                out,
                t.line,
                LINT_RAW_CHANNEL_NAME,
                format!(
                    "channel-name-like literal \"{s}\" in fn {f}; construct names via a *_name helper (queue_name/bucket_name/topic_name)"
                ),
            ),
        }
    }
}

/// Lint 4: `teardown-pair` (scoped to `crates/core` and `crates/comm`).
fn lint_teardown_pair(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.cfg.is_core_or_comm() {
        return;
    }
    let toks = ctx.toks;
    // Collect `pub fn <name>` along with the token index of the name.
    let mut pub_fns: Vec<(String, u32, usize)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_word("pub") && !ctx.test[i] {
            // Allow `pub(crate) fn` / `pub fn`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_sym('(')) {
                j = matching_close(toks, j) + 1;
            }
            if toks.get(j).is_some_and(|t| t.is_word("fn")) {
                if let Some(name) = toks.get(j + 1) {
                    if name.kind == Kind::Word {
                        pub_fns.push((name.text.clone(), name.line, i));
                    }
                }
            }
        }
    }
    let names: BTreeSet<&str> = pub_fns.iter().map(|(n, _, _)| n.as_str()).collect();
    for (name, line, _) in &pub_fns {
        // `insert_*` populates a shared container and must be paired with
        // an `evict_*` on the same surface; `create_*`/`provision_*` stand
        // up cloud state and accept the wider teardown vocabulary.
        let (twins, expected) = if let Some(s) = name.strip_prefix("insert_") {
            (vec![format!("evict_{s}")], format!("evict_{s}"))
        } else if let Some(s) = name
            .strip_prefix("create_")
            .or_else(|| name.strip_prefix("provision_"))
        {
            (
                vec![
                    format!("remove_{s}"),
                    format!("delete_{s}"),
                    format!("teardown_{s}"),
                    format!("destroy_{s}"),
                ],
                format!("one of remove_{s}/delete_{s}/teardown_{s}/destroy_{s}"),
            )
        } else {
            continue;
        };
        if !twins.iter().any(|t| names.contains(t.as_str())) {
            ctx.push(
                out,
                *line,
                LINT_TEARDOWN_PAIR,
                format!("pub fn {name} has no teardown twin (expected {expected} in this module)"),
            );
        }
    }
}

/// Lint 5: `no-unwrap`.
fn lint_no_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.cfg.is_bin_path() {
        return; // CLI binaries may fail fast on bad input.
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(..)` method calls.
        if t.is_sym('.') {
            let Some(m) = toks.get(i + 1) else { continue };
            if !toks.get(i + 2).is_some_and(|t| t.is_sym('(')) {
                continue;
            }
            if m.is_word("unwrap") {
                ctx.push(
                    out,
                    m.line,
                    LINT_NO_UNWRAP,
                    "unwrap() in library code; return a structured error or use expect(\"<invariant>\")".into(),
                );
            } else if m.is_word("expect") {
                // Allowed only with a non-empty string-literal invariant message.
                let arg = toks.get(i + 3);
                let documented =
                    arg.is_some_and(|a| a.kind == Kind::Str && !a.text.trim().is_empty());
                if !documented {
                    ctx.push(
                        out,
                        m.line,
                        LINT_NO_UNWRAP,
                        "expect() without a literal invariant message; document why this cannot fail".into(),
                    );
                }
            }
        }
        // `panic!` family macros.
        if t.kind == Kind::Word
            && toks.get(i + 1).is_some_and(|n| n.is_sym('!'))
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            // Skip definitions/paths like `std::panic::catch_unwind` (no `!`)
            // — already filtered by requiring `!`.
            ctx.push(
                out,
                t.line,
                LINT_NO_UNWRAP,
                format!(
                    "{}! in library code; return a structured error (or add an fsd_lint::allow with the invariant)",
                    t.text
                ),
            );
        }
    }
}

/// Lint 6: `lock-across-blocking`.
fn lint_lock_across_blocking(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    const BLOCKING: [&str; 7] = [
        "wait",
        "wait_for",
        "wait_timeout",
        "wait_while",
        "recv",
        "recv_timeout",
        "sleep",
    ];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_word("let") || ctx.test[i] {
            i += 1;
            continue;
        }
        // Statement: let [mut] NAME ... = ... ;  — look for `.lock()` inside.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_word("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != Kind::Word {
            i += 1;
            continue;
        }
        let guard = name_tok.text.clone();
        // Find statement end `;` at relative depth 0.
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut has_lock = false;
        while k < toks.len() {
            let t = &toks[k];
            if depth == 0 && t.is_sym(';') {
                break;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                _ => {}
            }
            if t.is_sym('.')
                && toks.get(k + 1).is_some_and(|t| t.is_word("lock"))
                && toks.get(k + 2).is_some_and(|t| t.is_sym('('))
            {
                // The binding is a guard only if `.lock()` terminates the
                // initializer (optionally via `.unwrap()`/`.expect(..)`).
                // `lock().expect(..).get_mut(..)...` yields a value extracted
                // under a temporary guard that drops at statement end.
                let mut idx = matching_close(toks, k + 2) + 1;
                while toks.get(idx).is_some_and(|t| t.is_sym('.'))
                    && toks
                        .get(idx + 1)
                        .is_some_and(|t| t.is_word("unwrap") || t.is_word("expect"))
                    && toks.get(idx + 2).is_some_and(|t| t.is_sym('('))
                {
                    idx = matching_close(toks, idx + 2) + 1;
                }
                if toks.get(idx).is_some_and(|t| t.is_sym(';')) {
                    has_lock = true;
                }
            }
            k += 1;
        }
        if !has_lock {
            i = k;
            continue;
        }
        // Scan from the end of the statement to the close of the enclosing
        // block; flag blocking calls unless the guard is consumed by them
        // (condvar-style `cvar.wait(&mut guard)` releases the lock) or
        // dropped first.
        let mut m = k + 1;
        let mut bdepth = 0i32;
        while m < toks.len() {
            let t = &toks[m];
            match t.text.as_str() {
                "{" => bdepth += 1,
                "}" => {
                    bdepth -= 1;
                    if bdepth < 0 {
                        break; // enclosing block closed; guard dropped
                    }
                }
                _ => {}
            }
            // drop(guard) ends the window.
            if t.is_word("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_sym('('))
                && toks.get(m + 2).is_some_and(|t| t.is_word(&guard))
            {
                break;
            }
            // Re-assignment shadows the binding; stop tracking.
            if t.is_word("let")
                && (toks.get(m + 1).is_some_and(|t| t.is_word(&guard))
                    || (toks.get(m + 1).is_some_and(|t| t.is_word("mut"))
                        && toks.get(m + 2).is_some_and(|t| t.is_word(&guard))))
            {
                break;
            }
            if t.kind == Kind::Word
                && BLOCKING.contains(&t.text.as_str())
                && toks.get(m + 1).is_some_and(|t| t.is_sym('('))
            {
                // Allowed if the guard itself is an argument (condvar wait
                // atomically releases the lock).
                let close = matching_close(toks, m + 1);
                let consumes_guard = toks[m + 1..=close.min(toks.len() - 1)]
                    .iter()
                    .any(|a| a.is_word(&guard));
                if !consumes_guard {
                    ctx.push(
                        out,
                        t.line,
                        LINT_LOCK_BLOCKING,
                        format!(
                            "blocking call `{}(` while mutex guard `{}` (locked at line {}) is still live; drop the guard first",
                            t.text, guard, name_tok.line
                        ),
                    );
                    break; // one diagnostic per guard is enough
                }
            }
            m += 1;
        }
        i = k + 1;
    }
}

/// Lint 7: `retry-idempotent`.
///
/// A retried attempt repeats every call its closure makes, so only
/// idempotent ops (re-PUT same key, re-GET, re-publish of a deduped
/// record) may run under a `RetryPolicy`. Consuming/destructive ops —
/// receives that pop messages, visibility takes, deletes, scheduler
/// enqueues — would double their effect on retry.
fn lint_retry_idempotent(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const NON_IDEMPOTENT: [&str; 7] = [
        "receive_wait",
        "take_visible",
        "poll",
        "poll_and_stash",
        "settle_receives",
        "delete_batch",
        "enqueue",
    ];
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.test[i] || !toks[i].is_word("run") {
            continue;
        }
        if i == 0 || !toks[i - 1].is_sym('.') || !toks.get(i + 1).is_some_and(|t| t.is_sym('(')) {
            continue;
        }
        // Receiver must be retry-ish: a `retry` field/binding or a
        // `RetryPolicy` constructor within the few tokens leading up to
        // the `.run(` (e.g. `self.opts.retry.run(` or
        // `RetryPolicy::default().run(`).
        let lookback_start = i.saturating_sub(8);
        let retry_ish = toks[lookback_start..i]
            .iter()
            .any(|t| t.is_word("retry") || t.is_word("RetryPolicy"));
        if !retry_ish {
            continue;
        }
        let close = matching_close(toks, i + 1);
        for k in i + 2..close {
            let t = &toks[k];
            if t.kind == Kind::Word
                && NON_IDEMPOTENT.contains(&t.text.as_str())
                && toks.get(k + 1).is_some_and(|n| n.is_sym('('))
            {
                ctx.push(
                    out,
                    t.line,
                    LINT_RETRY_IDEMPOTENT,
                    format!(
                        "non-idempotent op `{}(` inside a RetryPolicy::run closure (entered at line {}); a retry repeats its calls, so only idempotent ops may run under the policy",
                        t.text,
                        toks[i].line
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Lint a single source string under `cfg`. This is the unit the fixture
/// tests drive directly; `lint_workspace` calls it per file.
pub fn lint_source(src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let (toks, allows) = lex(src);
    let test = test_mask(&toks);
    let ctx = FileCtx {
        toks: &toks,
        test: &test,
        allows: &allows,
        cfg,
    };
    let mut out = Vec::new();
    if !cfg.is_test_path() {
        lint_variant_exhaustive(&ctx, &mut out);
        lint_billing_pair(&ctx, &mut out);
        lint_raw_channel_name(&ctx, &mut out);
        lint_teardown_pair(&ctx, &mut out);
        lint_no_unwrap(&ctx, &mut out);
        lint_lock_across_blocking(&ctx, &mut out);
        lint_retry_idempotent(&ctx, &mut out);
    }
    out.sort();
    out
}

/// Extract the variant names of `pub enum Variant { ... }` from a source
/// string, if the file defines it.
pub fn discover_variants_in(src: &str) -> Option<Vec<String>> {
    let (toks, _) = lex(src);
    for i in 0..toks.len() {
        if toks[i].is_word("enum") && toks.get(i + 1).is_some_and(|t| t.is_word("Variant")) {
            // Find the body brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_sym('{') {
                j += 1;
            }
            if j >= toks.len() {
                return None;
            }
            let close = matching_close(&toks, j);
            let mut names = Vec::new();
            let mut depth = 0i32;
            for k in j..=close {
                match toks[k].text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    _ => {}
                }
                // Variant idents sit at depth 1 and are followed by `,`, `}`,
                // `(`, `{`, or `=`.
                if depth == 1
                    && toks[k].kind == Kind::Word
                    && toks[k]
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_uppercase())
                    && toks.get(k + 1).is_some_and(|t| {
                        t.is_sym(',')
                            || t.is_sym('}')
                            || t.is_sym('(')
                            || t.is_sym('{')
                            || t.is_sym('=')
                    })
                {
                    names.push(toks[k].text.clone());
                }
            }
            if !names.is_empty() {
                return Some(names);
            }
        }
    }
    None
}

fn should_skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "fixtures" | "shims" | ".github")
}

/// Recursively collect workspace `.rs` files (skipping `target`, `.git`,
/// `fixtures`, and the vendored `shims`), returned as root-relative paths in
/// deterministic order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !should_skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_path_buf());
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every workspace source file under `root`. Discovers the `Variant`
/// enum automatically so the exhaustiveness lint self-updates when new
/// variants land.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_rs_files(root)?;
    let mut variants = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        if variants.is_empty() {
            if let Some(v) = discover_variants_in(&src) {
                variants = v;
            }
        }
        sources.push((rel.to_string_lossy().replace('\\', "/"), src));
    }
    let mut out = Vec::new();
    for (path, src) in &sources {
        let cfg = LintConfig {
            variants: variants.clone(),
            path: path.clone(),
        };
        out.extend(lint_source(src, &cfg));
    }
    out.sort();
    Ok(out)
}
