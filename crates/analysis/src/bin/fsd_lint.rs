//! `fsd_lint`: walk the workspace and enforce FSD-Inference project
//! invariants. Exits 0 when clean, 1 with `path:line: [lint] message`
//! diagnostics otherwise, 2 on I/O errors.
//!
//! Usage: `cargo run -p fsd-analysis --bin fsd_lint [workspace-root]`

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> PathBuf {
    // Start from the crate manifest dir (works under `cargo run`) or the
    // current dir, and walk up to the first Cargo.toml with a [workspace].
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(find_workspace_root);
    match fsd_analysis::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("fsd_lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("fsd_lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fsd_lint: error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
