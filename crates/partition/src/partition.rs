//! Partition assignments and the simple baseline schemes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A `P`-way assignment of vertices (neurons) to parts (workers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    n_parts: usize,
    assignment: Vec<u32>,
    owned: Vec<Vec<u32>>,
}

impl Partition {
    /// Wraps an assignment vector. Panics on out-of-range parts; empty parts
    /// are allowed (a worker may own no rows under adversarial inputs).
    pub fn new(n_parts: usize, assignment: Vec<u32>) -> Partition {
        assert!(n_parts > 0, "need at least one part");
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
        for (v, &p) in assignment.iter().enumerate() {
            assert!(
                (p as usize) < n_parts,
                "part {p} out of range for vertex {v}"
            );
            owned[p as usize].push(v as u32);
        }
        Partition {
            n_parts,
            assignment,
            owned,
        }
    }

    /// Number of parts.
    #[inline]
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// The raw assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Sorted vertex ids owned by part `p`.
    #[inline]
    pub fn owned(&self, p: u32) -> &[u32] {
        &self.owned[p as usize]
    }

    /// Per-part load under the given vertex weights.
    pub fn loads(&self, weights: &[u32]) -> Vec<u64> {
        let mut loads = vec![0u64; self.n_parts];
        for (v, &p) in self.assignment.iter().enumerate() {
            loads[p as usize] += weights[v] as u64;
        }
        loads
    }

    /// Load imbalance `max_load / avg_load - 1` (0 = perfectly balanced).
    pub fn imbalance(&self, weights: &[u32]) -> f64 {
        let loads = self.loads(weights);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.n_parts as f64;
        let max = *loads.iter().max().expect("non-empty") as f64;
        max / avg - 1.0
    }
}

/// Random balanced partition — the paper's "RP" baseline (PaToH's random
/// scheme): a seeded shuffle dealt round-robin, so part sizes differ by at
/// most one vertex but content is random.
pub fn random_partition(n_vertices: usize, n_parts: usize, seed: u64) -> Partition {
    let mut order: Vec<u32> = (0..n_vertices as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ RANDOM_SEED_SALT);
    order.shuffle(&mut rng);
    let mut assignment = vec![0u32; n_vertices];
    for (i, &v) in order.iter().enumerate() {
        assignment[v as usize] = (i % n_parts) as u32;
    }
    Partition::new(n_parts, assignment)
}

const RANDOM_SEED_SALT: u64 = 0xB10C_0000_0000_0001;

/// Contiguous block partition balanced by vertex weight: part boundaries are
/// chosen so cumulative weight is as even as possible while keeping vertex
/// ranges contiguous.
pub fn block_partition(weights: &[u32], n_parts: usize) -> Partition {
    let n = weights.len();
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut assignment = vec![0u32; n];
    let mut acc = 0u64;
    let mut part = 0u32;
    for v in 0..n {
        // Advance to the next part when this part's weight share is met.
        let target = (part as u64 + 1) * total / n_parts as u64;
        if acc >= target && (part as usize) < n_parts - 1 {
            part += 1;
        }
        assignment[v] = part;
        acc += weights[v] as u64;
    }
    Partition::new(n_parts, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_builds_owned_lists() {
        let p = Partition::new(3, vec![2, 0, 2, 1]);
        assert_eq!(p.owned(0), &[1]);
        assert_eq!(p.owned(1), &[3]);
        assert_eq!(p.owned(2), &[0, 2]);
        assert_eq!(p.part_of(2), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_bad_part() {
        Partition::new(2, vec![0, 5]);
    }

    #[test]
    fn empty_parts_are_allowed() {
        let p = Partition::new(4, vec![0, 0]);
        assert!(p.owned(3).is_empty());
        assert_eq!(p.loads(&[1, 1]), vec![2, 0, 0, 0]);
    }

    #[test]
    fn random_partition_is_balanced_and_seeded() {
        let a = random_partition(100, 7, 1);
        let b = random_partition(100, 7, 1);
        let c = random_partition(100, 7, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let loads = a.loads(&vec![1u32; 100]);
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin must balance to within 1");
    }

    #[test]
    fn random_partition_is_not_contiguous() {
        let p = random_partition(1000, 4, 3);
        // A contiguous partition has exactly n_parts-1 boundaries; random has many.
        let switches = p.assignment().windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches > 100,
            "only {switches} part switches — suspiciously contiguous"
        );
    }

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let weights = vec![1u32; 103];
        let p = block_partition(&weights, 4);
        let switches = p.assignment().windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 3);
        assert!(
            p.imbalance(&weights) < 0.05,
            "imbalance {}",
            p.imbalance(&weights)
        );
    }

    #[test]
    fn block_partition_handles_skewed_weights() {
        let mut weights = vec![1u32; 100];
        weights[0] = 1000; // one huge vertex
        let p = block_partition(&weights, 4);
        // The heavy vertex forces part 0 to be tiny in vertex count.
        assert!(p.owned(0).len() <= 2);
        // All parts must be non-degenerate in assignment coverage.
        assert_eq!(p.n_vertices(), 100);
    }

    #[test]
    fn imbalance_zero_when_perfect() {
        let p = Partition::new(2, vec![0, 1, 0, 1]);
        assert_eq!(p.imbalance(&[1, 1, 1, 1]), 0.0);
        assert!(p.imbalance(&[3, 1, 1, 1]) > 0.0);
    }
}
