//! Per-layer send/receive maps (`Xsend`, `Xrecv` in the paper).
//!
//! Given a unified neuron partition and the layer matrices, the plan records
//! for every layer `k` and worker `m`:
//! * `send[m] = [(n, rows)]` — activation rows of layer `k−1` that `m` owns
//!   and must ship to worker `n` (because `W^k_n` has nonzeros in those
//!   columns);
//! * `recv[m] = [(n, rows)]` — rows `m` expects from `n`, the exact dual.
//!
//! These maps are produced *offline* (post-processing of the trained model,
//! per the paper) and loaded by each worker alongside its weight blocks.

use crate::partition::Partition;
use fsd_model::SparseDnn;

/// Send/recv maps for one layer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayerPlan {
    /// `send[m]` = list of `(target, sorted rows)`; targets sorted, no
    /// self-targets, no empty row lists.
    pub send: Vec<Vec<(u32, Vec<u32>)>>,
    /// `recv[m]` = list of `(source, sorted rows)`; exact dual of `send`.
    pub recv: Vec<Vec<(u32, Vec<u32>)>>,
}

/// The complete communication plan for a partitioned model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommPlan {
    n_parts: usize,
    layers: Vec<LayerPlan>,
}

impl CommPlan {
    /// Builds the plan for `dnn` under `partition`.
    pub fn build(dnn: &SparseDnn, partition: &Partition) -> CommPlan {
        let p = partition.n_parts();
        let n = dnn.spec().neurons;
        assert_eq!(
            partition.n_vertices(),
            n,
            "partition does not cover the neuron space"
        );
        let mut layers = Vec::with_capacity(dnn.spec().layers);
        // Scratch: needed[q] = sorted input rows worker q requires this layer.
        let mut needed: Vec<Vec<u32>> = vec![Vec::new(); p];
        for w in dnn.layers() {
            needed.iter_mut().for_each(|v| v.clear());
            for r in 0..n {
                let owner = partition.part_of(r as u32) as usize;
                needed[owner].extend_from_slice(w.row(r).0);
            }
            let mut plan = LayerPlan {
                send: vec![Vec::new(); p],
                recv: vec![Vec::new(); p],
            };
            // pair_rows[m][n_idx]: rows m ships to n. Keep a dense P x P grid
            // of row vectors; P is small (≤ low hundreds).
            let mut grid: Vec<Vec<u32>> = vec![Vec::new(); p * p];
            for (q, need) in needed.iter_mut().enumerate() {
                need.sort_unstable();
                need.dedup();
                for &j in need.iter() {
                    let owner = partition.part_of(j) as usize;
                    if owner != q {
                        grid[owner * p + q].push(j);
                    }
                }
            }
            for m in 0..p {
                for q in 0..p {
                    let rows = std::mem::take(&mut grid[m * p + q]);
                    if rows.is_empty() {
                        continue;
                    }
                    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
                    plan.send[m].push((q as u32, rows.clone()));
                    plan.recv[q].push((m as u32, rows));
                }
            }
            for m in 0..p {
                plan.send[m].sort_by_key(|&(t, _)| t);
                plan.recv[m].sort_by_key(|&(s, _)| s);
            }
            layers.push(plan);
        }
        CommPlan { n_parts: p, layers }
    }

    /// Number of parts.
    #[inline]
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Number of layers.
    #[inline]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Plan for layer `k` (0-based).
    #[inline]
    pub fn layer(&self, k: usize) -> &LayerPlan {
        &self.layers[k]
    }

    /// Total `(row, target)` transmissions across all layers — the paper's
    /// communication volume metric in row units (the connectivity-1 cost of
    /// the partition on the DNN hypergraph).
    pub fn total_row_sends(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.send.iter())
            .flat_map(|s| s.iter())
            .map(|(_, rows)| rows.len() as u64)
            .sum()
    }

    /// Communication pairs (m → n with non-empty rows) per layer, summed.
    pub fn total_pairs(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.send.iter())
            .map(|s| s.len() as u64)
            .sum()
    }

    /// Approximate heap bytes of the maps a single worker must hold.
    pub fn worker_map_bytes(&self, m: u32) -> usize {
        self.layers
            .iter()
            .map(|l| {
                let s: usize = l.send[m as usize]
                    .iter()
                    .map(|(_, r)| 8 + r.len() * 4)
                    .sum();
                let r: usize = l.recv[m as usize]
                    .iter()
                    .map(|(_, r)| 8 + r.len() * 4)
                    .sum();
                s + r
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{block_partition, random_partition};
    use fsd_model::{generate_dnn, DnnSpec};

    fn dnn() -> SparseDnn {
        generate_dnn(&DnnSpec {
            neurons: 64,
            layers: 4,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 3,
        })
    }

    #[test]
    fn send_recv_are_exact_duals() {
        let dnn = dnn();
        let part = random_partition(64, 4, 1);
        let plan = CommPlan::build(&dnn, &part);
        for k in 0..plan.n_layers() {
            let layer = plan.layer(k);
            for m in 0..4u32 {
                for (n, rows) in &layer.send[m as usize] {
                    let back = layer.recv[*n as usize]
                        .iter()
                        .find(|(s, _)| s == &m)
                        .map(|(_, r)| r);
                    assert_eq!(back, Some(rows), "layer {k}: send {m}->{n} has no dual");
                }
                for (n, rows) in &layer.recv[m as usize] {
                    let fwd = layer.send[*n as usize]
                        .iter()
                        .find(|(t, _)| t == &m)
                        .map(|(_, r)| r);
                    assert_eq!(fwd, Some(rows), "layer {k}: recv {m}<-{n} has no dual");
                }
            }
        }
    }

    #[test]
    fn sent_rows_are_owned_by_sender_and_needed_by_target() {
        let dnn = dnn();
        let part = random_partition(64, 4, 2);
        let plan = CommPlan::build(&dnn, &part);
        for k in 0..plan.n_layers() {
            let w = dnn.layer(k);
            for m in 0..4u32 {
                for (n, rows) in &plan.layer(k).send[m as usize] {
                    assert_ne!(n, &m, "self-send in plan");
                    for &j in rows {
                        assert_eq!(part.part_of(j), m, "row {j} sent by non-owner");
                        // Target must consume column j in layer k.
                        let consumed = part
                            .owned(*n)
                            .iter()
                            .any(|&r| w.row(r as usize).0.binary_search(&j).is_ok());
                        assert!(consumed, "row {j} sent to {n} but unused");
                    }
                }
            }
        }
    }

    #[test]
    fn plan_covers_every_remote_dependency() {
        // Every nonzero column of every owned weight row must be either
        // local or covered by a recv entry.
        let dnn = dnn();
        let part = block_partition(&vec![1u32; 64], 4);
        let plan = CommPlan::build(&dnn, &part);
        for k in 0..plan.n_layers() {
            let w = dnn.layer(k);
            for m in 0..4u32 {
                let recvs = &plan.layer(k).recv[m as usize];
                for &r in part.owned(m) {
                    for &j in w.row(r as usize).0 {
                        if part.part_of(j) == m {
                            continue;
                        }
                        let covered = recvs.iter().any(|(s, rows)| {
                            *s == part.part_of(j) && rows.binary_search(&j).is_ok()
                        });
                        assert!(covered, "layer {k} worker {m}: dependency {j} not covered");
                    }
                }
            }
        }
    }

    #[test]
    fn single_worker_has_no_communication() {
        let dnn = dnn();
        let plan = CommPlan::build(&dnn, &Partition::new(1, vec![0; 64]));
        assert_eq!(plan.total_row_sends(), 0);
        assert_eq!(plan.total_pairs(), 0);
    }

    #[test]
    fn row_sends_equal_connectivity_cost() {
        // The plan's row-send count must equal the hypergraph's
        // connectivity-1 cost — they are two derivations of the same volume.
        use crate::hypergraph::Hypergraph;
        let dnn = dnn();
        let part = random_partition(64, 4, 9);
        let plan = CommPlan::build(&dnn, &part);
        let h = Hypergraph::from_dnn(&dnn);
        assert_eq!(
            plan.total_row_sends(),
            h.connectivity_cost(part.assignment(), 4)
        );
    }

    #[test]
    fn block_partition_ships_less_than_random() {
        let dnn = dnn();
        let block = CommPlan::build(&dnn, &block_partition(&vec![1u32; 64], 4));
        let random = CommPlan::build(&dnn, &random_partition(64, 4, 4));
        assert!(
            block.total_row_sends() < random.total_row_sends(),
            "block {} >= random {}",
            block.total_row_sends(),
            random.total_row_sends()
        );
    }

    #[test]
    fn worker_map_bytes_positive_for_communicating_workers() {
        let dnn = dnn();
        let part = random_partition(64, 4, 1);
        let plan = CommPlan::build(&dnn, &part);
        for m in 0..4 {
            assert!(plan.worker_map_bytes(m) > 0);
        }
    }
}
