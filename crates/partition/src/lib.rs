//! # fsd-partition — model partitioning for FaaS workers
//!
//! Reproduces the paper's offline partitioning pipeline (its PaToH role):
//!
//! * [`Hypergraph`] — the communication hypergraph of a sparse DNN
//!   (connectivity-1 cost ≡ rows transmitted between workers);
//! * [`partition_hypergraph`] — multilevel partitioner ("HGP-DNN"):
//!   heavy-connectivity coarsening, greedy initial partitioning, FM
//!   refinement under a balance constraint;
//! * [`random_partition`] ("RP") and [`block_partition`] baselines;
//! * [`CommPlan`] — the per-layer `Xsend`/`Xrecv` maps each worker loads
//!   before inference.
//!
//! ```
//! use fsd_model::{generate_dnn, DnnSpec};
//! use fsd_partition::{CommPlan, Hypergraph, HgpConfig, partition_hypergraph};
//!
//! let dnn = generate_dnn(&DnnSpec::scaled(128, 1));
//! let h = Hypergraph::from_dnn(&dnn);
//! let part = partition_hypergraph(&h, &HgpConfig::new(4, 1));
//! let plan = CommPlan::build(&dnn, &part);
//! assert!(plan.total_row_sends() > 0);
//! ```
#![forbid(unsafe_code)]

mod commplan;
mod hgp;
mod hypergraph;
mod partition;

pub use commplan::{CommPlan, LayerPlan};
pub use hgp::{partition_hypergraph, HgpConfig};
pub use hypergraph::Hypergraph;
pub use partition::{block_partition, random_partition, Partition};

/// How a model is split across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Multilevel hypergraph partitioning (the paper's HGP-DNN).
    Hgp,
    /// PaToH-style random partitioning (the paper's RP baseline).
    Random,
    /// Contiguous, weight-balanced blocks.
    Block,
}

/// Partitions a model with the chosen scheme; the single entry point used
/// by the inference engine and the benchmark harness.
pub fn partition_model(
    dnn: &fsd_model::SparseDnn,
    n_parts: usize,
    scheme: PartitionScheme,
    seed: u64,
) -> Partition {
    match scheme {
        PartitionScheme::Hgp => {
            let h = Hypergraph::from_dnn(dnn);
            partition_hypergraph(&h, &HgpConfig::new(n_parts, seed))
        }
        PartitionScheme::Random => random_partition(dnn.spec().neurons, n_parts, seed),
        PartitionScheme::Block => {
            let h = Hypergraph::from_dnn(dnn);
            block_partition(h.vertex_weights(), n_parts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_model::{generate_dnn, DnnSpec};

    #[test]
    fn partition_model_all_schemes_cover_all_neurons() {
        let dnn = generate_dnn(&DnnSpec::scaled(128, 2));
        for scheme in [
            PartitionScheme::Hgp,
            PartitionScheme::Random,
            PartitionScheme::Block,
        ] {
            let p = partition_model(&dnn, 4, scheme, 1);
            assert_eq!(p.n_vertices(), 128, "{scheme:?}");
            let covered: usize = (0..4).map(|q| p.owned(q).len()).sum();
            assert_eq!(covered, 128, "{scheme:?}");
        }
    }

    #[test]
    fn hgp_beats_random_in_plan_volume() {
        let dnn = generate_dnn(&DnnSpec::scaled(256, 3));
        let hgp = CommPlan::build(&dnn, &partition_model(&dnn, 8, PartitionScheme::Hgp, 3));
        let rnd = CommPlan::build(&dnn, &partition_model(&dnn, 8, PartitionScheme::Random, 3));
        assert!(
            (hgp.total_row_sends() as f64) < 0.5 * rnd.total_row_sends() as f64,
            "HGP volume {} vs RP {}",
            hgp.total_row_sends(),
            rnd.total_row_sends()
        );
    }
}
