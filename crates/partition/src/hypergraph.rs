//! Hypergraph model of a sparse DNN's communication structure.
//!
//! Following Demirci & Ferhatosmanoglu (ICS'21), adapted in the paper for
//! FaaS: vertices are neurons (activation rows), and each column `j` of each
//! layer matrix `W^k` induces a net whose pins are `{j} ∪ {i : W^k[i,j] ≠ 0}`
//! — the producer of activation row `j` plus every consumer of it in layer
//! `k`. A net spanning `λ` parts forces `λ − 1` row transmissions, so the
//! connectivity-1 objective *is* the communication volume.

use fsd_model::SparseDnn;
use std::collections::HashMap;

/// An undirected hypergraph with weighted vertices and nets, stored in CSR
/// form both ways (nets → pins and vertex → incident nets).
#[derive(Clone, Debug)]
pub struct Hypergraph {
    n_vertices: usize,
    vertex_weight: Vec<u32>,
    net_ptr: Vec<usize>,
    pins: Vec<u32>,
    net_weight: Vec<u32>,
    vtx_ptr: Vec<usize>,
    vtx_nets: Vec<u32>,
}

impl Hypergraph {
    /// Builds a hypergraph from explicit nets. Pins may arrive unsorted;
    /// duplicates within a net are removed, single-pin nets are dropped
    /// (they can never be cut), and identical nets are merged by summing
    /// weights.
    pub fn from_nets(
        n_vertices: usize,
        vertex_weight: Vec<u32>,
        nets: impl IntoIterator<Item = (Vec<u32>, u32)>,
    ) -> Hypergraph {
        assert_eq!(vertex_weight.len(), n_vertices, "vertex weight length");
        let mut merged: HashMap<Vec<u32>, u32> = HashMap::new();
        for (mut pins, w) in nets {
            pins.sort_unstable();
            pins.dedup();
            if pins.len() < 2 {
                continue;
            }
            debug_assert!(
                pins.iter().all(|&p| (p as usize) < n_vertices),
                "pin out of range"
            );
            *merged.entry(pins).or_insert(0) += w;
        }
        // Deterministic net order regardless of hash iteration order.
        let mut net_list: Vec<(Vec<u32>, u32)> = merged.into_iter().collect();
        net_list.sort_unstable();

        let mut net_ptr = Vec::with_capacity(net_list.len() + 1);
        let mut pins = Vec::new();
        let mut net_weight = Vec::with_capacity(net_list.len());
        net_ptr.push(0usize);
        for (p, w) in &net_list {
            pins.extend_from_slice(p);
            net_ptr.push(pins.len());
            net_weight.push(*w);
        }

        let (vtx_ptr, vtx_nets) = invert(n_vertices, &net_ptr, &pins);
        Hypergraph {
            n_vertices,
            vertex_weight,
            net_ptr,
            pins,
            net_weight,
            vtx_ptr,
            vtx_nets,
        }
    }

    /// Builds the communication hypergraph of `dnn` for a *unified* neuron
    /// partition (one ownership map shared by all layers, as deployed by
    /// FSD-Inference: workers keep their row block identity across layers).
    pub fn from_dnn(dnn: &SparseDnn) -> Hypergraph {
        let n = dnn.spec().neurons;
        // Vertex weight = compute load proxy: weights stored for the neuron's
        // row across all layers (constant here, but kept general).
        let mut vweight = vec![0u32; n];
        for layer in dnn.layers() {
            for (r, w) in vweight.iter_mut().enumerate() {
                *w += layer.row_nnz(r) as u32;
            }
        }
        let nets = dnn.layers().iter().flat_map(|layer| {
            let t = layer.transpose();
            (0..n)
                .filter_map(move |j| {
                    let (consumers, _) = t.row(j);
                    if consumers.is_empty() {
                        return None;
                    }
                    let mut pins = Vec::with_capacity(consumers.len() + 1);
                    pins.push(j as u32);
                    pins.extend_from_slice(consumers);
                    Some((pins, 1u32))
                })
                .collect::<Vec<_>>()
        });
        Hypergraph::from_nets(n, vweight, nets)
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of nets.
    #[inline]
    pub fn n_nets(&self) -> usize {
        self.net_weight.len()
    }

    /// Total pin count.
    #[inline]
    pub fn n_pins(&self) -> usize {
        self.pins.len()
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> u32 {
        self.vertex_weight[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[u32] {
        &self.vertex_weight
    }

    /// Sum of all vertex weights.
    pub fn total_weight(&self) -> u64 {
        self.vertex_weight.iter().map(|&w| w as u64).sum()
    }

    /// Pins of net `e`.
    #[inline]
    pub fn net(&self, e: u32) -> &[u32] {
        &self.pins[self.net_ptr[e as usize]..self.net_ptr[e as usize + 1]]
    }

    /// Weight of net `e`.
    #[inline]
    pub fn net_weight(&self, e: u32) -> u32 {
        self.net_weight[e as usize]
    }

    /// Nets incident to vertex `v`.
    #[inline]
    pub fn nets_of(&self, v: u32) -> &[u32] {
        &self.vtx_nets[self.vtx_ptr[v as usize]..self.vtx_ptr[v as usize + 1]]
    }

    /// Connectivity-1 cost of an assignment: `Σ_e w(e) · (λ(e) − 1)` where
    /// `λ(e)` is the number of distinct parts containing pins of `e`.
    pub fn connectivity_cost(&self, assignment: &[u32], n_parts: usize) -> u64 {
        assert_eq!(assignment.len(), self.n_vertices);
        let mut seen = vec![u32::MAX; n_parts];
        let mut cost = 0u64;
        for e in 0..self.n_nets() as u32 {
            let mut lambda = 0u32;
            for &p in self.net(e) {
                let part = assignment[p as usize] as usize;
                if seen[part] != e {
                    seen[part] = e;
                    lambda += 1;
                }
            }
            cost += (lambda.saturating_sub(1)) as u64 * self.net_weight(e) as u64;
        }
        cost
    }
}

/// Builds the vertex → nets CSR from the nets → pins CSR.
fn invert(n_vertices: usize, net_ptr: &[usize], pins: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; n_vertices + 1];
    for &p in pins {
        counts[p as usize + 1] += 1;
    }
    for i in 0..n_vertices {
        counts[i + 1] += counts[i];
    }
    let vtx_ptr = counts.clone();
    let mut vtx_nets = vec![0u32; pins.len()];
    for e in 0..net_ptr.len() - 1 {
        for &p in &pins[net_ptr[e]..net_ptr[e + 1]] {
            vtx_nets[counts[p as usize]] = e as u32;
            counts[p as usize] += 1;
        }
    }
    (vtx_ptr, vtx_nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_model::{generate_dnn, DnnSpec};

    fn tiny() -> Hypergraph {
        // 4 vertices; nets {0,1}, {1,2,3}, {0,1} (duplicate, merged).
        Hypergraph::from_nets(
            4,
            vec![1, 1, 1, 1],
            [(vec![0, 1], 2), (vec![1, 2, 3], 1), (vec![1, 0], 3)],
        )
    }

    #[test]
    fn from_nets_merges_duplicates_and_drops_singletons() {
        let h = Hypergraph::from_nets(
            3,
            vec![1, 1, 1],
            [
                (vec![0, 1], 1),
                (vec![1, 0], 1),
                (vec![2], 5),
                (vec![1, 1], 9),
            ],
        );
        assert_eq!(h.n_nets(), 1);
        assert_eq!(h.net(0), &[0, 1]);
        assert_eq!(h.net_weight(0), 2);
    }

    #[test]
    fn incidence_is_consistent() {
        let h = tiny();
        assert_eq!(h.n_nets(), 2);
        for e in 0..h.n_nets() as u32 {
            for &p in h.net(e) {
                assert!(h.nets_of(p).contains(&e), "vertex {p} missing net {e}");
            }
        }
        for v in 0..4u32 {
            for &e in h.nets_of(v) {
                assert!(h.net(e).contains(&v), "net {e} missing vertex {v}");
            }
        }
    }

    #[test]
    fn connectivity_cost_examples() {
        let h = tiny();
        // nets (sorted order): [0,1] w=5, [1,2,3] w=1
        assert_eq!(h.connectivity_cost(&[0, 0, 0, 0], 1), 0);
        // split {0,1} vs {2,3}: net0 internal, net1 spans both -> 1
        assert_eq!(h.connectivity_cost(&[0, 0, 1, 1], 2), 1);
        // 0|1 cut: net0 spans -> 5; net1 {1,2,3} in part1..: 1 in p1? assignment [0,1,1,1]
        assert_eq!(h.connectivity_cost(&[0, 1, 1, 1], 2), 5);
        // all separate: net0 λ=2 -> 5, net1 λ=3 -> 2
        assert_eq!(h.connectivity_cost(&[0, 1, 2, 3], 4), 7);
    }

    #[test]
    fn from_dnn_shapes() {
        let spec = DnnSpec {
            neurons: 32,
            layers: 3,
            nnz_per_row: 4,
            bias: -0.1,
            clip: 32.0,
            seed: 1,
        };
        let dnn = generate_dnn(&spec);
        let h = Hypergraph::from_dnn(&dnn);
        assert_eq!(h.n_vertices(), 32);
        assert!(h.n_nets() > 0);
        // Every vertex computes 4 weights per layer over 3 layers.
        assert!(h.vertex_weights().iter().all(|&w| w == 12));
        // Pins per net ≥ 2 by construction.
        for e in 0..h.n_nets() as u32 {
            assert!(h.net(e).len() >= 2);
        }
    }

    #[test]
    fn from_dnn_total_weight_matches_nnz() {
        let spec = DnnSpec {
            neurons: 32,
            layers: 3,
            nnz_per_row: 4,
            bias: -0.1,
            clip: 32.0,
            seed: 1,
        };
        let dnn = generate_dnn(&spec);
        let h = Hypergraph::from_dnn(&dnn);
        assert_eq!(h.total_weight(), dnn.total_nnz() as u64);
    }
}
