//! Multilevel hypergraph partitioning — the PaToH substitute ("HGP-DNN").
//!
//! Classic three-phase scheme:
//! 1. **Coarsening** — heavy-connectivity matching merges vertex pairs that
//!    share heavily-weighted small nets until the hypergraph is small;
//! 2. **Initial partitioning** — greedy weight-ordered growth under the
//!    balance constraint;
//! 3. **Uncoarsening + refinement** — the partition is projected back level
//!    by level and improved with positive-gain FM passes on boundary
//!    vertices under the connectivity-1 objective.
//!
//! Quality is below PaToH's but the objective and constraint are identical;
//! the paper's Table III only requires HGP ≫ random partitioning, which this
//! implementation achieves by a wide margin on DNN hypergraphs.

use crate::hypergraph::Hypergraph;
use crate::partition::Partition;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`partition_hypergraph`].
#[derive(Debug, Clone, Copy)]
pub struct HgpConfig {
    /// Number of parts (FaaS workers) `P`.
    pub n_parts: usize,
    /// Allowed load imbalance ε: every part's weight ≤ `(1+ε)·total/P`.
    pub epsilon: f64,
    /// RNG seed (matching order, tie-breaks).
    pub seed: u64,
    /// Stop coarsening when at most `coarsen_to_per_part · n_parts`
    /// vertices remain.
    pub coarsen_to_per_part: usize,
    /// Maximum FM passes per uncoarsening level.
    pub fm_passes: usize,
    /// Nets larger than this are ignored during coarsening scoring (they
    /// carry little locality signal and cost quadratic work).
    pub max_scored_net: usize,
}

impl HgpConfig {
    /// Defaults used throughout the paper reproduction: ε = 10 %, 4 FM
    /// passes, coarsen to ~30 vertices per part.
    pub fn new(n_parts: usize, seed: u64) -> HgpConfig {
        HgpConfig {
            n_parts,
            epsilon: 0.10,
            seed,
            coarsen_to_per_part: 30,
            fm_passes: 4,
            max_scored_net: 64,
        }
    }
}

/// Runs the full multilevel pipeline on `h`.
pub fn partition_hypergraph(h: &Hypergraph, cfg: &HgpConfig) -> Partition {
    assert!(cfg.n_parts > 0, "need at least one part");
    if cfg.n_parts == 1 {
        return Partition::new(1, vec![0; h.n_vertices()]);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x48_47_50_2d_44_4e_4e_21);

    // --- Phase 1: coarsen ---------------------------------------------
    let mut levels: Vec<(Hypergraph, Vec<u32>)> = Vec::new(); // (fine graph, fine->coarse map)
    let mut current = h.clone();
    let target = (cfg.coarsen_to_per_part * cfg.n_parts).max(2 * cfg.n_parts);
    while current.n_vertices() > target {
        let map = match_heavy_connectivity(&current, cfg, &mut rng);
        let coarse = contract(&current, &map);
        let reduction = 1.0 - coarse.n_vertices() as f64 / current.n_vertices() as f64;
        let fine = std::mem::replace(&mut current, coarse);
        levels.push((fine, map));
        if reduction < 0.05 {
            break; // matching stalled; further levels would waste time
        }
    }

    // --- Phase 2: initial partition at the coarsest level ---------------
    let mut assignment = greedy_initial(&current, cfg, &mut rng);
    refine_fm(&current, &mut assignment, cfg);

    // --- Phase 3: project back + refine at every level ------------------
    while let Some((fine, map)) = levels.pop() {
        let mut fine_assignment = vec![0u32; fine.n_vertices()];
        for v in 0..fine.n_vertices() {
            fine_assignment[v] = assignment[map[v] as usize];
        }
        assignment = fine_assignment;
        refine_fm(&fine, &mut assignment, cfg);
    }

    // Multi-start: DNN hypergraphs are locality-heavy, so an FM-refined
    // contiguous seed is a strong second candidate (PaToH similarly runs
    // multiple starts). Keep whichever cut is lower.
    let mut block = crate::partition::block_partition(h.vertex_weights(), cfg.n_parts)
        .assignment()
        .to_vec();
    refine_fm(h, &mut block, cfg);
    if h.connectivity_cost(&block, cfg.n_parts) < h.connectivity_cost(&assignment, cfg.n_parts) {
        assignment = block;
    }
    Partition::new(cfg.n_parts, assignment)
}

/// Heavy-connectivity matching: each unmatched vertex merges with the
/// unmatched neighbour sharing the largest `Σ w(e)/(|e|−1)` over common
/// nets. Returns the fine→coarse cluster map.
fn match_heavy_connectivity(h: &Hypergraph, cfg: &HgpConfig, rng: &mut StdRng) -> Vec<u32> {
    let n = h.n_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut cluster = vec![u32::MAX; n];
    let mut next_cluster = 0u32;
    // Sparse scoring scratch: neighbour -> accumulated score, with a reset list.
    let mut score = vec![0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    for &v in &order {
        if cluster[v as usize] != u32::MAX {
            continue;
        }
        touched.clear();
        for &e in h.nets_of(v) {
            let pins = h.net(e);
            if pins.len() > cfg.max_scored_net {
                continue;
            }
            let s = h.net_weight(e) as f64 / (pins.len() - 1) as f64;
            for &u in pins {
                if u == v || cluster[u as usize] != u32::MAX {
                    continue;
                }
                if score[u as usize] == 0.0 {
                    touched.push(u);
                }
                score[u as usize] += s;
            }
        }
        let mut best: Option<(u32, f64)> = None;
        for &u in &touched {
            let s = score[u as usize];
            score[u as usize] = 0.0;
            // Avoid gigantic clusters: prefer light partners on near-ties.
            let adj = s / (1.0 + h.vertex_weight(u) as f64).ln().max(1.0);
            if best.is_none_or(|(_, bs)| adj > bs) {
                best = Some((u, adj));
            }
        }
        let c = next_cluster;
        next_cluster += 1;
        cluster[v as usize] = c;
        if let Some((u, _)) = best {
            cluster[u as usize] = c;
        }
    }
    cluster
}

/// Builds the coarse hypergraph induced by a cluster map.
fn contract(h: &Hypergraph, cluster: &[u32]) -> Hypergraph {
    let n_coarse = cluster.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
    let mut weights = vec![0u32; n_coarse];
    for v in 0..h.n_vertices() {
        weights[cluster[v] as usize] =
            weights[cluster[v] as usize].saturating_add(h.vertex_weight(v as u32));
    }
    let nets = (0..h.n_nets() as u32).map(|e| {
        let pins: Vec<u32> = h.net(e).iter().map(|&p| cluster[p as usize]).collect();
        (pins, h.net_weight(e))
    });
    Hypergraph::from_nets(n_coarse, weights, nets)
}

/// Greedy initial partitioning: vertices in descending weight order go to
/// the feasible part with the strongest attraction (net weight already
/// placed there), tie-broken by lightest load.
fn greedy_initial(h: &Hypergraph, cfg: &HgpConfig, rng: &mut StdRng) -> Vec<u32> {
    let n = h.n_vertices();
    let p = cfg.n_parts;
    let total = h.total_weight();
    let cap = (((total as f64) * (1.0 + cfg.epsilon)) / p as f64).ceil() as u64;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    order.sort_by_key(|&v| std::cmp::Reverse(h.vertex_weight(v)));
    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0u64; p];
    let mut attraction = vec![0u64; p];
    for &v in &order {
        attraction.iter_mut().for_each(|a| *a = 0);
        for &e in h.nets_of(v) {
            let w = h.net_weight(e) as u64;
            for &u in h.net(e) {
                let part = assignment[u as usize];
                if part != u32::MAX {
                    attraction[part as usize] += w;
                }
            }
        }
        let w = h.vertex_weight(v) as u64;
        let mut best: Option<usize> = None;
        for cand in 0..p {
            if loads[cand] + w > cap {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    attraction[cand] > attraction[b]
                        || (attraction[cand] == attraction[b] && loads[cand] < loads[b])
                }
            };
            if better {
                best = Some(cand);
            }
        }
        // All parts over cap (possible with huge vertices): take the lightest.
        let part =
            best.unwrap_or_else(|| (0..p).min_by_key(|&q| loads[q]).expect("at least one part"));
        assignment[v as usize] = part as u32;
        loads[part] += w;
    }
    assignment
}

/// Positive-gain FM refinement passes under the connectivity-1 objective.
///
/// Per pass: compute `Λ(e, part)` pin counts, walk boundary vertices in
/// descending best-gain order, apply each still-valid positive-gain move
/// that keeps balance, updating `Λ` incrementally. Stops when a pass yields
/// no improvement or `cfg.fm_passes` is reached.
fn refine_fm(h: &Hypergraph, assignment: &mut [u32], cfg: &HgpConfig) {
    let p = cfg.n_parts;
    let total = h.total_weight();
    let cap = (((total as f64) * (1.0 + cfg.epsilon)) / p as f64).ceil() as u64;
    let n_nets = h.n_nets();

    let mut lambda = vec![0u32; n_nets * p];
    let mut loads = vec![0u64; p];
    for v in 0..h.n_vertices() {
        loads[assignment[v] as usize] += h.vertex_weight(v as u32) as u64;
    }
    for e in 0..n_nets {
        for &u in h.net(e as u32) {
            lambda[e * p + assignment[u as usize] as usize] += 1;
        }
    }

    for _pass in 0..cfg.fm_passes {
        // Collect boundary vertices with their currently-best move.
        let mut moves: Vec<(i64, u32, u32)> = Vec::new(); // (gain, v, target)
        for v in 0..h.n_vertices() as u32 {
            if let Some((gain, target)) = best_move(h, &lambda, assignment, v, p) {
                if gain > 0 {
                    moves.push((gain, v, target));
                }
            }
        }
        if moves.is_empty() {
            return;
        }
        moves.sort_unstable_by_key(|&(g, v, _)| (std::cmp::Reverse(g), v));
        let mut improved = false;
        for (_, v, _) in moves {
            // Re-evaluate: earlier moves this pass may have changed the gain.
            let Some((gain, target)) = best_move(h, &lambda, assignment, v, p) else {
                continue;
            };
            if gain <= 0 {
                continue;
            }
            let src = assignment[v as usize] as usize;
            let w = h.vertex_weight(v) as u64;
            if loads[target as usize] + w > cap {
                continue;
            }
            // Apply the move.
            assignment[v as usize] = target;
            loads[src] -= w;
            loads[target as usize] += w;
            for &e in h.nets_of(v) {
                let base = e as usize * p;
                lambda[base + src] -= 1;
                lambda[base + target as usize] += 1;
            }
            improved = true;
        }
        if !improved {
            return;
        }
    }
}

/// The best single-vertex move for `v`: highest connectivity-1 gain over all
/// target parts that appear in `v`'s nets. Returns `None` for interior
/// vertices (all nets single-part).
fn best_move(
    h: &Hypergraph,
    lambda: &[u32],
    assignment: &[u32],
    v: u32,
    p: usize,
) -> Option<(i64, u32)> {
    let src = assignment[v as usize] as usize;
    // Gain of leaving src: nets where v is src's only pin stop spanning src.
    let mut leave_gain = 0i64;
    let mut is_boundary = false;
    for &e in h.nets_of(v) {
        let base = e as usize * p;
        if lambda[base + src] == 1 {
            leave_gain += h.net_weight(e) as i64;
        }
        // boundary if any net has pins outside src
        let pins = h.net(e).len() as u32;
        if lambda[base + src] < pins {
            is_boundary = true;
        }
    }
    if !is_boundary {
        return None;
    }
    // Candidate targets: distinct parts present in v's nets (besides src).
    let mut candidates: Vec<u32> = Vec::with_capacity(8);
    for &e in h.nets_of(v) {
        let base = e as usize * p;
        for t in 0..p {
            if t != src && lambda[base + t] > 0 && !candidates.contains(&(t as u32)) {
                candidates.push(t as u32);
            }
        }
    }
    let mut best: Option<(i64, u32)> = None;
    for &t in &candidates {
        // Arrival cost: nets of v with no pin in t gain a new part.
        let mut gain = leave_gain;
        for &e in h.nets_of(v) {
            if lambda[e as usize * p + t as usize] == 0 {
                gain -= h.net_weight(e) as i64;
            }
        }
        if best.is_none_or(|(bg, bt)| gain > bg || (gain == bg && t < bt)) {
            best = Some((gain, t));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::random_partition;
    use fsd_model::{generate_dnn, DnnSpec};

    fn ring_hypergraph(n: usize) -> Hypergraph {
        // Nets {i, i+1}: a ring. Optimal P-way cut = P (contiguous arcs).
        let nets = (0..n).map(|i| (vec![i as u32, ((i + 1) % n) as u32], 1u32));
        Hypergraph::from_nets(n, vec![1; n], nets)
    }

    #[test]
    fn single_part_is_trivial() {
        let h = ring_hypergraph(16);
        let p = partition_hypergraph(&h, &HgpConfig::new(1, 0));
        assert!(p.assignment().iter().all(|&a| a == 0));
        assert_eq!(h.connectivity_cost(p.assignment(), 1), 0);
    }

    #[test]
    fn ring_is_cut_near_optimally() {
        let h = ring_hypergraph(256);
        let cfg = HgpConfig::new(4, 7);
        let p = partition_hypergraph(&h, &cfg);
        let cost = h.connectivity_cost(p.assignment(), 4);
        // Optimum is 8 (each boundary cuts two {i,i+1} nets); accept ≤ 3x.
        assert!(cost <= 24, "ring cut {cost} far from optimal 8");
        assert!(p.imbalance(h.vertex_weights()) <= cfg.epsilon + 0.05);
    }

    #[test]
    fn respects_balance_constraint() {
        let h = ring_hypergraph(300);
        for parts in [2usize, 5, 8] {
            let cfg = HgpConfig::new(parts, 3);
            let p = partition_hypergraph(&h, &cfg);
            assert!(
                p.imbalance(h.vertex_weights()) <= cfg.epsilon + 0.05,
                "{parts} parts imbalance {}",
                p.imbalance(h.vertex_weights())
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let h = ring_hypergraph(128);
        let a = partition_hypergraph(&h, &HgpConfig::new(4, 11));
        let b = partition_hypergraph(&h, &HgpConfig::new(4, 11));
        assert_eq!(a, b);
    }

    #[test]
    fn beats_random_on_dnn_hypergraphs() {
        let spec = DnnSpec {
            neurons: 256,
            layers: 6,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 2,
        };
        let dnn = generate_dnn(&spec);
        let h = Hypergraph::from_dnn(&dnn);
        let parts = 8;
        let hgp = partition_hypergraph(&h, &HgpConfig::new(parts, 5));
        let rnd = random_partition(h.n_vertices(), parts, 5);
        let hgp_cost = h.connectivity_cost(hgp.assignment(), parts);
        let rnd_cost = h.connectivity_cost(rnd.assignment(), parts);
        assert!(
            (hgp_cost as f64) < 0.5 * rnd_cost as f64,
            "HGP {hgp_cost} not clearly better than RP {rnd_cost}"
        );
        assert!(hgp.imbalance(h.vertex_weights()) < 0.2);
    }

    #[test]
    fn all_vertices_assigned_exactly_once() {
        let h = ring_hypergraph(97); // prime size exercises uneven splits
        let p = partition_hypergraph(&h, &HgpConfig::new(5, 1));
        assert_eq!(p.n_vertices(), 97);
        let total: usize = (0..5).map(|q| p.owned(q).len()).sum();
        assert_eq!(total, 97);
    }
}
