//! The FaaS platform: invocation, limits, billing.
//!
//! Function instances run as real threads; their *timing* lives on the
//! virtual clock (see `fsd-comm`). The platform enforces the two limits
//! that shape the paper's design space — instance memory and maximum
//! runtime — and bills invocations the way Lambda does (requests +
//! MB-milliseconds of execution).

use crate::compute::{ComputeModel, MAX_MEMORY_MB, MAX_TIMEOUT_SECS, MIN_MEMORY_MB};
use fsd_comm::{CloudEnv, VClock, VirtualTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Static configuration of a deployed function.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Function name (diagnostics).
    pub name: String,
    /// Allocated memory in MB; drives both the memory limit and vCPU share.
    pub memory_mb: u32,
    /// Maximum runtime before the platform kills the instance.
    pub timeout: VirtualTime,
    /// Request flow this invocation bills to (0 = unattributed). The
    /// platform stamps the instance's clock with it, so every metered
    /// service call the function makes is attributed to the flow too.
    pub flow: u64,
    /// Keep-alive instance: the body outlives a single request (a warm
    /// worker parked in a serve loop). The platform then skips the
    /// exit-time duration billing and limit check — the body is expected
    /// to meter each request it serves through
    /// [`WorkerCtx::begin_request`] / [`WorkerCtx::finish_request`].
    pub keep_alive: bool,
}

impl FunctionConfig {
    /// A worker function with the given memory, at the maximum timeout.
    pub fn worker(name: impl Into<String>, memory_mb: u32) -> FunctionConfig {
        assert!(
            (MIN_MEMORY_MB..=MAX_MEMORY_MB).contains(&memory_mb),
            "memory {memory_mb} MB outside Lambda's [{MIN_MEMORY_MB}, {MAX_MEMORY_MB}]"
        );
        FunctionConfig {
            name: name.into(),
            memory_mb,
            timeout: VirtualTime::from_secs_f64(MAX_TIMEOUT_SECS),
            flow: 0,
            keep_alive: false,
        }
    }

    /// The lightweight coordinator configuration (128 MB, as in the paper).
    pub fn coordinator() -> FunctionConfig {
        FunctionConfig {
            name: "coordinator".into(),
            memory_mb: MIN_MEMORY_MB,
            timeout: VirtualTime::from_secs_f64(MAX_TIMEOUT_SECS),
            flow: 0,
            keep_alive: false,
        }
    }

    /// Attributes this invocation (and everything it bills) to `flow`.
    pub fn for_flow(mut self, flow: u64) -> FunctionConfig {
        self.flow = flow;
        self
    }

    /// Marks this invocation as a keep-alive (warm-pool) instance; see
    /// [`FunctionConfig::keep_alive`].
    pub fn keep_alive(mut self) -> FunctionConfig {
        self.keep_alive = true;
        self
    }

    /// Memory limit in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.memory_mb as usize * 1024 * 1024
    }
}

/// A structured communication/IO failure: which operation failed, on which
/// resource, and the service- or codec-level detail. Replaces the old
/// stringly `Comm(String)` payload so callers can route on `op` instead of
/// parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommFailure {
    /// The operation that failed (`"publish"`, `"put"`, `"get"`, `"list"`,
    /// `"decode"`, `"decompress"`, `"artifact"`, …).
    pub op: &'static str,
    /// The resource involved (key, queue, bucket…); empty when not
    /// applicable.
    pub resource: String,
    /// Underlying service/codec detail.
    pub detail: String,
}

impl std::fmt::Display for CommFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.resource.is_empty() {
            write!(f, "{} failed: {}", self.op, self.detail)
        } else {
            write!(
                f,
                "{} of {} failed: {}",
                self.op, self.resource, self.detail
            )
        }
    }
}

/// Errors terminating a function instance.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasError {
    /// Resident data exceeded the configured memory.
    OutOfMemory {
        used_bytes: usize,
        limit_bytes: usize,
    },
    /// Execution exceeded the configured timeout.
    Timeout {
        elapsed: VirtualTime,
        limit: VirtualTime,
    },
    /// A communication-layer failure surfaced to the function.
    Comm(CommFailure),
}

impl FaasError {
    /// Builds a [`FaasError::Comm`] from its parts.
    pub fn comm(
        op: &'static str,
        resource: impl Into<String>,
        detail: impl std::fmt::Display,
    ) -> FaasError {
        FaasError::Comm(CommFailure {
            op,
            resource: resource.into(),
            detail: detail.to_string(),
        })
    }
}

impl std::fmt::Display for FaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaasError::OutOfMemory {
                used_bytes,
                limit_bytes,
            } => {
                write!(
                    f,
                    "out of memory: {used_bytes} bytes used, limit {limit_bytes}"
                )
            }
            FaasError::Timeout { elapsed, limit } => {
                write!(f, "function timed out: ran {elapsed}, limit {limit}")
            }
            FaasError::Comm(failure) => write!(f, "communication failure: {failure}"),
        }
    }
}

impl std::error::Error for FaasError {}

/// Billing/runtime record of one completed invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationReport {
    /// Virtual time the instance began executing user code (post cold start).
    pub started: VirtualTime,
    /// Virtual time the instance finished.
    pub finished: VirtualTime,
    /// Billed duration in virtual milliseconds (≥ 1, as Lambda bills).
    pub billed_ms: u64,
    /// Peak tracked resident bytes.
    pub peak_mem_bytes: usize,
    /// Configured memory (for GB-s cost computation downstream).
    pub memory_mb: u32,
}

/// Lambda billing counters: global totals plus per-flow windows (flow 0 is
/// unattributed and only counted globally).
#[derive(Debug, Default)]
pub struct LambdaMeter {
    invocations: AtomicU64,
    mb_ms: AtomicU64,
    flows: Mutex<HashMap<u64, LambdaSnapshot>>,
}

/// Snapshot of [`LambdaMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LambdaSnapshot {
    /// Total invocation requests.
    pub invocations: u64,
    /// Total billed MB·milliseconds.
    pub mb_ms: u64,
}

impl LambdaMeter {
    /// Copies the global counters.
    pub fn snapshot(&self) -> LambdaSnapshot {
        LambdaSnapshot {
            invocations: self.invocations.load(Ordering::Relaxed),
            mb_ms: self.mb_ms.load(Ordering::Relaxed),
        }
    }

    fn record_invocation(&self, flow: u64) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if flow != 0 {
            self.flows.lock().entry(flow).or_default().invocations += 1;
        }
    }

    fn record_mb_ms(&self, flow: u64, mb_ms: u64) {
        self.mb_ms.fetch_add(mb_ms, Ordering::Relaxed);
        if flow != 0 {
            self.flows.lock().entry(flow).or_default().mb_ms += mb_ms;
        }
    }

    /// The billing attributed to `flow` so far (zeros for unknown flows).
    pub fn flow_snapshot(&self, flow: u64) -> LambdaSnapshot {
        self.flows.lock().get(&flow).copied().unwrap_or_default()
    }

    /// Removes `flow`'s window and returns it (request teardown).
    pub fn release_flow(&self, flow: u64) -> LambdaSnapshot {
        self.flows.lock().remove(&flow).unwrap_or_default()
    }

    /// Number of flows currently holding a window (leak checks in tests).
    pub fn tracked_flows(&self) -> usize {
        self.flows.lock().len()
    }
}

/// The platform: shared cloud environment plus compute model and billing.
pub struct FaasPlatform {
    env: Arc<CloudEnv>,
    compute: ComputeModel,
    meter: LambdaMeter,
}

/// A running invocation; `join` waits for the instance to finish.
pub struct Invocation<T> {
    handle: JoinHandle<Result<(T, InvocationReport), FaasError>>,
    launch_error: Option<FaasError>,
}

impl<T> Invocation<T> {
    /// Waits for the instance and returns its output and billing report.
    /// A panic inside the function body is propagated as a panic here —
    /// it is a bug in the engine, not a simulated fault.
    pub fn join(self) -> Result<(T, InvocationReport), FaasError> {
        self.handle.join().expect("function instance panicked")
    }

    /// The injected launch fault, if this invoke drew one — known to the
    /// caller synchronously (as a real Invoke API error would be), so a
    /// fire-and-forget launcher can fail its tree fast instead of leaving
    /// peers waiting on an instance that will never start. [`Invocation::join`]
    /// returns the same error.
    pub fn launch_error(&self) -> Option<FaasError> {
        self.launch_error.clone()
    }
}

impl FaasPlatform {
    /// Creates a platform over a cloud environment.
    pub fn new(env: Arc<CloudEnv>, compute: ComputeModel) -> Arc<FaasPlatform> {
        Arc::new(FaasPlatform {
            env,
            compute,
            meter: LambdaMeter::default(),
        })
    }

    /// The underlying cloud environment.
    pub fn env(&self) -> &Arc<CloudEnv> {
        &self.env
    }

    /// The compute-time model.
    pub fn compute(&self) -> &ComputeModel {
        &self.compute
    }

    /// Lambda billing snapshot (global).
    pub fn lambda_snapshot(&self) -> LambdaSnapshot {
        self.meter.snapshot()
    }

    /// The Lambda billing meter (per-flow windows live here).
    pub fn lambda_meter(&self) -> &LambdaMeter {
        &self.meter
    }

    /// Invokes `cfg` asynchronously at virtual time `at`. The instance
    /// suffers the invoke round trip plus a cold start before `body` runs
    /// with a [`WorkerCtx`]. Returns immediately with an [`Invocation`].
    pub fn invoke<T, F>(
        self: &Arc<Self>,
        cfg: FunctionConfig,
        at: VirtualTime,
        body: F,
    ) -> Invocation<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut WorkerCtx) -> Result<T, FaasError> + Send + 'static,
    {
        self.meter.record_invocation(cfg.flow);
        // Injected launch fault: the invoke request is billed (Lambda
        // charges the request even when the instance fails to start) and
        // the round trip is suffered, but the body never runs. Drawn on
        // the caller thread so the decision depends only on (flow, at,
        // function name) — deterministic across replays.
        let launch_error = self
            .env
            .faults()
            .check(fsd_comm::ApiClass::InstanceLaunch, cfg.flow, at, &cfg.name)
            .map(|kind| {
                FaasError::comm(
                    "instance",
                    cfg.name.clone(),
                    kind.to_error(format!("lambda:invoke {}", cfg.name)),
                )
            });
        let launch_fault = launch_error.clone();
        let platform = self.clone();
        let handle = std::thread::spawn(move || {
            let jitter = platform.env.jitter();
            let lat = platform.env.latency();
            let mut clock = VClock::starting_at(at);
            // The instance's clock carries the flow, so every metered
            // service call this function makes bills to its request.
            clock.set_flow(cfg.flow);
            clock.advance_micros(jitter.apply(lat.lambda_invoke_us));
            if let Some(err) = launch_fault {
                return Err(err);
            }
            clock.advance_micros(jitter.apply(lat.lambda_cold_start_us));
            let started = clock.now();
            let mut ctx = WorkerCtx {
                platform: platform.clone(),
                cfg: cfg.clone(),
                clock,
                started,
                mem_bytes: 0,
                peak_mem_bytes: 0,
                abort: None,
            };
            let out = body(&mut ctx)?;
            if cfg.keep_alive {
                // A keep-alive body meters every request it served through
                // begin_request/finish_request; its idle lifetime is not
                // billed (and not limit-checked) at exit.
                let finished = ctx.clock.now();
                return Ok((
                    out,
                    InvocationReport {
                        started,
                        finished,
                        billed_ms: 0,
                        peak_mem_bytes: ctx.peak_mem_bytes,
                        memory_mb: cfg.memory_mb,
                    },
                ));
            }
            ctx.check_limits()?;
            let finished = ctx.clock.now();
            let elapsed_ms =
                ((finished.as_micros() - started.as_micros()) as f64 / 1000.0).ceil() as u64;
            let billed_ms = elapsed_ms.max(1);
            platform
                .meter
                .record_mb_ms(cfg.flow, billed_ms * cfg.memory_mb as u64);
            Ok((
                out,
                InvocationReport {
                    started,
                    finished,
                    billed_ms,
                    peak_mem_bytes: ctx.peak_mem_bytes,
                    memory_mb: cfg.memory_mb,
                },
            ))
        });
        Invocation {
            handle,
            launch_error,
        }
    }
}

/// Per-instance execution context handed to function bodies: the virtual
/// clock, limit tracking, and accessors to the shared cloud services.
pub struct WorkerCtx {
    platform: Arc<FaasPlatform>,
    cfg: FunctionConfig,
    clock: VClock,
    started: VirtualTime,
    mem_bytes: usize,
    peak_mem_bytes: usize,
    /// Cooperative abort: when the flag is raised (a peer instance of the
    /// same warm tree died), [`WorkerCtx::check_limits`] fails fast instead
    /// of letting the instance poll toward its full virtual timeout.
    abort: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl WorkerCtx {
    /// The shared cloud environment (queues, topics, object store).
    pub fn env(&self) -> &Arc<CloudEnv> {
        self.platform.env()
    }

    /// The platform (to invoke children — the hierarchical launch).
    pub fn platform(&self) -> &Arc<FaasPlatform> {
        &self.platform
    }

    /// This instance's function configuration.
    pub fn config(&self) -> &FunctionConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    /// Mutable access to the clock for service calls
    /// (`store.put(..., ctx.clock_mut())`).
    pub fn clock_mut(&mut self) -> &mut VClock {
        &mut self.clock
    }

    /// Opens a fresh request window on a kept-alive instance: the clock
    /// jumps onto the new request's own virtual timeline at `at`, all
    /// subsequent metered calls bill to `flow`, and the timeout/billing
    /// window restarts. Peak-memory tracking restarts from the currently
    /// resident bytes (the warm instance keeps its loaded weights).
    pub fn begin_request(&mut self, flow: u64, at: VirtualTime) {
        self.clock = VClock::starting_at(at).with_flow(flow);
        self.cfg.flow = flow;
        self.started = at;
        self.peak_mem_bytes = self.mem_bytes;
    }

    /// Closes the current request window: bills the window's
    /// MB-milliseconds to the window's flow and returns its
    /// [`InvocationReport`]. On a kept-alive instance this is the *only*
    /// duration billing (the platform skips exit billing); on the window
    /// opened at launch it covers cold start → now, exactly like a
    /// one-shot invocation.
    pub fn finish_request(&mut self) -> InvocationReport {
        let finished = self.clock.now();
        let elapsed_ms = ((finished
            .as_micros()
            .saturating_sub(self.started.as_micros())) as f64
            / 1000.0)
            .ceil() as u64;
        let billed_ms = elapsed_ms.max(1);
        self.platform
            .meter
            .record_mb_ms(self.cfg.flow, billed_ms * self.cfg.memory_mb as u64);
        InvocationReport {
            started: self.started,
            finished,
            billed_ms,
            peak_mem_bytes: self.peak_mem_bytes,
            memory_mb: self.cfg.memory_mb,
        }
    }

    /// Installs a cooperative abort flag; once raised,
    /// [`WorkerCtx::check_limits`] fails with a structured `"abort"` comm
    /// failure. Warm trees use this so the death of one peer tears the
    /// whole request down in real time instead of virtual-timeout time.
    pub fn set_abort(&mut self, flag: Arc<std::sync::atomic::AtomicBool>) {
        self.abort = Some(flag);
    }

    /// Charges `work` kernel units against the clock under the platform's
    /// compute model and this instance's vCPU share.
    pub fn charge_work(&mut self, work: u64) {
        let secs = self.platform.compute.seconds(work, self.cfg.memory_mb);
        self.clock.advance_secs_f64(secs);
    }

    /// Charges byte-stream processing (serialization, compression, parsing)
    /// at a fixed single-thread throughput, scaled by this instance's share
    /// of one vCPU. Unlike [`WorkerCtx::charge_work`], this does not go
    /// through the kernel compute model — byte shuffling speed is a
    /// property of the CPU, not of the experiment's work calibration.
    pub fn charge_bytes(&mut self, bytes: u64, bytes_per_sec: f64) {
        let share = crate::compute::ComputeModel::vcpus(self.cfg.memory_mb).clamp(1e-3, 1.0);
        let secs = bytes as f64 / bytes_per_sec / share;
        self.clock.advance_secs_f64(secs);
    }

    /// Registers `bytes` of resident data (weights, activations, buffers).
    pub fn track_alloc(&mut self, bytes: usize) {
        self.mem_bytes += bytes;
        self.peak_mem_bytes = self.peak_mem_bytes.max(self.mem_bytes);
    }

    /// Releases previously tracked bytes.
    pub fn track_free(&mut self, bytes: usize) {
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
    }

    /// Currently tracked resident bytes.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    /// Verifies the memory and runtime limits; engines call this at layer
    /// boundaries and inside poll loops. The platform also re-checks at
    /// function exit.
    pub fn check_limits(&self) -> Result<(), FaasError> {
        if let Some(flag) = &self.abort {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(FaasError::comm(
                    "abort",
                    self.cfg.name.clone(),
                    "worker tree poisoned: a peer instance died",
                ));
            }
        }
        if self.mem_bytes > self.cfg.memory_bytes() {
            return Err(FaasError::OutOfMemory {
                used_bytes: self.mem_bytes,
                limit_bytes: self.cfg.memory_bytes(),
            });
        }
        let elapsed = VirtualTime::from_micros(
            self.clock
                .now()
                .as_micros()
                .saturating_sub(self.started.as_micros()),
        );
        if elapsed > self.cfg.timeout {
            return Err(FaasError::Timeout {
                elapsed,
                limit: self.cfg.timeout,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::CloudConfig;

    fn platform() -> Arc<FaasPlatform> {
        FaasPlatform::new(
            CloudEnv::new(CloudConfig::deterministic(1)),
            ComputeModel::default(),
        )
    }

    #[test]
    fn invoke_runs_body_and_bills() {
        let p = platform();
        let inv = p.invoke(
            FunctionConfig::worker("w", 1769),
            VirtualTime::ZERO,
            |ctx| {
                ctx.charge_work(250_000_000); // exactly 1s at 1 vCPU
                Ok(42)
            },
        );
        let (out, report) = inv.join().expect("success");
        assert_eq!(out, 42);
        // Started after invoke latency + cold start.
        assert!(report.started >= VirtualTime::from_micros(280_000));
        let run_s = (report.finished.as_micros() - report.started.as_micros()) as f64 / 1e6;
        assert!((run_s - 1.0).abs() < 0.01, "ran {run_s}s, expected ~1s");
        assert!(report.billed_ms >= 1000);
        let snap = p.lambda_snapshot();
        assert_eq!(snap.invocations, 1);
        assert_eq!(snap.mb_ms, report.billed_ms * 1769);
    }

    #[test]
    fn minimum_billing_is_one_ms() {
        let p = platform();
        let (_, report) = p
            .invoke(FunctionConfig::worker("w", 512), VirtualTime::ZERO, |_| {
                Ok(())
            })
            .join()
            .expect("success");
        assert_eq!(report.billed_ms, 1);
    }

    #[test]
    fn memory_limit_enforced() {
        let p = platform();
        let cfg = FunctionConfig::worker("w", 128);
        let res = p
            .invoke(cfg, VirtualTime::ZERO, |ctx| {
                ctx.track_alloc(200 * 1024 * 1024); // 200 MB into a 128 MB box
                ctx.check_limits()?;
                Ok(())
            })
            .join();
        assert!(matches!(res, Err(FaasError::OutOfMemory { .. })));
    }

    #[test]
    fn memory_limit_checked_at_exit_even_without_explicit_check() {
        let p = platform();
        let res = p
            .invoke(FunctionConfig::worker("w", 128), VirtualTime::ZERO, |ctx| {
                ctx.track_alloc(600 * 1024 * 1024);
                Ok(())
            })
            .join();
        assert!(matches!(res, Err(FaasError::OutOfMemory { .. })));
    }

    #[test]
    fn track_free_releases_memory() {
        let p = platform();
        let res = p
            .invoke(FunctionConfig::worker("w", 128), VirtualTime::ZERO, |ctx| {
                ctx.track_alloc(100 * 1024 * 1024);
                ctx.track_free(90 * 1024 * 1024);
                assert_eq!(ctx.mem_bytes(), 10 * 1024 * 1024);
                ctx.check_limits()?;
                Ok(ctx.mem_bytes())
            })
            .join();
        assert!(res.is_ok());
    }

    #[test]
    fn timeout_enforced() {
        let p = platform();
        let mut cfg = FunctionConfig::worker("w", 1769);
        cfg.timeout = VirtualTime::from_secs_f64(0.5);
        let res = p
            .invoke(cfg, VirtualTime::ZERO, |ctx| {
                ctx.charge_work(2_500_000_000); // ~10s of work
                Ok(())
            })
            .join();
        match res {
            Err(FaasError::Timeout { elapsed, limit }) => {
                assert!(elapsed > limit);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn child_invocation_starts_after_parent_clock() {
        let p = platform();
        let (child_started, _) = p
            .invoke(
                FunctionConfig::worker("parent", 1769),
                VirtualTime::ZERO,
                |ctx| {
                    ctx.charge_work(250_000_000); // 1s
                    let at = ctx.now();
                    let child =
                        ctx.platform()
                            .invoke(FunctionConfig::worker("child", 1769), at, |c| Ok(c.now()));
                    let (started, _) = child
                        .join()
                        .map_err(|e| FaasError::comm("child-join", "child", e))?;
                    Ok(started)
                },
            )
            .join()
            .expect("parent ok");
        // Child observes parent's clock + invoke + cold start.
        assert!(child_started >= VirtualTime::from_secs_f64(1.0).plus_micros(280_000));
    }

    #[test]
    fn peak_memory_is_reported() {
        let p = platform();
        let (_, report) = p
            .invoke(
                FunctionConfig::worker("w", 1024),
                VirtualTime::ZERO,
                |ctx| {
                    ctx.track_alloc(50 * 1024 * 1024);
                    ctx.track_free(50 * 1024 * 1024);
                    ctx.track_alloc(10 * 1024 * 1024);
                    Ok(())
                },
            )
            .join()
            .expect("ok");
        assert_eq!(report.peak_mem_bytes, 50 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "outside Lambda")]
    fn rejects_memory_outside_lambda_band() {
        FunctionConfig::worker("w", 20_000);
    }

    #[test]
    fn flow_attribution_buckets_invocations_and_mb_ms() {
        let p = platform();
        let run = |flow: u64| {
            p.invoke(
                FunctionConfig::worker("w", 1000).for_flow(flow),
                VirtualTime::ZERO,
                |ctx| {
                    ctx.charge_work(25_000_000);
                    Ok(())
                },
            )
        };
        let (a, b, c) = (run(1), run(1), run(2));
        let mut reports = vec![
            a.join().expect("ok").1,
            b.join().expect("ok").1,
            c.join().expect("ok").1,
        ];
        let f2 = reports.pop().expect("three reports");
        let f1_mb_ms: u64 = reports.iter().map(|r| r.billed_ms * 1000).sum();
        assert_eq!(p.lambda_meter().flow_snapshot(1).invocations, 2);
        assert_eq!(p.lambda_meter().flow_snapshot(1).mb_ms, f1_mb_ms);
        assert_eq!(p.lambda_meter().flow_snapshot(2).invocations, 1);
        assert_eq!(p.lambda_meter().flow_snapshot(2).mb_ms, f2.billed_ms * 1000);
        // Global totals include every flow; releasing a window keeps them.
        assert_eq!(p.lambda_snapshot().invocations, 3);
        let released = p.lambda_meter().release_flow(1);
        assert_eq!(released.invocations, 2);
        assert_eq!(p.lambda_meter().tracked_flows(), 1);
        assert_eq!(p.lambda_snapshot().invocations, 3);
        // Unattributed invocations never create a window.
        p.invoke(FunctionConfig::worker("w", 512), VirtualTime::ZERO, |_| {
            Ok(())
        })
        .join()
        .expect("ok");
        assert_eq!(p.lambda_meter().tracked_flows(), 1);
    }

    #[test]
    fn worker_clock_is_stamped_with_the_flow() {
        let p = platform();
        let (flow_seen, _) = p
            .invoke(
                FunctionConfig::worker("w", 512).for_flow(42),
                VirtualTime::ZERO,
                |ctx| Ok(ctx.clock_mut().flow()),
            )
            .join()
            .expect("ok");
        assert_eq!(flow_seen, 42);
    }

    #[test]
    fn keep_alive_bills_per_request_window_not_at_exit() {
        let p = platform();
        // A keep-alive body serving two request windows: each window bills
        // its own flow; the instance's exit adds nothing.
        let (reports, exit_report) = p
            .invoke(
                FunctionConfig::worker("warm", 1000)
                    .for_flow(7)
                    .keep_alive(),
                VirtualTime::ZERO,
                |ctx| {
                    // Window 1: the launch window (flow 7, covers cold start).
                    ctx.charge_work(25_000_000);
                    let r1 = ctx.finish_request();
                    // Window 2: a warm request on its own timeline.
                    ctx.begin_request(9, VirtualTime::from_micros(30_000));
                    ctx.charge_work(25_000_000);
                    let r2 = ctx.finish_request();
                    Ok((r1, r2))
                },
            )
            .join()
            .expect("ok");
        let (r1, r2) = reports;
        assert_eq!(exit_report.billed_ms, 0, "keep-alive exit is unbilled");
        assert!(r1.started >= VirtualTime::from_micros(280_000));
        assert_eq!(r2.started, VirtualTime::from_micros(30_000));
        assert!(
            r2.finished < r1.finished,
            "warm window lives on its own (earlier) timeline"
        );
        assert_eq!(p.lambda_meter().flow_snapshot(7).mb_ms, r1.billed_ms * 1000);
        assert_eq!(p.lambda_meter().flow_snapshot(9).mb_ms, r2.billed_ms * 1000);
        // Global duration billing is exactly the sum of the two windows.
        assert_eq!(
            p.lambda_snapshot().mb_ms,
            (r1.billed_ms + r2.billed_ms) * 1000
        );
        // The launch invocation itself billed to the creating flow only.
        assert_eq!(p.lambda_meter().flow_snapshot(7).invocations, 1);
        assert_eq!(p.lambda_meter().flow_snapshot(9).invocations, 0);
    }

    #[test]
    fn begin_request_restarts_timeout_and_peak_tracking() {
        let p = platform();
        let (peaks, _) = p
            .invoke(
                FunctionConfig::worker("warm", 1024).keep_alive(),
                VirtualTime::ZERO,
                |ctx| {
                    ctx.track_alloc(80 * 1024 * 1024); // resident weights
                    ctx.track_alloc(100 * 1024 * 1024); // request-1 scratch
                    ctx.track_free(100 * 1024 * 1024);
                    let peak1 = ctx.finish_request().peak_mem_bytes;
                    ctx.begin_request(2, VirtualTime::ZERO);
                    ctx.check_limits()?; // fresh window: timeout restarted
                    let peak2 = ctx.finish_request().peak_mem_bytes;
                    Ok((peak1, peak2))
                },
            )
            .join()
            .expect("ok");
        assert_eq!(peaks.0, 180 * 1024 * 1024);
        assert_eq!(
            peaks.1,
            80 * 1024 * 1024,
            "peak restarts from the resident weights"
        );
    }

    #[test]
    fn raised_abort_flag_fails_limit_checks() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let p = platform();
        let flag = Arc::new(AtomicBool::new(false));
        let f = flag.clone();
        let res = p
            .invoke(
                FunctionConfig::worker("w", 512),
                VirtualTime::ZERO,
                move |ctx| {
                    ctx.set_abort(f.clone());
                    ctx.check_limits()?; // not raised yet
                    f.store(true, Ordering::Relaxed);
                    ctx.check_limits()?;
                    Ok(())
                },
            )
            .join();
        match res {
            Err(FaasError::Comm(failure)) => assert_eq!(failure.op, "abort"),
            other => panic!("expected abort comm failure, got {other:?}"),
        }
    }

    #[test]
    fn injected_launch_fault_bills_the_request_but_never_runs_the_body() {
        use fsd_comm::{ApiClass, TargetedFault};
        let p = platform();
        p.env()
            .faults()
            .inject(TargetedFault::first(ApiClass::InstanceLaunch, "w"));
        let ran = Arc::new(AtomicU64::new(0));
        let r = ran.clone();
        let res = p
            .invoke(
                FunctionConfig::worker("w", 512),
                VirtualTime::ZERO,
                move |_| {
                    r.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                },
            )
            .join();
        match res {
            Err(FaasError::Comm(failure)) => assert_eq!(failure.op, "instance"),
            other => panic!("expected instance comm failure, got {other:?}"),
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "body must not run");
        // The failed launch still bills the invoke request (AWS semantics).
        assert_eq!(p.lambda_snapshot().invocations, 1);
        // The targeted schedule is consumed: the retry launches fine.
        p.invoke(FunctionConfig::worker("w", 512), VirtualTime::ZERO, |_| {
            Ok(())
        })
        .join()
        .expect("retry launches");
        assert_eq!(p.lambda_snapshot().invocations, 2);
    }

    #[test]
    fn parallel_invocations_all_bill() {
        let p = platform();
        let invs: Vec<_> = (0..8)
            .map(|i| {
                p.invoke(
                    FunctionConfig::worker(format!("w{i}"), 512),
                    VirtualTime::ZERO,
                    move |ctx| {
                        ctx.charge_work(1_000_000);
                        Ok(i)
                    },
                )
            })
            .collect();
        let mut got: Vec<usize> = invs.into_iter().map(|h| h.join().expect("ok").0).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(p.lambda_snapshot().invocations, 8);
    }
}
