//! # fsd-faas — the serverless compute substrate (AWS Lambda role)
//!
//! Function instances are real threads whose *timing* lives on a virtual
//! clock: invoke latency, cold starts, a memory-proportional vCPU share
//! ([`ComputeModel`]), and enforcement of the two limits that shape the
//! paper's entire design space — instance memory and the 15-minute
//! runtime cap ([`FaasError`]). Billing follows Lambda: a per-invocation
//! request charge plus MB-milliseconds of execution ([`LambdaMeter`]).
//!
//! The [`launch`] module implements the paper's hierarchical
//! `worker_invoke_children` tree: every worker derives its rank and its
//! children's ranks locally and launches its own subtree, populating `P`
//! instances in `O(log P)` invocation rounds.
//!
//! ```
//! use fsd_comm::{CloudConfig, CloudEnv, VirtualTime};
//! use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};
//!
//! let env = CloudEnv::new(CloudConfig::deterministic(0));
//! let platform = FaasPlatform::new(env, ComputeModel::default());
//! let inv = platform.invoke(FunctionConfig::worker("w", 1024), VirtualTime::ZERO, |ctx| {
//!     ctx.charge_work(1_000_000);
//!     Ok(2 + 2)
//! });
//! assert_eq!(inv.join().unwrap().0, 4);
//! ```
#![forbid(unsafe_code)]

mod compute;
pub mod launch;
pub mod lockorder;
mod platform;

pub use compute::{ComputeModel, MAX_MEMORY_MB, MAX_TIMEOUT_SECS, MB_PER_VCPU, MIN_MEMORY_MB};
pub use platform::{
    CommFailure, FaasError, FaasPlatform, FunctionConfig, Invocation, InvocationReport,
    LambdaMeter, LambdaSnapshot, WorkerCtx,
};
