//! The FaaS compute-time model.
//!
//! Lambda allocates vCPU proportionally to memory (1 vCPU per 1769 MB, up
//! to 10240 MB ≈ 5.8 vCPU) — the source of the cost-to-performance
//! trade-off the paper's cost model discusses. Work done by a worker is
//! counted in *work units* (multiply-adds, bytes decoded, …) by the actual
//! kernels; this model converts units to simulated seconds.

/// AWS-published memory-to-vCPU ratio (MB per vCPU).
pub const MB_PER_VCPU: f64 = 1769.0;

/// Lambda memory floor/ceiling (MB) at the time of the paper.
pub const MIN_MEMORY_MB: u32 = 128;
pub const MAX_MEMORY_MB: u32 = 10_240;

/// Maximum function runtime (15 minutes) at the time of the paper.
pub const MAX_TIMEOUT_SECS: f64 = 900.0;

/// Converts work units to simulated seconds given an instance size.
#[derive(Debug, Clone, Copy)]
pub struct ComputeModel {
    /// Work units per second on one full vCPU.
    pub units_per_sec_per_vcpu: f64,
    /// Parallelizable fraction of the workload (Amdahl) — batch inference
    /// parallelizes across samples on multi-vCPU instances/servers.
    pub parallel_fraction: f64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        // ~250M sparse multiply-accumulates per second per vCPU: the order
        // of magnitude of index-chasing f32 SpGEMM on one cloud core.
        ComputeModel {
            units_per_sec_per_vcpu: 2.5e8,
            parallel_fraction: 0.85,
        }
    }
}

impl ComputeModel {
    /// Fractional vCPUs for a memory size.
    pub fn vcpus(memory_mb: u32) -> f64 {
        memory_mb as f64 / MB_PER_VCPU
    }

    /// Simulated seconds to execute `work` units at `memory_mb`.
    ///
    /// Below one vCPU the instance gets a proportional share of a core;
    /// above one vCPU, Amdahl's law with [`ComputeModel::parallel_fraction`]
    /// bounds the speed-up.
    pub fn seconds(&self, work: u64, memory_mb: u32) -> f64 {
        let v = Self::vcpus(memory_mb);
        let single = work as f64 / self.units_per_sec_per_vcpu;
        if v <= 1.0 {
            single / v.max(1e-3)
        } else {
            single * ((1.0 - self.parallel_fraction) + self.parallel_fraction / v)
        }
    }

    /// Simulated seconds on an explicit vCPU count (server baselines).
    pub fn seconds_on_vcpus(&self, work: u64, vcpus: f64) -> f64 {
        let single = work as f64 / self.units_per_sec_per_vcpu;
        if vcpus <= 1.0 {
            single / vcpus.max(1e-3)
        } else {
            single * ((1.0 - self.parallel_fraction) + self.parallel_fraction / vcpus)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcpus_match_aws_ratio() {
        assert!((ComputeModel::vcpus(1769) - 1.0).abs() < 1e-9);
        assert!((ComputeModel::vcpus(10_240) - 5.788).abs() < 0.01);
        assert!(ComputeModel::vcpus(128) < 0.1);
    }

    #[test]
    fn sub_vcpu_instances_slow_proportionally() {
        let m = ComputeModel::default();
        let half = m.seconds(1_000_000, (MB_PER_VCPU / 2.0) as u32);
        let full = m.seconds(1_000_000, MB_PER_VCPU as u32);
        assert!(
            (half / full - 2.0).abs() < 0.01,
            "half-vCPU should be ~2x slower"
        );
    }

    #[test]
    fn amdahl_limits_multicore_speedup() {
        let m = ComputeModel::default();
        let one = m.seconds_on_vcpus(1_000_000_000, 1.0);
        let many = m.seconds_on_vcpus(1_000_000_000, 48.0);
        let speedup = one / many;
        assert!(
            speedup > 4.0,
            "48 cores should speed up > 4x, got {speedup:.1}"
        );
        assert!(
            speedup < 48.0 / 2.0,
            "speedup {speedup:.1} ignores serial fraction"
        );
    }

    #[test]
    fn more_memory_is_never_slower() {
        let m = ComputeModel::default();
        let mut last = f64::INFINITY;
        for mb in [256u32, 512, 1024, 1769, 4096, 10_240] {
            let t = m.seconds(10_000_000, mb);
            assert!(t <= last + 1e-12, "seconds({mb}) regressed");
            last = t;
        }
    }

    #[test]
    fn zero_work_costs_nothing() {
        let m = ComputeModel::default();
        assert_eq!(m.seconds(0, 1024), 0.0);
    }
}
