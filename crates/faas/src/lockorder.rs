//! Debug-assertions lock-order registry.
//!
//! The platform's multi-lock sites follow a documented acquisition order
//! (e.g. the warm pool's "shelf before counters"). Nothing used to enforce
//! it: an inverted acquisition in a rarely-hit branch deadlocks only under
//! the right interleaving, which tests rarely produce. This registry turns
//! ordering bugs into immediate panics on *any* interleaving, in debug
//! builds only — release builds compile the whole thing to nothing.
//!
//! Usage: assign each lock a rank (see [`rank`]); immediately before
//! acquiring, obtain an [`OrderToken`] via [`acquire`]. Acquiring a rank
//! lower than or equal to the highest rank currently held by the same
//! thread panics with both lock names. Tokens release their rank on drop,
//! so bind them alongside the guard (`let (_ord, guard) = ...`).
//!
//! The `lock-across-blocking` static lint and this registry are
//! complementary: the lint catches guards held across blocking calls at
//! compile-review time; the registry catches inverted acquisition orders
//! the lexer cannot see (locks acquired behind function calls).

/// Well-known ranks for the platform's documented lock orders. Gaps are
/// deliberate so new locks can slot between existing ones.
pub mod rank {
    /// Warm-pool shelf (`TreePool::shelf`) — always first.
    pub const POOL_SHELF: u16 = 10;
    /// Warm-pool counters (`TreePool::counters`) — only after the shelf.
    pub const POOL_COUNTERS: u16 = 20;
    /// Shared weight-cache block map (`WeightCache`) — leaf-level: taken
    /// briefly on the load path, never while invoking or waiting, so it
    /// ranks after every pool lock.
    pub const WEIGHT_CACHE: u16 = 30;
}

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records one ranked acquisition; drops release it.
    #[must_use = "bind the token alongside the lock guard, or the rank releases immediately"]
    pub struct OrderToken {
        rank: u16,
    }

    pub fn acquire(rank: u16, name: &'static str) -> OrderToken {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                assert!(
                    rank > top_rank,
                    "lock-order inversion: acquiring `{name}` (rank {rank}) while \
                     holding `{top_name}` (rank {top_rank}); ranks must strictly increase"
                );
            }
            held.push((rank, name));
        });
        OrderToken { rank }
    }

    impl Drop for OrderToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Guards usually drop LIFO, but struct fields and manual
                // drops may not; release the innermost entry of this rank.
                if let Some(pos) = held.iter().rposition(|&(r, _)| r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    /// Records one ranked acquisition; a no-op in release builds.
    #[must_use = "bind the token alongside the lock guard, or the rank releases immediately"]
    pub struct OrderToken {}

    #[inline(always)]
    pub fn acquire(_rank: u16, _name: &'static str) -> OrderToken {
        OrderToken {}
    }
}

pub use imp::OrderToken;

/// Registers an acquisition of `rank` under `name` on this thread,
/// panicking (debug builds only) if `rank` does not strictly exceed every
/// rank the thread already holds. Returns the token that releases the rank
/// on drop.
pub fn acquire(rank: u16, name: &'static str) -> OrderToken {
    imp::acquire(rank, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_ranks_are_fine() {
        let a = acquire(rank::POOL_SHELF, "shelf");
        let b = acquire(rank::POOL_COUNTERS, "counters");
        drop(b);
        drop(a);
        // Re-acquiring after release is fine too.
        let _c = acquire(rank::POOL_SHELF, "shelf");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "registry is compiled out in release")]
    fn inversion_panics() {
        let _b = acquire(rank::POOL_COUNTERS, "counters");
        let r = std::panic::catch_unwind(|| {
            let _a = acquire(rank::POOL_SHELF, "shelf");
        });
        assert!(r.is_err(), "acquiring a lower rank must panic");
    }

    #[test]
    fn out_of_order_drop_releases_correct_rank() {
        let a = acquire(rank::POOL_SHELF, "shelf");
        let b = acquire(rank::POOL_COUNTERS, "counters");
        drop(a); // not LIFO
        drop(b);
        let _again = acquire(rank::POOL_SHELF, "shelf");
    }
}
