//! The hierarchical launch tree (`worker_invoke_children`).
//!
//! FSD-Inference launches `P` workers as a b-ary tree: the coordinator
//! invokes worker 0; every worker derives its children from its own rank
//! and invokes them before starting compute. Launch latency is therefore
//! `O(log_b P)` invocation rounds instead of `O(P)` for a central loop —
//! the paper reports this beats both a single launch loop and Lambada's
//! two-level scheme. Ranks are assigned deterministically so each instance
//! can compute its own position with no coordination.
//!
//! # Degenerate branching
//!
//! `branching = 1` is **documented, supported behavior**: the "tree"
//! degrades to a serial invocation chain (`rank r` launches only
//! `rank r + 1`), so [`launch_rounds`]`(P, 1) == P` — the central-loop
//! cost the paper compares against. Callers that care about launch
//! latency (notably the warm pool's cold-start fallback) assert this
//! equivalence rather than silently paying `O(P)` rounds. `branching = 0`
//! is rejected: a node with no children could never populate the tree.

/// Children of `rank` in a `branching`-ary tree over `0..total`.
/// With `branching = 1` this is the serial chain `[rank + 1]` (see the
/// module docs on degenerate branching).
pub fn children_of(rank: usize, branching: usize, total: usize) -> Vec<usize> {
    assert!(branching >= 1, "branching factor must be ≥ 1");
    (1..=branching)
        .map(|i| rank * branching + i)
        .take_while(|&c| c < total)
        .collect()
}

/// Parent of `rank` (`None` for the root).
pub fn parent_of(rank: usize, branching: usize) -> Option<usize> {
    if rank == 0 {
        None
    } else {
        Some((rank - 1) / branching)
    }
}

/// Depth of `rank` in the tree (root = 0).
pub fn depth_of(rank: usize, branching: usize) -> usize {
    let mut d = 0;
    let mut r = rank;
    while let Some(p) = parent_of(r, branching) {
        r = p;
        d += 1;
    }
    d
}

/// The child of `from` through which frames for `dst` travel: `dst`'s
/// ancestor whose parent is `from` (or `dst` itself when it is a direct
/// child). This is the weight-multicast routing step — a parent forwards
/// a block one hop toward its final rank.
///
/// # Panics
/// If `dst` is not in `from`'s subtree (the caller routed against the
/// tree shape).
pub fn hop_toward(from: usize, dst: usize, branching: usize) -> usize {
    let mut hop = dst;
    loop {
        match parent_of(hop, branching) {
            Some(p) if p == from => return hop,
            Some(p) => hop = p,
            // fsd_lint::allow(no-unwrap): tree-shape invariant — routing
            // toward a rank outside the subtree is a caller bug.
            None => panic!("rank {dst} is not in the subtree of rank {from}"),
        }
    }
}

/// Every rank in `root`'s subtree (including `root`), in BFS order — the
/// set of destinations whose weight blocks travel through `root`.
pub fn subtree_of(root: usize, branching: usize, total: usize) -> Vec<usize> {
    let mut out = vec![root];
    let mut i = 0;
    while i < out.len() {
        out.extend(children_of(out[i], branching, total));
        i += 1;
    }
    out
}

/// Number of sequential invocation rounds to populate the whole tree —
/// the launch critical path (tree height + 1 initial invocation).
///
/// Documented edge cases: `launch_rounds(0, b) == 0` (an empty tree
/// launches nothing), and `launch_rounds(P, 1) == P` (unary branching is
/// a serial loop — see the module docs on degenerate branching).
pub fn launch_rounds(total: usize, branching: usize) -> usize {
    if total == 0 {
        return 0;
    }
    1 + depth_of(total - 1, branching)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tree_structure() {
        assert_eq!(children_of(0, 2, 7), vec![1, 2]);
        assert_eq!(children_of(1, 2, 7), vec![3, 4]);
        assert_eq!(children_of(2, 2, 7), vec![5, 6]);
        assert_eq!(children_of(3, 2, 7), Vec::<usize>::new());
    }

    #[test]
    fn truncated_tree_drops_out_of_range_children() {
        assert_eq!(children_of(1, 3, 6), vec![4, 5]);
        assert_eq!(children_of(2, 3, 6), Vec::<usize>::new());
    }

    #[test]
    fn parents_invert_children() {
        for b in 1..5 {
            for rank in 0..40 {
                for &c in &children_of(rank, b, 1000) {
                    assert_eq!(parent_of(c, b), Some(rank), "b={b} rank={rank} child={c}");
                }
            }
        }
    }

    #[test]
    fn every_rank_reachable_exactly_once() {
        let total = 62;
        let b = 4;
        let mut seen = vec![false; total];
        let mut frontier = vec![0usize];
        seen[0] = true;
        while let Some(r) = frontier.pop() {
            for c in children_of(r, b, total) {
                assert!(!seen[c], "rank {c} launched twice");
                seen[c] = true;
                frontier.push(c);
            }
        }
        assert!(seen.iter().all(|&s| s), "unreached ranks exist");
    }

    #[test]
    fn depth_and_rounds() {
        assert_eq!(depth_of(0, 2), 0);
        assert_eq!(depth_of(1, 2), 1);
        assert_eq!(depth_of(6, 2), 2);
        assert_eq!(launch_rounds(1, 4), 1);
        assert_eq!(launch_rounds(62, 4), 1 + depth_of(61, 4));
        // Tree launch must be exponentially better than a serial loop.
        assert!(launch_rounds(62, 4) <= 4);
        assert_eq!(launch_rounds(0, 4), 0);
    }

    #[test]
    fn unary_tree_degenerates_to_chain() {
        assert_eq!(children_of(3, 1, 10), vec![4]);
        assert_eq!(launch_rounds(10, 1), 10);
    }

    #[test]
    fn hop_toward_routes_one_step_down() {
        // b=4, P=8: 0 → {1,2,3,4}, 1 → {5,6,7}.
        assert_eq!(hop_toward(0, 3, 4), 3);
        assert_eq!(hop_toward(0, 6, 4), 1);
        assert_eq!(hop_toward(1, 6, 4), 6);
        // Deep chain with b=1.
        assert_eq!(hop_toward(2, 9, 1), 3);
    }

    #[test]
    #[should_panic(expected = "not in the subtree")]
    fn hop_toward_rejects_foreign_destinations() {
        hop_toward(2, 1, 4);
    }

    #[test]
    fn subtree_enumerates_descendants() {
        assert_eq!(subtree_of(0, 4, 8), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(subtree_of(1, 4, 8), vec![1, 5, 6, 7]);
        assert_eq!(subtree_of(3, 4, 8), vec![3]);
        // Every dst in a subtree routes through that subtree's root.
        for &dst in &subtree_of(1, 4, 62)[1..] {
            assert_eq!(hop_toward(0, dst, 4), 1);
        }
    }
}
