//! H-SpFF: the optimized HPC baseline (Demirci & Ferhatosmanoglu, ICS'21).
//!
//! A distributed sparse feed-forward engine on an on-premise cluster with
//! MPI over a fast interconnect. We model `P` well-provisioned nodes running
//! the same hypergraph-partitioned workload, with per-layer communication at
//! interconnect bandwidth and microsecond message latency — the environment
//! FSD-Inference is benchmarked *against* (the paper reports ≈ 40 % higher
//! latency than H-SpFF at N = 65536, at far lower cost of entry).

use crate::server::PlatformReport;
use fsd_faas::ComputeModel;
use fsd_model::SparseDnn;
use fsd_partition::{partition_model, CommPlan, PartitionScheme};
use fsd_sparse::SparseRows;

/// HPC cluster parameters.
#[derive(Debug, Clone, Copy)]
pub struct HpcConfig {
    /// Cluster nodes used.
    pub nodes: u32,
    /// vCPUs (cores) per node.
    pub cores_per_node: u32,
    /// MPI point-to-point bandwidth (bytes/s) — e.g. 100 Gb/s fabric.
    pub interconnect_bps: u64,
    /// Per-message MPI latency (seconds).
    pub message_latency_secs: f64,
}

impl Default for HpcConfig {
    fn default() -> Self {
        HpcConfig {
            nodes: 16,
            cores_per_node: 24,
            interconnect_bps: 10_000_000_000,
            message_latency_secs: 5e-6,
        }
    }
}

/// Runs the H-SpFF model: real inference output, modeled HPC latency.
/// Cost is `None` — the paper has no cost figures for the HPC platform.
pub fn run_hspff(
    dnn: &SparseDnn,
    inputs: &SparseRows,
    cfg: &HpcConfig,
    compute: &ComputeModel,
) -> PlatformReport {
    let (output, trace) = dnn.serial_inference_traced(inputs);
    // Compute: work split across nodes (hypergraph-balanced), each node
    // multithreaded across its cores.
    let per_node_work = trace.work / cfg.nodes.max(1) as u64;
    let compute_secs = compute.seconds_on_vcpus(per_node_work, cfg.cores_per_node as f64);
    // Communication: the same partitioning structure FSD uses, but over the
    // interconnect. Volume ≈ plan row-sends × average row payload bytes.
    let part = partition_model(dnn, cfg.nodes as usize, PartitionScheme::Hgp, 17);
    let plan = CommPlan::build(dnn, &part);
    let avg_row_nnz = if inputs.n_rows() == 0 {
        0.0
    } else {
        inputs.nnz() as f64 / inputs.n_rows() as f64
    };
    let bytes_per_row = avg_row_nnz * 8.0; // index + f32 value
    let total_bytes = plan.total_row_sends() as f64 * bytes_per_row;
    // Per layer the exchange is spread over P nodes; the critical path sees
    // roughly total/P bytes plus a message latency per pair.
    let comm_secs = total_bytes / cfg.nodes.max(1) as f64 / cfg.interconnect_bps as f64
        + plan.total_pairs() as f64 / cfg.nodes.max(1) as f64 * cfg.message_latency_secs;
    PlatformReport {
        platform: format!("H-SpFF ({} nodes)", cfg.nodes),
        latency_secs: compute_secs + comm_secs,
        cost_per_query: None,
        daily_fixed_cost: None,
        output,
        samples: inputs.width(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};

    fn setup() -> (SparseDnn, SparseRows) {
        let dnn = generate_dnn(&DnnSpec {
            neurons: 128,
            layers: 4,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 21,
        });
        let inputs = generate_inputs(128, &InputSpec::scaled(32, 21));
        (dnn, inputs)
    }

    #[test]
    fn output_matches_ground_truth_and_no_cost() {
        let (dnn, inputs) = setup();
        let r = run_hspff(
            &dnn,
            &inputs,
            &HpcConfig::default(),
            &ComputeModel::default(),
        );
        assert_eq!(r.output, dnn.serial_inference(&inputs));
        assert!(r.cost_per_query.is_none());
        assert!(r.daily_fixed_cost.is_none());
        assert!(r.latency_secs > 0.0);
    }

    #[test]
    fn more_nodes_is_faster_when_compute_bound() {
        // A compute-heavy workload (big batch, slow cores) must scale with
        // node count; at toy scale comm noise can win, so pin the regime.
        let dnn = generate_dnn(&DnnSpec {
            neurons: 256,
            layers: 8,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 4,
        });
        let inputs = generate_inputs(256, &InputSpec::scaled(256, 4));
        let cm = ComputeModel {
            units_per_sec_per_vcpu: 1e6,
            ..ComputeModel::default()
        };
        let small = run_hspff(
            &dnn,
            &inputs,
            &HpcConfig {
                nodes: 2,
                ..HpcConfig::default()
            },
            &cm,
        );
        let big = run_hspff(
            &dnn,
            &inputs,
            &HpcConfig {
                nodes: 16,
                ..HpcConfig::default()
            },
            &cm,
        );
        assert!(
            big.latency_secs < small.latency_secs,
            "16 nodes {} vs 2 nodes {}",
            big.latency_secs,
            small.latency_secs
        );
    }

    #[test]
    fn hpc_beats_single_small_server() {
        use crate::server::{run_server, ServerKind, ServerTimings, C5_2XLARGE};
        let (dnn, inputs) = setup();
        let cm = ComputeModel::default();
        let hpc = run_hspff(&dnn, &inputs, &HpcConfig::default(), &cm);
        let server = run_server(
            &dnn,
            &inputs,
            ServerKind::AlwaysOnHot,
            C5_2XLARGE,
            &cm,
            &ServerTimings::default(),
        )
        .expect("fits");
        assert!(hpc.latency_secs < server.latency_secs);
    }
}
