//! Sage-SL-Inf: the commercial serverless inference endpoint baseline.
//!
//! Models SageMaker Serverless Inference as deployed in the paper: a single
//! managed FaaS instance with (then-current) limits of **6 GB memory**,
//! **6 MB request payload**, and **60 s runtime**. The paper found it could
//! not load the larger models and could only process truncated batches
//! (8 000 / 2 500 / 1 000 samples at N = 1024/4096/16384; nothing at
//! 65536) — this model reproduces that behaviour mechanically from the
//! limits rather than by hard-coding outcomes.

use crate::server::{BaselineError, PlatformReport};
use fsd_faas::ComputeModel;
use fsd_model::SparseDnn;
use fsd_sparse::{codec, SparseRows};

/// SageMaker Serverless limits and prices at the paper's time of writing.
#[derive(Debug, Clone, Copy)]
pub struct SageConfig {
    /// Maximum endpoint memory (bytes): 6 GB.
    pub memory_bytes: usize,
    /// Maximum request payload (bytes): 6 MB.
    pub payload_bytes: usize,
    /// Maximum runtime per request (seconds): 60.
    pub runtime_secs: f64,
    /// Endpoint cold-start + dispatch overhead per request (seconds).
    pub dispatch_secs: f64,
    /// Compute price per GB-second (serverless inference premium over raw
    /// Lambda compute).
    pub usd_per_gb_s: f64,
    /// Per-request charge.
    pub usd_per_request: f64,
}

impl Default for SageConfig {
    fn default() -> Self {
        SageConfig {
            memory_bytes: 6 * 1024 * 1024 * 1024,
            payload_bytes: 6 * 1024 * 1024,
            runtime_secs: 60.0,
            // Serverless endpoint dispatch + container warm-up; multi-
            // second cold starts are typical for SageMaker Serverless.
            dispatch_secs: 1.0,
            usd_per_gb_s: 0.000_020_0,
            usd_per_request: 0.20 / 1e6,
        }
    }
}

/// Outcome of a Sage-SL-Inf run: the report plus how many samples were
/// actually processed (the paper reports truncated batches).
pub fn run_sagemaker(
    dnn: &SparseDnn,
    inputs: &SparseRows,
    cfg: &SageConfig,
    compute: &ComputeModel,
) -> Result<PlatformReport, BaselineError> {
    let model_bytes = dnn.mem_bytes();
    // PyTorch runtime + model + working set must fit 6 GB.
    if model_bytes * 10 / 8 > cfg.memory_bytes {
        return Err(BaselineError::OutOfMemory {
            need_bytes: model_bytes,
            limit_bytes: cfg.memory_bytes,
        });
    }
    // Find the largest sample count whose (a) request payload fits 6 MB and
    // (b) inference finishes inside 60 s. Binary search over prefix widths.
    let total = inputs.width();
    let vcpus = cfg.memory_bytes as f64 / 1024.0 / 1024.0 / 1769.0;
    let fits = |samples: usize| -> bool {
        if samples == 0 {
            return true;
        }
        let share = take_samples(inputs, samples);
        if codec::encode(&share).len() > cfg.payload_bytes {
            return false;
        }
        let (_, trace) = dnn.serial_inference_traced(&share);
        compute.seconds_on_vcpus(trace.work, vcpus) <= cfg.runtime_secs - cfg.dispatch_secs
    };
    let mut lo = 0usize;
    let mut hi = total;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let samples = lo;
    if samples == 0 {
        return Err(BaselineError::QuotaExceeded(
            "no samples fit the 6 MB payload / 60 s runtime limits".to_string(),
        ));
    }
    let share = take_samples(inputs, samples);
    let (output, trace) = dnn.serial_inference_traced(&share);
    let compute_secs = compute.seconds_on_vcpus(trace.work, vcpus);
    let latency = cfg.dispatch_secs + compute_secs;
    let gb = cfg.memory_bytes as f64 / 1024.0 / 1024.0 / 1024.0;
    let cost = cfg.usd_per_request + latency * gb * cfg.usd_per_gb_s;
    Ok(PlatformReport {
        platform: "Sage-SL-Inf".to_string(),
        latency_secs: latency,
        cost_per_query: Some(cost),
        daily_fixed_cost: None,
        output,
        samples,
    })
}

/// Restricts a batch to its first `samples` columns.
fn take_samples(inputs: &SparseRows, samples: usize) -> SparseRows {
    let mut out = SparseRows::new(samples);
    for (id, cols, vals) in inputs.iter() {
        let keep: Vec<usize> = cols
            .iter()
            .enumerate()
            .filter(|(_, &c)| (c as usize) < samples)
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() {
            continue;
        }
        let c: Vec<u32> = keep.iter().map(|&i| cols[i]).collect();
        let v: Vec<f32> = keep.iter().map(|&i| vals[i]).collect();
        out.push_row(id, &c, &v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};

    fn dnn(neurons: usize, layers: usize) -> SparseDnn {
        generate_dnn(&DnnSpec {
            neurons,
            layers,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 2,
        })
    }

    #[test]
    fn take_samples_truncates_columns() {
        let b = SparseRows::from_rows(
            8,
            [
                (0u32, vec![0u32, 3, 7], vec![1.0f32, 2.0, 3.0]),
                (4, vec![6], vec![4.0]),
            ],
        );
        let t = take_samples(&b, 4);
        assert_eq!(t.width(), 4);
        assert_eq!(t.row_by_id(0), Some((&[0u32, 3][..], &[1.0f32, 2.0][..])));
        assert_eq!(t.row_by_id(4), None);
    }

    #[test]
    fn small_model_processes_full_batch() {
        let d = dnn(64, 3);
        let inputs = generate_inputs(64, &InputSpec::scaled(32, 3));
        let r = run_sagemaker(
            &d,
            &inputs,
            &SageConfig::default(),
            &ComputeModel::default(),
        )
        .expect("fits");
        assert_eq!(r.samples, 32);
        assert_eq!(r.output, d.serial_inference(&inputs));
        assert!(r.cost_per_query.expect("billed") > 0.0);
    }

    #[test]
    fn runtime_limit_truncates_batch() {
        let d = dnn(256, 8);
        let inputs = generate_inputs(256, &InputSpec::scaled(64, 3));
        // Starve the runtime limit so only a prefix fits.
        let cfg = SageConfig {
            runtime_secs: 1.1,
            dispatch_secs: 1.0,
            ..SageConfig::default()
        };
        // Slow "hardware" so per-sample compute is material.
        let compute = ComputeModel {
            units_per_sec_per_vcpu: 2e5,
            ..ComputeModel::default()
        };
        match run_sagemaker(&d, &inputs, &cfg, &compute) {
            Ok(r) => assert!(r.samples < 64, "expected truncation, got {}", r.samples),
            Err(BaselineError::QuotaExceeded(_)) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn payload_limit_truncates_batch() {
        let d = dnn(64, 2);
        let inputs = generate_inputs(64, &InputSpec::scaled(512, 3));
        let cfg = SageConfig {
            payload_bytes: 400,
            ..SageConfig::default()
        };
        match run_sagemaker(&d, &inputs, &cfg, &ComputeModel::default()) {
            Ok(r) => assert!(r.samples < 512),
            Err(BaselineError::QuotaExceeded(_)) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn oversized_model_cannot_load() {
        let spec = DnnSpec {
            neurons: 1 << 21,
            layers: 120,
            nnz_per_row: 32,
            bias: -0.45,
            clip: 32.0,
            seed: 0,
        };
        assert!(spec.weight_bytes() * 10 / 8 > SageConfig::default().memory_bytes);
        // Use the real check with a shrunk memory limit to avoid generating
        // a multi-GB model in tests.
        let d = dnn(256, 3);
        let cfg = SageConfig {
            memory_bytes: 10_000,
            ..SageConfig::default()
        };
        let inputs = generate_inputs(256, &InputSpec::scaled(16, 1));
        assert!(matches!(
            run_sagemaker(&d, &inputs, &cfg, &ComputeModel::default()),
            Err(BaselineError::OutOfMemory { .. })
        ));
    }
}
