//! # fsd-baselines — the platforms FSD-Inference is evaluated against
//!
//! * [`run_server`] — Server-Always-On (hot/cold) and Server-Job-Scoped on
//!   EC2 c5 instances, the paper's server-ful cloud baselines;
//! * [`run_hspff`] — H-SpFF, the optimized on-premise HPC solution
//!   (MPI-style, hypergraph-partitioned);
//! * [`run_sagemaker`] — Sage-SL-Inf, the commercial serverless endpoint
//!   with its 6 GB / 6 MB / 60 s limits.
//!
//! All baselines execute the *real* inference kernel (their outputs are
//! checked against ground truth) and model their platform's latency and
//! billing.
#![forbid(unsafe_code)]

mod hspff;
mod sagemaker;
mod server;

pub use hspff::{run_hspff, HpcConfig};
pub use sagemaker::{run_sagemaker, SageConfig};
pub use server::{
    job_scoped_instance, run_server, BaselineError, InstanceType, PlatformReport, ServerKind,
    ServerTimings, C5_12XLARGE, C5_2XLARGE, C5_9XLARGE,
};
