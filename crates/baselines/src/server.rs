//! Server-based baselines: Server-Always-On (hot/cold) and Server-Job-Scoped.
//!
//! Both run the same single-node inference kernel as FSD-Inf-Serial, on EC2
//! compute-optimized instances sized per the paper (§VI-A2): the smallest
//! instance with more total vCPU and memory than the equivalent
//! FSD-Inference deployment. Latency composition:
//!
//! * **Always-On-Hot** — model already resident: pure compute;
//! * **Always-On-Cold** — model fetched from EBS-like block storage first
//!   (the SageMaker multi-model-endpoint eviction behaviour the paper
//!   mimics);
//! * **Job-Scoped** — instance provisioning (minutes) + object-storage
//!   model load + compute.

use fsd_faas::ComputeModel;
use fsd_model::SparseDnn;
use fsd_sparse::SparseRows;

/// An EC2 instance type (paper's c5 family, us-east-1 on-demand pricing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceType {
    pub name: &'static str,
    pub vcpus: u32,
    pub mem_gib: u32,
    pub hourly_usd: f64,
}

/// `c5.2xlarge` — 8 vCPU / 16 GiB.
pub const C5_2XLARGE: InstanceType = InstanceType {
    name: "c5.2xlarge",
    vcpus: 8,
    mem_gib: 16,
    hourly_usd: 0.34,
};
/// `c5.9xlarge` — 36 vCPU / 72 GiB.
pub const C5_9XLARGE: InstanceType = InstanceType {
    name: "c5.9xlarge",
    vcpus: 36,
    mem_gib: 72,
    hourly_usd: 1.53,
};
/// `c5.12xlarge` — 48 vCPU / 96 GiB.
pub const C5_12XLARGE: InstanceType = InstanceType {
    name: "c5.12xlarge",
    vcpus: 48,
    mem_gib: 96,
    hourly_usd: 2.04,
};

/// Picks the paper's job-scoped instance for a neuron count (§VI-A2).
pub fn job_scoped_instance(neurons: usize) -> InstanceType {
    match neurons {
        n if n <= 4096 => C5_2XLARGE,
        n if n <= 16384 => C5_9XLARGE,
        _ => C5_12XLARGE,
    }
}

/// Server execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// Always-on, model resident in memory (50 % of requests in §VI-C2).
    AlwaysOnHot,
    /// Always-on, model loaded from block storage.
    AlwaysOnCold,
    /// Provisioned on demand, model loaded from object storage.
    JobScoped,
}

/// Infrastructure timing parameters for the server baselines.
#[derive(Debug, Clone, Copy)]
pub struct ServerTimings {
    /// EBS-like block storage read bandwidth (bytes/s).
    pub ebs_bandwidth_bps: u64,
    /// Object storage read bandwidth (bytes/s).
    pub s3_bandwidth_bps: u64,
    /// Job-scoped instance provisioning delay (seconds) — "often several
    /// minutes" per the paper's introduction.
    pub provision_secs: f64,
    /// Process/start overhead for a query on a warm instance (seconds).
    pub dispatch_secs: f64,
    /// Fixed model (re)initialization cost when the model is not resident:
    /// deserialization + inference-server warm-up, paid by AO-Cold and
    /// Job-Scoped on top of the raw byte transfer.
    pub cold_init_secs: f64,
}

impl Default for ServerTimings {
    fn default() -> Self {
        ServerTimings {
            ebs_bandwidth_bps: 250_000_000,
            s3_bandwidth_bps: 85_000_000,
            provision_secs: 150.0,
            dispatch_secs: 0.05,
            cold_init_secs: 1.0,
        }
    }
}

/// What every baseline run reports (comparable to `InferenceReport`).
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Platform label for tables.
    pub platform: String,
    /// End-to-end query latency (seconds).
    pub latency_secs: f64,
    /// Marginal cost of this query (None where the paper lacks figures,
    /// e.g. H-SpFF; always-on platforms bill by the hour instead).
    pub cost_per_query: Option<f64>,
    /// Fixed daily cost of keeping the platform available (always-on).
    pub daily_fixed_cost: Option<f64>,
    /// The inference output.
    pub output: SparseRows,
    /// Samples processed (may be fewer than requested when limits bind).
    pub samples: usize,
}

/// Errors from baseline platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Model does not fit the platform's memory.
    OutOfMemory {
        need_bytes: usize,
        limit_bytes: usize,
    },
    /// Request violates a platform quota (payload, runtime…).
    QuotaExceeded(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::OutOfMemory {
                need_bytes,
                limit_bytes,
            } => {
                write!(
                    f,
                    "model needs {need_bytes} bytes, platform has {limit_bytes}"
                )
            }
            BaselineError::QuotaExceeded(what) => write!(f, "quota exceeded: {what}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Runs a server baseline. Executes the *real* inference (the output is
/// checked against ground truth by the harness) and models latency/cost.
pub fn run_server(
    dnn: &SparseDnn,
    inputs: &SparseRows,
    kind: ServerKind,
    instance: InstanceType,
    compute: &ComputeModel,
    timings: &ServerTimings,
) -> Result<PlatformReport, BaselineError> {
    let model_bytes = dnn.mem_bytes();
    let limit = instance.mem_gib as usize * 1024 * 1024 * 1024;
    // Headroom for activations/OS, as when the paper sizes its servers.
    if model_bytes * 10 / 8 > limit {
        return Err(BaselineError::OutOfMemory {
            need_bytes: model_bytes,
            limit_bytes: limit,
        });
    }
    let (output, trace) = dnn.serial_inference_traced(inputs);
    let compute_secs = compute.seconds_on_vcpus(trace.work, instance.vcpus as f64);
    let load_secs = match kind {
        ServerKind::AlwaysOnHot => 0.0,
        ServerKind::AlwaysOnCold => {
            timings.cold_init_secs + model_bytes as f64 / timings.ebs_bandwidth_bps as f64
        }
        ServerKind::JobScoped => {
            timings.provision_secs
                + timings.cold_init_secs
                + model_bytes as f64 / timings.s3_bandwidth_bps as f64
        }
    };
    let latency = timings.dispatch_secs + load_secs + compute_secs;
    let (cost_per_query, daily_fixed) = match kind {
        ServerKind::AlwaysOnHot | ServerKind::AlwaysOnCold => {
            // The paper provisions two instances for redundancy/overlap.
            (None, Some(2.0 * 24.0 * instance.hourly_usd))
        }
        ServerKind::JobScoped => {
            // Per-second billing with EC2's 60-second minimum.
            let billed_secs = latency.max(60.0);
            (Some(instance.hourly_usd * billed_secs / 3600.0), None)
        }
    };
    let label = match kind {
        ServerKind::AlwaysOnHot => "Server-Always-On-Hot",
        ServerKind::AlwaysOnCold => "Server-Always-On-Cold",
        ServerKind::JobScoped => "Server-Job-Scoped",
    };
    Ok(PlatformReport {
        platform: format!("{label} ({})", instance.name),
        latency_secs: latency,
        cost_per_query,
        daily_fixed_cost: daily_fixed,
        output,
        samples: inputs.width(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};

    fn setup() -> (SparseDnn, SparseRows) {
        let dnn = generate_dnn(&DnnSpec {
            neurons: 128,
            layers: 4,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 9,
        });
        let inputs = generate_inputs(128, &InputSpec::scaled(32, 9));
        (dnn, inputs)
    }

    #[test]
    fn hot_is_faster_than_cold_is_faster_than_job_scoped() {
        let (dnn, inputs) = setup();
        let cm = ComputeModel::default();
        let t = ServerTimings::default();
        let hot =
            run_server(&dnn, &inputs, ServerKind::AlwaysOnHot, C5_12XLARGE, &cm, &t).expect("fits");
        let cold = run_server(
            &dnn,
            &inputs,
            ServerKind::AlwaysOnCold,
            C5_12XLARGE,
            &cm,
            &t,
        )
        .expect("fits");
        let js =
            run_server(&dnn, &inputs, ServerKind::JobScoped, C5_2XLARGE, &cm, &t).expect("fits");
        assert!(hot.latency_secs < cold.latency_secs);
        assert!(cold.latency_secs < js.latency_secs);
        assert!(
            js.latency_secs > t.provision_secs,
            "job-scoped must pay provisioning"
        );
    }

    #[test]
    fn outputs_match_ground_truth() {
        let (dnn, inputs) = setup();
        let expected = dnn.serial_inference(&inputs);
        let r = run_server(
            &dnn,
            &inputs,
            ServerKind::AlwaysOnHot,
            C5_12XLARGE,
            &ComputeModel::default(),
            &ServerTimings::default(),
        )
        .expect("fits");
        assert_eq!(r.output, expected);
    }

    #[test]
    fn billing_modes() {
        let (dnn, inputs) = setup();
        let cm = ComputeModel::default();
        let t = ServerTimings::default();
        let hot =
            run_server(&dnn, &inputs, ServerKind::AlwaysOnHot, C5_12XLARGE, &cm, &t).expect("fits");
        assert!(hot.cost_per_query.is_none());
        assert!((hot.daily_fixed_cost.expect("fixed") - 2.0 * 24.0 * 2.04).abs() < 1e-9);
        let js =
            run_server(&dnn, &inputs, ServerKind::JobScoped, C5_2XLARGE, &cm, &t).expect("fits");
        let cost = js.cost_per_query.expect("per query");
        assert!(cost >= 0.34 * 60.0 / 3600.0, "minimum 60s billed");
        assert!(js.daily_fixed_cost.is_none());
    }

    #[test]
    fn oversized_model_rejected() {
        // A model bigger than c5.2xlarge's 16 GiB memory (with headroom).
        let spec = DnnSpec {
            neurons: 1 << 20,
            layers: 200,
            nnz_per_row: 10,
            bias: -0.3,
            clip: 32.0,
            seed: 0,
        };
        // Don't generate 2G nonzeros — construct a fake via mem estimate:
        // instead verify the check directly with a small dnn and a tiny box.
        assert!(spec.weight_bytes() > 16 * (1 << 30));
        let (dnn, inputs) = setup();
        let tiny = InstanceType {
            name: "tiny",
            vcpus: 2,
            mem_gib: 0,
            hourly_usd: 0.01,
        };
        let r = run_server(
            &dnn,
            &inputs,
            ServerKind::AlwaysOnHot,
            tiny,
            &ComputeModel::default(),
            &ServerTimings::default(),
        );
        assert!(matches!(r, Err(BaselineError::OutOfMemory { .. })));
    }

    #[test]
    fn job_scoped_instance_selection_follows_paper() {
        assert_eq!(job_scoped_instance(1024), C5_2XLARGE);
        assert_eq!(job_scoped_instance(4096), C5_2XLARGE);
        assert_eq!(job_scoped_instance(16384), C5_9XLARGE);
        assert_eq!(job_scoped_instance(65536), C5_12XLARGE);
    }
}
