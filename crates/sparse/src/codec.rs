//! Wire codec for [`SparseRows`] blocks.
//!
//! Intermediate activation rows are shipped between workers as byte strings
//! (pub-sub messages or object-store files). The codec uses delta + LEB128
//! varint encoding for ids and column indices — the dominant cost in sparse
//! payloads — followed by raw little-endian `f32` values. The encoded buffer
//! is typically further shrunk by [`crate::compress`].

use crate::rows::SparseRows;

/// Errors produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a field.
    Truncated,
    /// A varint ran past 5 bytes (u32 overflow).
    VarintOverflow,
    /// Decoded structure violates `SparseRows` invariants.
    Corrupt(&'static str),
    /// Trailing bytes after a complete decode.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::VarintOverflow => write!(f, "varint overflows u32"),
            CodecError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for CodecError {}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 28 && (byte & 0xf0) != 0 {
            return Err(CodecError::VarintOverflow);
        }
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 28 {
            return Err(CodecError::VarintOverflow);
        }
    }
}

/// Serializes a block. Layout:
/// `width, n_rows, { id_delta, nnz, { col_delta }, { f32le } }*`
/// where `id_delta` is the gap from the previous id (first id raw) and
/// `col_delta` the gap from the previous column within the row.
pub fn encode(block: &SparseRows) -> Vec<u8> {
    // Ids/cols are strictly increasing, so deltas (minus 1 for subsequent
    // entries) stay small; estimate ~2.5 bytes/entry + 4 bytes/value.
    let mut out = Vec::with_capacity(16 + block.nnz() * 7 + block.n_rows() * 4);
    put_varint(&mut out, block.width() as u32);
    put_varint(&mut out, block.n_rows() as u32);
    let mut prev_id = 0u32;
    for (i, (id, cols, vals)) in block.iter().enumerate() {
        let delta = if i == 0 { id } else { id - prev_id - 1 };
        prev_id = id;
        put_varint(&mut out, delta);
        put_varint(&mut out, cols.len() as u32);
        let mut prev_c = 0u32;
        for (j, &c) in cols.iter().enumerate() {
            let d = if j == 0 { c } else { c - prev_c - 1 };
            prev_c = c;
            put_varint(&mut out, d);
        }
        for &v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Deserializes a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<SparseRows, CodecError> {
    let mut pos = 0usize;
    let width = get_varint(buf, &mut pos)? as usize;
    let n_rows = get_varint(buf, &mut pos)? as usize;
    let mut block = SparseRows::new(width);
    let mut prev_id: Option<u32> = None;
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<f32> = Vec::new();
    for _ in 0..n_rows {
        let delta = get_varint(buf, &mut pos)?;
        let id = match prev_id {
            None => delta,
            Some(p) => p
                .checked_add(delta)
                .and_then(|v| v.checked_add(1))
                .ok_or(CodecError::Corrupt("row id overflow"))?,
        };
        prev_id = Some(id);
        let nnz = get_varint(buf, &mut pos)? as usize;
        cols.clear();
        cols.reserve(nnz);
        let mut prev_c: Option<u32> = None;
        for _ in 0..nnz {
            let d = get_varint(buf, &mut pos)?;
            let c = match prev_c {
                None => d,
                Some(p) => p
                    .checked_add(d)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(CodecError::Corrupt("column overflow"))?,
            };
            if c as usize >= width {
                return Err(CodecError::Corrupt("column out of range"));
            }
            prev_c = Some(c);
            cols.push(c);
        }
        vals.clear();
        vals.reserve(nnz);
        for _ in 0..nnz {
            let end = pos.checked_add(4).ok_or(CodecError::Truncated)?;
            let bytes = buf.get(pos..end).ok_or(CodecError::Truncated)?;
            vals.push(f32::from_le_bytes(bytes.try_into().expect("4-byte slice")));
            pos = end;
        }
        block.push_row(id, &cols, &vals);
    }
    if pos != buf.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(block)
}

/// Exact encoded size without materializing the buffer; used to pack
/// payloads against channel quotas.
pub fn encoded_size(block: &SparseRows) -> usize {
    fn varint_len(v: u32) -> usize {
        (1 + (31u32.saturating_sub(v.leading_zeros())) / 7) as usize
    }
    let mut n = varint_len(block.width() as u32) + varint_len(block.n_rows() as u32);
    let mut prev_id = 0u32;
    for (i, (id, cols, _)) in block.iter().enumerate() {
        let delta = if i == 0 { id } else { id - prev_id - 1 };
        prev_id = id;
        n += varint_len(delta) + varint_len(cols.len() as u32);
        let mut prev_c = 0u32;
        for (j, &c) in cols.iter().enumerate() {
            let d = if j == 0 { c } else { c - prev_c - 1 };
            prev_c = c;
            n += varint_len(d);
        }
        n += 4 * cols.len();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rows::SparseRows;

    fn block() -> SparseRows {
        SparseRows::from_rows(
            300,
            [
                (0u32, vec![0u32, 1, 299], vec![0.5f32, -2.0, 32.0]),
                (17, vec![128], vec![1.0]),
                (1000, vec![5, 6, 7, 250], vec![1.0, 2.0, 3.0, 4.0]),
            ],
        )
    }

    #[test]
    fn roundtrip_basic() {
        let b = block();
        let buf = encode(&b);
        let back = decode(&buf).expect("decodes");
        assert_eq!(back, b);
    }

    #[test]
    fn roundtrip_empty_block() {
        let b = SparseRows::new(64);
        let back = decode(&encode(&b)).expect("decodes");
        assert_eq!(back, b);
        assert!(back.is_empty());
    }

    #[test]
    fn encoded_size_is_exact() {
        for b in [block(), SparseRows::new(1), SparseRows::new(1 << 20)] {
            assert_eq!(encoded_size(&b), encode(&b).len());
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut out = Vec::new();
        for v in [0u32, 127, 128, 16383, 16384, u32::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).expect("valid"), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let buf = encode(&block());
        for cut in 0..buf.len() {
            let r = decode(&buf[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut buf = encode(&block());
        buf.push(0);
        assert_eq!(decode(&buf), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_column_out_of_range() {
        // width=1, one row id 0 with nnz=1, col=5 -> out of range
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // width
        put_varint(&mut buf, 1); // n_rows
        put_varint(&mut buf, 0); // id
        put_varint(&mut buf, 1); // nnz
        put_varint(&mut buf, 5); // col 5 >= width 1
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        assert_eq!(
            decode(&buf),
            Err(CodecError::Corrupt("column out of range"))
        );
    }

    #[test]
    fn decode_rejects_varint_overflow() {
        let buf = [0xff, 0xff, 0xff, 0xff, 0x7f, 0x00];
        assert_eq!(decode(&buf), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn special_float_values_survive() {
        let b = SparseRows::from_rows(
            4,
            [(
                0u32,
                vec![0u32, 1, 2],
                vec![f32::MIN_POSITIVE, f32::MAX, -0.0f32],
            )],
        );
        let back = decode(&encode(&b)).expect("decodes");
        assert_eq!(back, b);
    }

    #[test]
    fn dense_ids_compress_well() {
        // Consecutive ids and columns should encode near 1 byte per index.
        let rows: Vec<(u32, Vec<u32>, Vec<f32>)> = (0..100u32)
            .map(|i| (i, vec![0u32, 1, 2], vec![1.0f32; 3]))
            .collect();
        let b = SparseRows::from_rows(16, rows);
        let buf = encode(&b);
        // 300 values * 4B = 1200; index overhead should be ~500, not ~2400.
        assert!(buf.len() < 1800, "encoded size {} too large", buf.len());
    }
}
