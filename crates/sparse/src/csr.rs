//! Compressed sparse row (CSR) matrices.
//!
//! `CsrMatrix` is the storage format for DNN weight layers: one contiguous
//! `indptr`/`indices`/`values` triple, row-major. All FSD-Inference weight
//! partitions, as well as dense references used in tests, go through this
//! type.

use std::fmt;

/// A sparse matrix in CSR format with `f32` values.
///
/// Invariants (checked by [`CsrMatrix::validate`], upheld by constructors):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[rows] == indices.len() == values.len()`;
/// * column indices within each row are strictly increasing and `< cols`.
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

/// Error produced when assembling or validating a [`CsrMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `indptr` has the wrong length or is not monotone.
    BadIndptr,
    /// A column index is out of bounds or out of order within its row.
    BadColumn { row: usize, col: u32 },
    /// `indices` and `values` lengths disagree with `indptr`.
    LengthMismatch,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::BadIndptr => write!(f, "indptr is malformed"),
            CsrError::BadColumn { row, col } => {
                write!(
                    f,
                    "column {col} in row {row} is out of bounds or out of order"
                )
            }
            CsrError::LengthMismatch => write!(f, "indices/values length mismatch"),
        }
    }
}

impl std::error::Error for CsrError {}

impl CsrMatrix {
    /// Builds a matrix from raw CSR arrays, validating all invariants.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, CsrError> {
        let m = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// An empty matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; zero-valued entries are kept (the sparsity
    /// pattern is structural, as in the Graph Challenge DNNs).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> Result<Self, CsrError> {
        let mut trips: Vec<(u32, u32, f32)> = triplets.into_iter().collect();
        trips.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(trips.len());
        let mut values = Vec::with_capacity(trips.len());
        indptr.push(0);
        let mut cur_row = 0u32;
        for (r, c, v) in trips {
            if (r as usize) >= rows {
                return Err(CsrError::BadColumn {
                    row: r as usize,
                    col: c,
                });
            }
            while cur_row < r {
                indptr.push(indices.len());
                cur_row += 1;
            }
            if let (Some(&last_c), true) = (indices.last(), indptr.last() != Some(&indices.len())) {
                if last_c == c {
                    // Duplicate coordinate: accumulate.
                    *values.last_mut().expect("values tracks indices") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
        }
        while (cur_row as usize) < rows {
            indptr.push(indices.len());
            cur_row += 1;
        }
        // `rows == 0` pushes nothing above; ensure terminal entry exists.
        if indptr.len() == rows {
            indptr.push(indices.len());
        }
        CsrMatrix::new(rows, cols, indptr, indices, values)
    }

    /// Checks every CSR invariant; cheap relative to matrix construction.
    pub fn validate(&self) -> Result<(), CsrError> {
        if self.indptr.len() != self.rows + 1 || self.indptr[0] != 0 {
            return Err(CsrError::BadIndptr);
        }
        if self.indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(CsrError::BadIndptr);
        }
        if *self.indptr.last().expect("indptr non-empty") != self.indices.len()
            || self.indices.len() != self.values.len()
        {
            return Err(CsrError::LengthMismatch);
        }
        for r in 0..self.rows {
            let s = self.indptr[r];
            let e = self.indptr[r + 1];
            let row = &self.indices[s..e];
            for (k, &c) in row.iter().enumerate() {
                let out_of_order = k > 0 && row[k - 1] >= c;
                if (c as usize) >= self.cols || out_of_order {
                    return Err(CsrError::BadColumn { row: r, col: c });
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let s = self.indptr[r];
        let e = self.indptr[r + 1];
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Iterates `(row, cols, vals)` over all rows, including empty ones.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[u32], &[f32])> + '_ {
        (0..self.rows).map(move |r| {
            let (c, v) = self.row(r);
            (r, c, v)
        })
    }

    /// Raw CSR parts `(indptr, indices, values)`; used by codecs.
    pub fn parts(&self) -> (&[usize], &[u32], &[f32]) {
        (&self.indptr, &self.indices, &self.values)
    }

    /// Approximate heap footprint in bytes (used by the FaaS memory model).
    pub fn mem_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * 4
            + self.values.len() * 4
    }

    /// The transpose, as a new CSR matrix (i.e. CSC of `self`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = counts[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                counts[c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Extracts the sub-matrix of the given rows (in the given order) as a
    /// new CSR matrix with the same column space.
    pub fn select_rows(&self, rows: &[u32]) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let total: usize = rows.iter().map(|&r| self.row_nnz(r as usize)).sum();
        let mut indices = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        for &r in rows {
            let (c, v) = self.row(r as usize);
            indices.extend_from_slice(c);
            values.extend_from_slice(v);
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: rows.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Densifies into a row-major `rows x cols` buffer. Test/reference use
    /// only: allocates `rows * cols` floats.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.rows * self.cols];
        for (r, cols, vals) in self.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                out[r * self.cols + c as usize] = v;
            }
        }
        out
    }

    /// Builds from a dense row-major buffer, keeping entries with `|v| > 0`.
    pub fn from_dense(rows: usize, cols: usize, data: &[f32]) -> CsrMatrix {
        assert_eq!(data.len(), rows * cols, "dense buffer shape mismatch");
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz={})",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_triplets(3, 3, [(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
            .expect("valid")
    }

    #[test]
    fn from_triplets_builds_expected_rows() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0f32, 4.0][..]));
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(1, 2, [(0, 1, 1.5), (0, 1, 2.5)]).expect("valid");
        assert_eq!(m.row(0), (&[1u32][..], &[4.0f32][..]));
    }

    #[test]
    fn from_triplets_unsorted_input() {
        let m =
            CsrMatrix::from_triplets(2, 2, [(1, 1, 4.0), (0, 0, 1.0), (1, 0, 3.0)]).expect("valid");
        assert_eq!(m.row(0), (&[0u32][..], &[1.0f32][..]));
        assert_eq!(m.row(1), (&[0u32, 1][..], &[3.0f32, 4.0][..]));
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_row() {
        let err = CsrMatrix::from_triplets(1, 1, [(3, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, CsrError::BadColumn { .. }));
    }

    #[test]
    fn validate_rejects_out_of_bounds_column() {
        let err = CsrMatrix::new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert_eq!(err, CsrError::BadColumn { row: 0, col: 5 });
    }

    #[test]
    fn validate_rejects_unsorted_columns() {
        let err = CsrMatrix::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, CsrError::BadColumn { .. }));
    }

    #[test]
    fn validate_rejects_bad_indptr() {
        let err = CsrMatrix::new(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert_eq!(err, CsrError::BadIndptr);
        let err = CsrMatrix::new(1, 2, vec![0, 3], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(err, CsrError::LengthMismatch);
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = CsrMatrix::zeros(4, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 4);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = CsrMatrix::from_triplets(0, 0, []).expect("valid");
        assert_eq!(m.nnz(), 0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), (&[0u32, 2][..], &[1.0f32, 3.0][..]));
        assert_eq!(t.row(1), (&[2u32][..], &[4.0f32][..]));
        assert_eq!(t.row(2), (&[0u32][..], &[2.0f32][..]));
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn transpose_preserves_validity() {
        let m = sample().transpose();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn select_rows_extracts_in_order() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), (&[0u32, 1][..], &[3.0f32, 4.0][..]));
        assert_eq!(s.row(1), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d, vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0]);
        let back = CsrMatrix::from_dense(3, 3, &d);
        assert_eq!(back, m);
    }

    #[test]
    fn mem_bytes_is_positive_and_scales() {
        let small = CsrMatrix::zeros(1, 1);
        let big = sample();
        assert!(big.mem_bytes() > small.mem_bytes());
    }
}
