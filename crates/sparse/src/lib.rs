//! # fsd-sparse — sparse linear algebra substrate for FSD-Inference
//!
//! Everything the distributed inference engine needs to compute with sparse
//! DNNs, with no external dependencies:
//!
//! * [`CsrMatrix`] — CSR storage for weight layers;
//! * [`SparseRows`] — activation row blocks keyed by global neuron id, the
//!   unit of inter-worker communication;
//! * [`ColMajorBlock`] / [`LayerAccumulator`] — the distributed MVP/MMP
//!   kernels of FSI Algorithms 1 & 2, structured so the local product can be
//!   overlapped with communication;
//! * [`codec`] — delta-varint wire format for row blocks;
//! * [`compress`] — LZ77-style lossless byte compressor (the paper's ZLIB
//!   role).
//!
//! ```
//! use fsd_sparse::{CsrMatrix, SparseRows, layer_forward_reference};
//!
//! let w = CsrMatrix::from_triplets(2, 2, [(0, 0, 1.0), (1, 0, 2.0)]).unwrap();
//! let x = SparseRows::from_rows(1, [(0u32, vec![0u32], vec![3.0f32])]);
//! let (y, _work) = layer_forward_reference(&w, &x, 0.0, 32.0);
//! assert_eq!(y.row_by_id(1), Some((&[0u32][..], &[6.0f32][..])));
//! ```
#![forbid(unsafe_code)]

pub mod codec;
pub mod compress;
mod csr;
mod ops;
mod rows;

pub use csr::{CsrError, CsrMatrix};
pub use ops::{layer_forward_reference, ColMajorBlock, LayerAccumulator};
pub use rows::SparseRows;
