//! Row blocks: sparse activation rows keyed by *global* row id.
//!
//! A [`SparseRows`] holds the activation rows a worker owns (or is sending /
//! receiving). Rows are identified by global neuron id so blocks can be
//! extracted, shipped through a communication channel, and accumulated on the
//! receiving side without any re-indexing handshake.

use std::fmt;

/// A block of sparse rows over a fixed number of columns (the batch width).
///
/// Invariants:
/// * `ids` strictly increasing (global row ids);
/// * `indptr.len() == ids.len() + 1`, monotone, starting at 0;
/// * column indices within each row strictly increasing and `< width`.
#[derive(Clone, PartialEq, Default)]
pub struct SparseRows {
    width: usize,
    ids: Vec<u32>,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseRows {
    /// An empty block with the given width.
    pub fn new(width: usize) -> Self {
        SparseRows {
            width,
            ids: Vec::new(),
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a block from per-row data. `rows` must be sorted by id.
    pub fn from_rows(
        width: usize,
        rows: impl IntoIterator<Item = (u32, Vec<u32>, Vec<f32>)>,
    ) -> Self {
        let mut b = SparseRows::new(width);
        for (id, cols, vals) in rows {
            b.push_row(id, &cols, &vals);
        }
        b
    }

    /// Appends a row. Panics if `id` is not greater than the last id, if
    /// `cols`/`vals` lengths differ, or if a column is out of range — these
    /// are programming errors in the caller, not recoverable conditions.
    pub fn push_row(&mut self, id: u32, cols: &[u32], vals: &[f32]) {
        assert_eq!(cols.len(), vals.len(), "cols/vals length mismatch");
        if let Some(&last) = self.ids.last() {
            assert!(
                id > last,
                "row ids must be strictly increasing: {id} after {last}"
            );
        }
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "columns must be sorted"
        );
        debug_assert!(
            cols.iter().all(|&c| (c as usize) < self.width),
            "column out of range"
        );
        self.ids.push(id);
        self.indices.extend_from_slice(cols);
        self.values.extend_from_slice(vals);
        self.indptr.push(self.indices.len());
    }

    /// Number of columns (batch width).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stored rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.ids.len()
    }

    /// Whether the block holds no rows at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The global ids present in this block.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Row by position (not id): `(global_id, cols, vals)`.
    #[inline]
    pub fn row_at(&self, pos: usize) -> (u32, &[u32], &[f32]) {
        let s = self.indptr[pos];
        let e = self.indptr[pos + 1];
        (self.ids[pos], &self.indices[s..e], &self.values[s..e])
    }

    /// Looks a row up by global id (binary search).
    pub fn row_by_id(&self, id: u32) -> Option<(&[u32], &[f32])> {
        let pos = self.ids.binary_search(&id).ok()?;
        let s = self.indptr[pos];
        let e = self.indptr[pos + 1];
        Some((&self.indices[s..e], &self.values[s..e]))
    }

    /// Iterates `(global_id, cols, vals)` over all rows.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32], &[f32])> + '_ {
        (0..self.n_rows()).map(move |p| self.row_at(p))
    }

    /// Extracts the sub-block containing the requested global ids (ids not
    /// present in `self` are skipped entirely — they correspond to rows that
    /// became all-zero after ReLU and carry no information).
    ///
    /// This is the `extract_rows` primitive of FSI Algorithms 1 & 2.
    pub fn extract(&self, wanted: &[u32]) -> SparseRows {
        debug_assert!(
            wanted.windows(2).all(|w| w[0] < w[1]),
            "wanted ids must be sorted"
        );
        let mut out = SparseRows::new(self.width);
        let mut pos = 0usize;
        for &id in wanted {
            // Both lists are sorted: advance a cursor instead of re-searching.
            while pos < self.ids.len() && self.ids[pos] < id {
                pos += 1;
            }
            if pos == self.ids.len() {
                break;
            }
            if self.ids[pos] == id {
                let (gid, cols, vals) = self.row_at(pos);
                out.push_row(gid, cols, vals);
            }
        }
        out
    }

    /// Count of nonzeros that `extract` would ship for `wanted` — the NNZ
    /// heuristic used to size pub-sub byte strings before serializing.
    pub fn extract_nnz(&self, wanted: &[u32]) -> usize {
        let mut pos = 0usize;
        let mut total = 0usize;
        for &id in wanted {
            while pos < self.ids.len() && self.ids[pos] < id {
                pos += 1;
            }
            if pos == self.ids.len() {
                break;
            }
            if self.ids[pos] == id {
                total += self.indptr[pos + 1] - self.indptr[pos];
            }
        }
        total
    }

    /// Merges another block into this one. Ids may interleave but must not
    /// collide (each global row has exactly one owner per layer).
    pub fn merge(&mut self, other: &SparseRows) {
        assert_eq!(self.width, other.width, "width mismatch in merge");
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        // Fast path: strictly after (common when reducing rank-ordered blocks).
        if other.ids[0] > *self.ids.last().expect("non-empty") {
            self.ids.extend_from_slice(&other.ids);
            let base = self.indices.len();
            self.indices.extend_from_slice(&other.indices);
            self.values.extend_from_slice(&other.values);
            self.indptr
                .extend(other.indptr[1..].iter().map(|&p| p + base));
            return;
        }
        let mut merged = SparseRows::new(self.width);
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let take_self = match (self.ids.get(i), other.ids.get(j)) {
                (Some(a), Some(b)) => {
                    assert_ne!(a, b, "duplicate row id {a} in merge");
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (id, cols, vals) = if take_self {
                let r = self.row_at(i);
                i += 1;
                r
            } else {
                let r = other.row_at(j);
                j += 1;
                r
            };
            merged.push_row(id, cols, vals);
        }
        *self = merged;
    }

    /// Splits this block into chunks of at most `max_nnz` stored entries
    /// (whole rows only; a single row larger than `max_nnz` becomes its own
    /// chunk). Used to pack pub-sub byte strings under the payload quota.
    pub fn split_by_nnz(&self, max_nnz: usize) -> Vec<SparseRows> {
        assert!(max_nnz > 0, "max_nnz must be positive");
        let mut chunks = Vec::new();
        let mut cur = SparseRows::new(self.width);
        let mut cur_nnz = 0usize;
        for (id, cols, vals) in self.iter() {
            if cur_nnz > 0 && cur_nnz + cols.len() > max_nnz {
                chunks.push(std::mem::replace(&mut cur, SparseRows::new(self.width)));
                cur_nnz = 0;
            }
            cur.push_row(id, cols, vals);
            cur_nnz += cols.len();
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        chunks
    }

    /// Approximate heap footprint in bytes (FaaS memory model input).
    pub fn mem_bytes(&self) -> usize {
        self.ids.len() * 4
            + self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * 4
            + self.values.len() * 4
    }

    /// Densifies to a `n x width` row-major buffer where row order follows
    /// `order` (global ids; absent rows are zero). Test/reference use only.
    pub fn to_dense(&self, order: &[u32]) -> Vec<f32> {
        let mut out = vec![0f32; order.len() * self.width];
        for (i, &id) in order.iter().enumerate() {
            if let Some((cols, vals)) = self.row_by_id(id) {
                for (&c, &v) in cols.iter().zip(vals) {
                    out[i * self.width + c as usize] = v;
                }
            }
        }
        out
    }
}

impl fmt::Debug for SparseRows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparseRows(rows={}, width={}, nnz={})",
            self.n_rows(),
            self.width,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> SparseRows {
        SparseRows::from_rows(
            4,
            [
                (2u32, vec![0u32, 3], vec![1.0f32, 2.0]),
                (5, vec![1], vec![3.0]),
                (9, vec![0, 1, 2], vec![4.0, 5.0, 6.0]),
            ],
        )
    }

    #[test]
    fn push_and_lookup() {
        let b = block();
        assert_eq!(b.n_rows(), 3);
        assert_eq!(b.nnz(), 6);
        assert_eq!(b.row_by_id(5), Some((&[1u32][..], &[3.0f32][..])));
        assert_eq!(b.row_by_id(4), None);
        assert_eq!(b.row_at(0).0, 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_rejects_non_increasing_ids() {
        let mut b = block();
        b.push_row(9, &[0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_rejects_ragged_input() {
        let mut b = SparseRows::new(4);
        b.push_row(0, &[0, 1], &[1.0]);
    }

    #[test]
    fn extract_subset() {
        let b = block();
        let e = b.extract(&[2, 9]);
        assert_eq!(e.ids(), &[2, 9]);
        assert_eq!(e.nnz(), 5);
        assert_eq!(e.row_by_id(9), b.row_by_id(9));
    }

    #[test]
    fn extract_skips_missing_rows() {
        let b = block();
        let e = b.extract(&[1, 5, 7]);
        assert_eq!(e.ids(), &[5]);
    }

    #[test]
    fn extract_of_nothing_is_empty() {
        let b = block();
        assert!(b.extract(&[]).is_empty());
        assert!(b.extract(&[100, 200]).is_empty());
    }

    #[test]
    fn extract_nnz_matches_extract() {
        let b = block();
        for wanted in [&[2u32, 9][..], &[1, 5, 7], &[], &[2, 5, 9]] {
            assert_eq!(b.extract_nnz(wanted), b.extract(wanted).nnz());
        }
    }

    #[test]
    fn merge_interleaved() {
        let mut a = SparseRows::from_rows(4, [(1u32, vec![0u32], vec![1.0f32])]);
        let b = SparseRows::from_rows(
            4,
            [(0u32, vec![1u32], vec![2.0f32]), (3, vec![2], vec![3.0])],
        );
        a.merge(&b);
        assert_eq!(a.ids(), &[0, 1, 3]);
        assert_eq!(a.row_by_id(0), Some((&[1u32][..], &[2.0f32][..])));
    }

    #[test]
    fn merge_append_fast_path() {
        let mut a = block();
        let b = SparseRows::from_rows(4, [(20u32, vec![0u32], vec![7.0f32])]);
        a.merge(&b);
        assert_eq!(a.ids(), &[2, 5, 9, 20]);
        assert_eq!(a.row_by_id(20), Some((&[0u32][..], &[7.0f32][..])));
    }

    #[test]
    fn merge_into_empty() {
        let mut a = SparseRows::new(4);
        a.merge(&block());
        assert_eq!(a.ids(), &[2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "duplicate row id")]
    fn merge_rejects_duplicates() {
        let mut a = block();
        let b = SparseRows::from_rows(4, [(5u32, vec![0u32], vec![1.0f32])]);
        a.merge(&b);
    }

    #[test]
    fn split_by_nnz_respects_limit_and_roundtrips() {
        let b = block();
        let chunks = b.split_by_nnz(3);
        assert!(chunks.len() >= 2);
        for c in &chunks {
            assert!(c.nnz() <= 3 || c.n_rows() == 1);
        }
        let mut merged = SparseRows::new(4);
        for c in &chunks {
            merged.merge(c);
        }
        assert_eq!(merged, b);
    }

    #[test]
    fn split_single_oversized_row() {
        let b = SparseRows::from_rows(8, [(0u32, vec![0u32, 1, 2, 3, 4], vec![1.0f32; 5])]);
        let chunks = b.split_by_nnz(2);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].nnz(), 5);
    }

    #[test]
    fn to_dense_respects_order() {
        let b = block();
        let d = b.to_dense(&[5, 2]);
        assert_eq!(d.len(), 8);
        assert_eq!(d[1], 3.0); // row 5, col 1
        assert_eq!(d[4], 1.0); // row 2, col 0
    }
}
