//! Byte-level compression for wire payloads.
//!
//! The paper compresses serialized intermediate results with ZLIB before
//! publishing them (reducing `S`, `Z` and `Q` in the cost model). We cannot
//! link zlib here, so this module implements an LZ77-style compressor
//! ("LZV"): greedy longest-match search over a 64 KiB window with a
//! hash-chain index, emitting varint-framed literal runs and matches. It is
//! deterministic, lossless, and effective on the repetitive varint/f32
//! payloads produced by [`crate::codec`] — which is all the role zlib plays
//! in FSD-Inference.
//!
//! Frame format:
//! `magic 'L','Z' | raw_len varint | { token }*` where a token is either
//! `0x00, len varint, bytes` (literal run) or `0x01, len-4 varint, dist
//! varint` (match of `len >= 4` bytes at `dist >= 1` back).

const MAGIC: [u8; 2] = [b'L', b'Z'];
const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 12;
const HASH_BITS: u32 = 15;
const CHAIN_LIMIT: usize = 32;

/// Errors produced while decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Input ended mid-token.
    Truncated,
    /// A match referenced data before the start of the output.
    BadMatch,
    /// Decompressed length disagrees with the header.
    LengthMismatch,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadMagic => write!(f, "bad magic"),
            CompressError::Truncated => write!(f, "compressed buffer truncated"),
            CompressError::BadMatch => write!(f, "match distance out of range"),
            CompressError::LengthMismatch => write!(f, "decompressed length mismatch"),
        }
    }
}

impl std::error::Error for CompressError {}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(CompressError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CompressError::Truncated);
        }
    }
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    // Fibonacci hashing of the next 4 bytes.
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`. The output is never more than a few bytes per 2^12
/// input bytes larger than `data` (incompressible input degrades to literal
/// runs with varint framing).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    put_varint(&mut out, data.len() as u64);

    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut chain = vec![u32::MAX; data.len()];

    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            out.push(0x00);
            put_varint(out, (to - from) as u64);
            out.extend_from_slice(&data[from..to]);
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = hash4(&data[i..]);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut steps = 0usize;
        while candidate != u32::MAX && steps < CHAIN_LIMIT {
            let c = candidate as usize;
            if i - c > WINDOW {
                break;
            }
            let max_len = (data.len() - i).min(MAX_MATCH);
            let mut l = 0usize;
            while l < max_len && data[c + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - c;
                if l >= MAX_MATCH {
                    break;
                }
            }
            candidate = chain[c];
            steps += 1;
        }
        chain[i] = head[h];
        head[h] = i as u32;
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, lit_start, i);
            out.push(0x01);
            put_varint(&mut out, (best_len - MIN_MATCH) as u64);
            put_varint(&mut out, best_dist as u64);
            // Index the skipped positions so later matches can reference them.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash4(&data[j..]);
                chain[j] = head[h];
                head[h] = j as u32;
                j += 1;
            }
            i += best_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, data.len());
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>, CompressError> {
    if buf.len() < 2 || buf[..2] != MAGIC {
        return Err(CompressError::BadMagic);
    }
    let mut pos = 2usize;
    let raw_len = get_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(raw_len);
    while pos < buf.len() {
        let tag = buf[pos];
        pos += 1;
        match tag {
            0x00 => {
                let len = get_varint(buf, &mut pos)? as usize;
                let end = pos.checked_add(len).ok_or(CompressError::Truncated)?;
                let bytes = buf.get(pos..end).ok_or(CompressError::Truncated)?;
                out.extend_from_slice(bytes);
                pos = end;
            }
            0x01 => {
                let len = get_varint(buf, &mut pos)? as usize + MIN_MATCH;
                let dist = get_varint(buf, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CompressError::BadMatch);
                }
                let start = out.len() - dist;
                // Overlapping copies are the LZ77 RLE idiom; copy byte-wise.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(CompressError::Truncated),
        }
    }
    if out.len() != raw_len {
        return Err(CompressError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).expect("ok"), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_short() {
        for data in [&b"a"[..], b"ab", b"abc", b"abcd"] {
            assert_eq!(decompress(&compress(data)).expect("ok"), data);
        }
    }

    #[test]
    fn roundtrip_repetitive_and_shrinks() {
        let data: Vec<u8> = b"hello world, ".repeat(500).to_vec();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "compressed {} of {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).expect("ok"), data);
    }

    #[test]
    fn roundtrip_runs() {
        // Pure runs exercise overlapping matches (dist < len).
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 200);
        assert_eq!(decompress(&c).expect("ok"), data);
    }

    #[test]
    fn roundtrip_incompressible_bounded_expansion() {
        // Pseudo-random bytes: no matches, output must stay near input size.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 100 + 32);
        assert_eq!(decompress(&c).expect("ok"), data);
    }

    #[test]
    fn roundtrip_sparse_payloadlike() {
        // Mimic codec output: varint-ish small ints then f32 blocks.
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.push((i % 7) as u8);
            data.extend_from_slice(&(1.5f32 + (i % 3) as f32).to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len(), "payload-like data should shrink");
        assert_eq!(decompress(&c).expect("ok"), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decompress(b"XY\x00"), Err(CompressError::BadMagic));
        assert_eq!(decompress(b""), Err(CompressError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let c = compress(&b"hello world, ".repeat(100));
        for cut in 3..c.len() {
            assert!(decompress(&c[..cut]).is_err(), "prefix {cut} should fail");
        }
    }

    #[test]
    fn rejects_bad_match_distance() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_varint(&mut buf, 10);
        buf.push(0x01); // match token with nothing in the window
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 5);
        assert_eq!(decompress(&buf), Err(CompressError::BadMatch));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_varint(&mut buf, 99); // claims 99 bytes
        buf.push(0x00);
        put_varint(&mut buf, 2);
        buf.extend_from_slice(b"ab");
        assert_eq!(decompress(&buf), Err(CompressError::LengthMismatch));
    }
}
