//! Distributed MVP/MMP kernels.
//!
//! Each FSD-Inference worker holds a row block `W_m` of the layer weight
//! matrix. To overlap communication with computation (Algorithms 1 & 2), the
//! product `z_m = W_m · x` is accumulated **block by block** as activation
//! row blocks arrive: `z_m += W_m[:, rows(b)] · b` for each block `b`.
//!
//! That access pattern (given some *input* rows, find all affected *output*
//! rows) is column-major, so worker weight partitions are stored transposed
//! as a [`ColMajorBlock`]: global input row id → `(local output row, weight)`
//! pairs. Accumulation uses a dense per-worker accumulator
//! ([`LayerAccumulator`]) which is finalized into sparse activations with the
//! Graph Challenge non-linearity `y = min(clip, max(0, z + bias))`.

use crate::csr::CsrMatrix;
use crate::rows::SparseRows;

/// A worker's weight partition for one layer, stored column-major.
///
/// Maps each *global* input row id `j` (a column of the original `W`) to the
/// list of `(local output row, weight)` pairs it contributes to.
#[derive(Clone, Debug, PartialEq)]
pub struct ColMajorBlock {
    n_local_rows: usize,
    /// Global input row ids with at least one weight, strictly increasing.
    in_ids: Vec<u32>,
    indptr: Vec<usize>,
    out_rows: Vec<u32>,
    weights: Vec<f32>,
}

impl ColMajorBlock {
    /// Builds the block for local output rows `owned` (global ids, defining
    /// local indices by position) from the full layer matrix `w`.
    pub fn from_layer(w: &CsrMatrix, owned: &[u32]) -> ColMajorBlock {
        // Gather (input_id, local_out, weight) triplets, then sort by input id.
        let mut trips: Vec<(u32, u32, f32)> = Vec::new();
        for (local, &gid) in owned.iter().enumerate() {
            let (cols, vals) = w.row(gid as usize);
            for (&c, &v) in cols.iter().zip(vals) {
                trips.push((c, local as u32, v));
            }
        }
        trips.sort_unstable_by_key(|&(c, l, _)| (c, l));
        let mut in_ids = Vec::new();
        let mut indptr = vec![0usize];
        let mut out_rows = Vec::with_capacity(trips.len());
        let mut weights = Vec::with_capacity(trips.len());
        for (c, l, v) in trips {
            if in_ids.last() != Some(&c) {
                if !in_ids.is_empty() {
                    indptr.push(out_rows.len());
                }
                in_ids.push(c);
            }
            out_rows.push(l);
            weights.push(v);
        }
        indptr.push(out_rows.len());
        if in_ids.is_empty() {
            indptr = vec![0];
        }
        ColMajorBlock {
            n_local_rows: owned.len(),
            in_ids,
            indptr,
            out_rows,
            weights,
        }
    }

    /// Number of local output rows this block produces.
    #[inline]
    pub fn n_local_rows(&self) -> usize {
        self.n_local_rows
    }

    /// Global input row ids this worker needs for the layer — the basis of
    /// the receive maps built by the partitioner.
    #[inline]
    pub fn needed_inputs(&self) -> &[u32] {
        &self.in_ids
    }

    /// Total stored weights.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// Approximate heap footprint in bytes (FaaS memory model input).
    pub fn mem_bytes(&self) -> usize {
        self.in_ids.len() * 4
            + self.indptr.len() * std::mem::size_of::<usize>()
            + self.out_rows.len() * 4
            + self.weights.len() * 4
    }

    /// Multiply-add count [`LayerAccumulator::accumulate`] would perform
    /// for `x`, without touching any data. Lets callers charge compute time
    /// at one point (to model communication/computation overlap) while
    /// deferring the numeric work to a deterministic accumulation order.
    pub fn matched_work(&self, x: &SparseRows) -> u64 {
        let mut work = 0u64;
        let mut wpos = 0usize;
        for (gid, cols, _) in x.iter() {
            while wpos < self.in_ids.len() && self.in_ids[wpos] < gid {
                wpos += 1;
            }
            if wpos == self.in_ids.len() {
                break;
            }
            if self.in_ids[wpos] != gid {
                continue;
            }
            work += (self.indptr[wpos + 1] - self.indptr[wpos]) as u64 * cols.len() as u64;
        }
        work
    }

    /// The `(local output rows, weights)` fan-out of global input row `j`,
    /// or `None` if no owned row consumes it.
    pub fn fanout(&self, j: u32) -> Option<(&[u32], &[f32])> {
        let pos = self.in_ids.binary_search(&j).ok()?;
        let s = self.indptr[pos];
        let e = self.indptr[pos + 1];
        Some((&self.out_rows[s..e], &self.weights[s..e]))
    }
}

/// Dense accumulator for one layer's local output rows.
///
/// Holds `n_local_rows x width` floats; `accumulate` scatters incoming
/// activation blocks into it and `finalize` produces the next layer's sparse
/// activations. Reused across layers via [`LayerAccumulator::reset`].
pub struct LayerAccumulator {
    width: usize,
    n_rows: usize,
    data: Vec<f32>,
}

impl LayerAccumulator {
    /// A zeroed accumulator of the given shape.
    pub fn new(n_rows: usize, width: usize) -> Self {
        LayerAccumulator {
            width,
            n_rows,
            data: vec![0.0; n_rows * width],
        }
    }

    /// Zeroes the accumulator, optionally reshaping the row count (layers
    /// may own different row sets under per-layer partitions).
    pub fn reset(&mut self, n_rows: usize) {
        self.n_rows = n_rows;
        self.data.clear();
        self.data.resize(n_rows * self.width, 0.0);
    }

    /// `z += W_block[:, rows(x)] · x` for an incoming activation block.
    ///
    /// Returns the number of multiply-add operations performed — the work
    /// unit count consumed by the FaaS virtual-clock compute model.
    pub fn accumulate(&mut self, w: &ColMajorBlock, x: &SparseRows) -> u64 {
        assert_eq!(w.n_local_rows, self.n_rows, "weight block shape mismatch");
        assert_eq!(x.width(), self.width, "activation width mismatch");
        let mut work = 0u64;
        // Both id lists are sorted; walk them together instead of binary
        // searching per row (x blocks are usually dense in w's needed set).
        let mut wpos = 0usize;
        for (gid, cols, vals) in x.iter() {
            while wpos < w.in_ids.len() && w.in_ids[wpos] < gid {
                wpos += 1;
            }
            if wpos == w.in_ids.len() {
                break;
            }
            if w.in_ids[wpos] != gid {
                continue;
            }
            let s = w.indptr[wpos];
            let e = w.indptr[wpos + 1];
            for (&out_row, &wt) in w.out_rows[s..e].iter().zip(&w.weights[s..e]) {
                let base = out_row as usize * self.width;
                let dst = &mut self.data[base..base + self.width];
                for (&c, &v) in cols.iter().zip(vals) {
                    dst[c as usize] += wt * v;
                }
            }
            work += (e - s) as u64 * cols.len() as u64;
        }
        work
    }

    /// Applies `y = min(clip, max(0, z + bias))` and emits the surviving
    /// entries as the next layer's activation block for `owned` global ids.
    ///
    /// Returns `(activations, work_units)`.
    pub fn finalize(&self, owned: &[u32], bias: f32, clip: f32) -> (SparseRows, u64) {
        assert_eq!(owned.len(), self.n_rows, "owned ids/rows mismatch");
        let mut out = SparseRows::new(self.width);
        let mut cols = Vec::with_capacity(self.width);
        let mut vals = Vec::with_capacity(self.width);
        for (local, &gid) in owned.iter().enumerate() {
            cols.clear();
            vals.clear();
            let row = &self.data[local * self.width..(local + 1) * self.width];
            for (c, &z) in row.iter().enumerate() {
                // Bias applies only to positions that received any input in
                // the Graph Challenge kernel? No: Y = ReLU(W·X + b) applies the
                // bias uniformly, but an all-zero input column stays zero
                // because the sample itself is absent. We follow the
                // benchmark's sparse convention: bias is added where z != 0.
                if z != 0.0 {
                    let y = (z + bias).clamp(0.0, clip);
                    if y > 0.0 {
                        cols.push(c as u32);
                        vals.push(y);
                    }
                }
            }
            if !cols.is_empty() {
                out.push_row(gid, &cols, &vals);
            }
        }
        let work = (self.n_rows * self.width) as u64;
        (out, work)
    }

    /// Raw view of the accumulator (tests).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// Single-node reference: `y = relu_clip(W · x + bias)` over full matrices.
///
/// This is the kernel run by FSD-Inf-Serial and by the server baselines; it
/// is also the ground-truth oracle the distributed variants are checked
/// against. Returns `(activations, work_units)`.
pub fn layer_forward_reference(
    w: &CsrMatrix,
    x: &SparseRows,
    bias: f32,
    clip: f32,
) -> (SparseRows, u64) {
    let all_rows: Vec<u32> = (0..w.rows() as u32).collect();
    let block = ColMajorBlock::from_layer(w, &all_rows);
    let mut acc = LayerAccumulator::new(w.rows(), x.width());
    let mut work = acc.accumulate(&block, x);
    let (out, fw) = acc.finalize(&all_rows, bias, clip);
    work += fw;
    (out, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 layer:
    /// [1 0 2]
    /// [0 3 0]
    /// [4 0 5]
    fn w() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            [
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .expect("valid")
    }

    fn x() -> SparseRows {
        // rows: 0 -> [1, 0], 1 -> [0, 2], 2 -> [3, 4]  (width 2)
        SparseRows::from_rows(
            2,
            [
                (0u32, vec![0u32], vec![1.0f32]),
                (1, vec![1], vec![2.0]),
                (2, vec![0, 1], vec![3.0, 4.0]),
            ],
        )
    }

    #[test]
    fn col_major_block_structure() {
        let b = ColMajorBlock::from_layer(&w(), &[0, 2]);
        // Inputs needed: cols of rows 0 and 2 = {0, 2}.
        assert_eq!(b.needed_inputs(), &[0, 2]);
        assert_eq!(b.n_local_rows(), 2);
        assert_eq!(b.nnz(), 4);
        let (outs, wts) = b.fanout(0).expect("input 0 present");
        assert_eq!(outs, &[0, 1]); // local rows for global rows 0 and 2
        assert_eq!(wts, &[1.0, 4.0]);
        assert!(b.fanout(1).is_none());
    }

    #[test]
    fn empty_block() {
        let b = ColMajorBlock::from_layer(&w(), &[]);
        assert_eq!(b.n_local_rows(), 0);
        assert!(b.needed_inputs().is_empty());
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn accumulate_matches_dense_product() {
        let b = ColMajorBlock::from_layer(&w(), &[0, 1, 2]);
        let mut acc = LayerAccumulator::new(3, 2);
        let work = acc.accumulate(&b, &x());
        // Dense: W(3x3) * X(3x2):
        // z0 = 1*[1,0] + 2*[3,4] = [7,8]
        // z1 = 3*[0,2]           = [0,6]
        // z2 = 4*[1,0] + 5*[3,4] = [19,20]
        assert_eq!(acc.as_slice(), &[7.0, 8.0, 0.0, 6.0, 19.0, 20.0]);
        // work = nnz pairs: input0 fans to 2 rows x 1 col + input1 1x1 + input2 2x2
        assert_eq!(work, 2 + 1 + 4);
    }

    #[test]
    fn accumulate_partial_blocks_sum_to_full() {
        let b = ColMajorBlock::from_layer(&w(), &[0, 1, 2]);
        let full_x = x();
        let mut full = LayerAccumulator::new(3, 2);
        full.accumulate(&b, &full_x);

        let mut split = LayerAccumulator::new(3, 2);
        split.accumulate(&b, &full_x.extract(&[0, 1]));
        split.accumulate(&b, &full_x.extract(&[2]));
        assert_eq!(full.as_slice(), split.as_slice());
    }

    #[test]
    fn finalize_applies_bias_relu_clip() {
        let b = ColMajorBlock::from_layer(&w(), &[0, 1, 2]);
        let mut acc = LayerAccumulator::new(3, 2);
        acc.accumulate(&b, &x());
        let (out, _) = acc.finalize(&[0, 1, 2], -6.5, 10.0);
        // z = [[7,8],[0,6],[19,20]] + (-6.5) where nonzero, clip 10:
        // row0: [0.5, 1.5]; row1: [-, -0.5 -> dropped]; row2: [10, 10]
        assert_eq!(out.row_by_id(0), Some((&[0u32, 1][..], &[0.5f32, 1.5][..])));
        assert_eq!(out.row_by_id(1), None);
        assert_eq!(
            out.row_by_id(2),
            Some((&[0u32, 1][..], &[10.0f32, 10.0][..]))
        );
    }

    #[test]
    fn finalize_drops_empty_rows_entirely() {
        let acc = LayerAccumulator::new(2, 3);
        let (out, _) = acc.finalize(&[4, 7], -0.3, 32.0);
        assert!(out.is_empty());
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let b = ColMajorBlock::from_layer(&w(), &[0, 1, 2]);
        let mut acc = LayerAccumulator::new(3, 2);
        acc.accumulate(&b, &x());
        acc.reset(3);
        assert!(acc.as_slice().iter().all(|&v| v == 0.0));
        acc.reset(1);
        assert_eq!(acc.as_slice().len(), 2);
    }

    #[test]
    fn reference_forward_matches_manual() {
        let (out, work) = layer_forward_reference(&w(), &x(), 0.0, 32.0);
        assert!(work > 0);
        assert_eq!(out.row_by_id(0), Some((&[0u32, 1][..], &[7.0f32, 8.0][..])));
        assert_eq!(out.row_by_id(1), Some((&[1u32][..], &[6.0f32][..])));
        assert_eq!(
            out.row_by_id(2),
            Some((&[0u32, 1][..], &[19.0f32, 20.0][..]))
        );
    }

    #[test]
    fn distributed_partition_equals_reference() {
        // Split rows {0,2} / {1} across two "workers" and verify the union of
        // their outputs equals the single-node reference.
        let wm = w();
        let xm = x();
        let (reference, _) = layer_forward_reference(&wm, &xm, -1.0, 5.0);

        let mut combined = SparseRows::new(2);
        for owned in [vec![0u32, 2], vec![1u32]] {
            let b = ColMajorBlock::from_layer(&wm, &owned);
            let mut acc = LayerAccumulator::new(owned.len(), 2);
            // Workers receive x rows from everyone (full x here).
            acc.accumulate(&b, &xm);
            let (part, _) = acc.finalize(&owned, -1.0, 5.0);
            combined.merge(&part);
        }
        assert_eq!(combined, reference);
    }
}
