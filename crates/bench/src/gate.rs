//! The bench-regression gate: compare freshly emitted `BENCH_*.json`
//! metrics against committed baselines with a relative tolerance.
//!
//! The bench binaries emit flat, hand-written JSON (the workspace builds
//! offline — no serde), so the gate reads metrics with a minimal
//! extractor: every `"key": <number>` occurrence of a metric key, in file
//! order. Baseline and fresh runs of the same binary emit the same rows
//! in the same order, so an elementwise comparison is sound.
//!
//! Two metric directions exist:
//!
//! * **lower-is-better** (latencies): fail when
//!   `fresh > baseline × (1 + tolerance)`;
//! * **higher-is-better** (hit rates): fail when
//!   `fresh < baseline × (1 − tolerance)`.
//!
//! Used by the `bench_gate` binary, which CI runs after regenerating the
//! JSONs in `--release`.

use std::fmt::Write as _;

/// Metrics the gate checks per bench file, with their direction.
pub const GATED: &[(&str, &[(&str, Direction)])] = &[
    (
        "BENCH_warm_pool.json",
        &[
            ("warm_p50_us", Direction::LowerIsBetter),
            ("cold_p50_us", Direction::LowerIsBetter),
        ],
    ),
    (
        "BENCH_scheduler_throughput.json",
        &[
            ("bursty_mean_latency_us", Direction::LowerIsBetter),
            ("fleet_throughput_rps", Direction::HigherIsBetter),
        ],
    ),
    (
        "BENCH_prewarm.json",
        &[
            ("mean_latency_us", Direction::LowerIsBetter),
            ("hit_rate_pct", Direction::HigherIsBetter),
        ],
    ),
    (
        "BENCH_comm_matrix.json",
        &[
            ("queue_p50_us", Direction::LowerIsBetter),
            ("object_p50_us", Direction::LowerIsBetter),
            ("hybrid_p50_us", Direction::LowerIsBetter),
            ("direct_p50_us", Direction::LowerIsBetter),
            ("direct_punch_p50_us", Direction::LowerIsBetter),
        ],
    ),
    (
        "BENCH_chaos_soak.json",
        &[
            ("fault_free_mean_latency_us", Direction::LowerIsBetter),
            ("success_rate_pct", Direction::HigherIsBetter),
        ],
    ),
    (
        "BENCH_cold_start.json",
        &[
            ("off_p50_us", Direction::LowerIsBetter),
            ("miss_p50_us", Direction::LowerIsBetter),
            ("hit_p50_us", Direction::LowerIsBetter),
        ],
    ),
];

/// Which way a metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like: regression = fresh above baseline.
    LowerIsBetter,
    /// Rate-like: regression = fresh below baseline.
    HigherIsBetter,
}

/// Extracts every `"key": <number>` value from `json`, in file order.
/// Tolerant of whitespace; keys must match exactly.
pub fn extract(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\"");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let Some(colon) = rest.find(':') else { break };
        // Only a directly following colon counts (skip matches inside
        // string values, where other text precedes the next colon).
        if !rest[..colon].trim().is_empty() {
            continue;
        }
        let after = rest[colon + 1..].trim_start();
        let end = after
            .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e'))
            .unwrap_or(after.len());
        if let Ok(v) = after[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// One metric comparison that failed the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Bench file the metric came from.
    pub file: String,
    /// Metric key.
    pub key: String,
    /// Row index within the file (emission order).
    pub index: usize,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}[{}] regressed {:.0} -> {:.0} ({:+.1}%)",
            self.file,
            self.key,
            self.index,
            self.baseline,
            self.fresh,
            100.0 * (self.fresh - self.baseline) / self.baseline.abs().max(f64::MIN_POSITIVE),
        )
    }
}

/// Compares one metric sequence; returns the rows breaching `tolerance`.
///
/// # Panics
/// If baseline and fresh disagree on row count — the bench changed shape,
/// which means the baseline must be regenerated, not compared.
pub fn compare(
    file: &str,
    key: &str,
    direction: Direction,
    baseline: &[f64],
    fresh: &[f64],
    tolerance: f64,
) -> Vec<Regression> {
    assert_eq!(
        baseline.len(),
        fresh.len(),
        "{file}: {key} row count changed ({} baseline vs {} fresh) — \
         regenerate the committed baseline",
        baseline.len(),
        fresh.len()
    );
    baseline
        .iter()
        .zip(fresh)
        .enumerate()
        .filter(|(_, (&b, &f))| match direction {
            Direction::LowerIsBetter => f > b * (1.0 + tolerance),
            Direction::HigherIsBetter => f < b * (1.0 - tolerance),
        })
        .map(|(index, (&b, &f))| Regression {
            file: file.to_string(),
            key: key.to_string(),
            index,
            baseline: b,
            fresh: f,
        })
        .collect()
}

/// Gates every metric of one bench file. Returns `(checked, regressions)`.
pub fn gate_file(
    file: &str,
    keys: &[(&str, Direction)],
    baseline_json: &str,
    fresh_json: &str,
    tolerance: f64,
) -> (usize, Vec<Regression>) {
    let mut checked = 0;
    let mut regressions = Vec::new();
    for &(key, direction) in keys {
        let baseline = extract(baseline_json, key);
        let fresh = extract(fresh_json, key);
        assert!(
            !baseline.is_empty(),
            "{file}: baseline carries no {key:?} metric — wrong file?"
        );
        checked += baseline.len();
        regressions.extend(compare(file, key, direction, &baseline, &fresh, tolerance));
    }
    (checked, regressions)
}

/// Renders a human-readable gate report.
pub fn report(checked: usize, regressions: &[Regression], tolerance: f64) -> String {
    let mut out = String::new();
    if regressions.is_empty() {
        let _ = writeln!(
            out,
            "bench gate OK: {checked} metrics within {:.0}% of baseline",
            tolerance * 100.0
        );
    } else {
        let _ = writeln!(
            out,
            "bench gate FAILED: {} of {checked} metrics regressed beyond {:.0}%:",
            regressions.len(),
            tolerance * 100.0
        );
        for r in regressions {
            let _ = writeln!(out, "  {r}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "warm_pool",
  "samples_per_path": 9,
  "sizes": [
    {"neurons": 256, "workers": 4, "warm_p50_us": 100, "cold_p50_us": 200},
    {"neurons": 1024, "workers": 4, "warm_p50_us": 300, "cold_p50_us": 600}
  ]
}
"#;

    #[test]
    fn extract_reads_values_in_order() {
        assert_eq!(extract(SAMPLE, "warm_p50_us"), vec![100.0, 300.0]);
        assert_eq!(extract(SAMPLE, "cold_p50_us"), vec![200.0, 600.0]);
        assert_eq!(extract(SAMPLE, "neurons"), vec![256.0, 1024.0]);
        assert!(extract(SAMPLE, "missing").is_empty());
    }

    #[test]
    fn extract_ignores_string_values_and_partial_keys() {
        // "bench" holds a string, not a number.
        assert!(extract(SAMPLE, "bench").is_empty());
        // "p50_us" is a substring of two keys but not a key itself.
        assert!(extract(SAMPLE, "p50_us").is_empty());
    }

    #[test]
    fn compare_flags_only_breaches() {
        let r = compare(
            "f",
            "k",
            Direction::LowerIsBetter,
            &[100.0, 100.0, 100.0],
            &[124.0, 126.0, 90.0],
            0.25,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].index, 1);
        assert_eq!(r[0].fresh, 126.0);
    }

    #[test]
    fn compare_direction_matters() {
        // A falling hit rate is a regression; a falling latency is not.
        let lower = compare("f", "k", Direction::LowerIsBetter, &[80.0], &[50.0], 0.25);
        assert!(lower.is_empty());
        let higher = compare("f", "k", Direction::HigherIsBetter, &[80.0], &[50.0], 0.25);
        assert_eq!(higher.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row count changed")]
    fn compare_rejects_shape_changes() {
        compare(
            "f",
            "k",
            Direction::LowerIsBetter,
            &[1.0, 2.0],
            &[1.0],
            0.25,
        );
    }

    #[test]
    fn gate_file_end_to_end() {
        let fresh = SAMPLE.replace("\"warm_p50_us\": 100", "\"warm_p50_us\": 130");
        let (checked, regressions) = gate_file(
            "BENCH_warm_pool.json",
            &[
                ("warm_p50_us", Direction::LowerIsBetter),
                ("cold_p50_us", Direction::LowerIsBetter),
            ],
            SAMPLE,
            &fresh,
            0.25,
        );
        assert_eq!(checked, 4);
        assert_eq!(regressions.len(), 1);
        assert!(report(checked, &regressions, 0.25).contains("FAILED"));
        let (_, none) = gate_file(
            "BENCH_warm_pool.json",
            &[("warm_p50_us", Direction::LowerIsBetter)],
            SAMPLE,
            SAMPLE,
            0.25,
        );
        assert!(none.is_empty());
    }
}
