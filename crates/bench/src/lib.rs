//! # fsd-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation (Section VI), plus
//! criterion microbenches. Binaries print the same rows/series the paper
//! reports; run them with `--paper-scale` to use the published parameter
//! grid (N up to 65536, L = 120, 10 000-sample batches — slow and
//! memory-hungry) or at the reduced default scale that preserves the
//! shapes (who wins, crossovers).
#![forbid(unsafe_code)]

use fsd_core::{
    EngineConfig, FsdService, InferenceReport, InferenceRequest, ServiceBuilder, Variant,
};
use fsd_faas::ComputeModel;
use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec, SparseDnn};
use fsd_sparse::SparseRows;
use std::sync::Arc;

/// Experiment scale, selected by the `--paper-scale` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced grid: N ∈ {256, 1024, 4096}, L = 24, 256-sample batches,
    /// P ∈ {2, 4, 8, 12}.
    Scaled,
    /// The published grid: N ∈ {1024, 4096, 16384, 65536}, L = 120,
    /// 10 000-sample batches, P ∈ {8, 20, 42, 62}.
    Paper,
}

impl Scale {
    /// Parses process arguments (`--paper-scale` selects [`Scale::Paper`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper-scale") {
            Scale::Paper
        } else {
            Scale::Scaled
        }
    }

    /// The neuron-count grid.
    pub fn neuron_grid(self) -> Vec<usize> {
        match self {
            Scale::Scaled => vec![256, 1024, 4096],
            Scale::Paper => vec![1024, 4096, 16384, 65536],
        }
    }

    /// The worker-parallelism grid.
    pub fn worker_grid(self) -> Vec<u32> {
        match self {
            Scale::Scaled => vec![2, 4, 8, 12],
            Scale::Paper => vec![8, 20, 42, 62],
        }
    }

    /// Batch size (samples per query).
    pub fn batch(self) -> usize {
        match self {
            Scale::Scaled => 256,
            Scale::Paper => 10_000,
        }
    }

    /// Model spec for a neuron count at this scale.
    pub fn spec(self, neurons: usize, seed: u64) -> DnnSpec {
        match self {
            Scale::Scaled => DnnSpec::scaled(neurons, seed),
            Scale::Paper => DnnSpec::paper(neurons, seed),
        }
    }

    /// The compute model at this scale.
    ///
    /// The reduced grid shrinks models ~100x (fewer layers, fewer weights,
    /// smaller batches), which would make compute trivially cheap next to
    /// the *unchanged* cloud latencies and erase the paper's compute/
    /// communication trade-offs. The scaled rate is therefore lowered by
    /// the same factor, keeping the regime (and hence who wins where)
    /// faithful. Used consistently for FSD and every baseline platform.
    pub fn compute(self) -> ComputeModel {
        match self {
            Scale::Scaled => ComputeModel {
                units_per_sec_per_vcpu: 2.5e6,
                ..ComputeModel::default()
            },
            Scale::Paper => ComputeModel::default(),
        }
    }

    /// Engine configuration at this scale (deterministic region).
    pub fn engine_config(self, seed: u64) -> EngineConfig {
        let mut cfg = EngineConfig::deterministic(seed);
        cfg.compute = self.compute();
        cfg
    }

    /// Worker memory (MB) for a neuron count — the paper's M map for the
    /// published grid, one-vCPU instances at reduced scale.
    pub fn worker_memory_mb(self, neurons: usize) -> u32 {
        match self {
            Scale::Scaled => 1769,
            Scale::Paper => match neurons {
                n if n <= 1024 => 1000,
                n if n <= 4096 => 1500,
                n if n <= 16384 => 2000,
                _ => 4000,
            },
        }
    }
}

/// A prepared workload: model + inputs + ground truth.
pub struct Workload {
    pub spec: DnnSpec,
    pub dnn: Arc<SparseDnn>,
    pub inputs: SparseRows,
    pub expected: SparseRows,
}

/// Builds the workload for one neuron count.
pub fn workload(scale: Scale, neurons: usize, seed: u64) -> Workload {
    let spec = scale.spec(neurons, seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(scale.batch(), seed));
    let expected = dnn.serial_inference(&inputs);
    Workload {
        spec,
        dnn,
        inputs,
        expected,
    }
}

/// Like [`workload`] but with an explicit batch size.
pub fn workload_with_batch(scale: Scale, neurons: usize, batch: usize, seed: u64) -> Workload {
    let spec = scale.spec(neurons, seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(batch, seed));
    let expected = dnn.serial_inference(&inputs);
    Workload {
        spec,
        dnn,
        inputs,
        expected,
    }
}

/// Runs one FSD-Inference configuration and verifies the output against
/// ground truth (panicking on mismatch — a wrong benchmark is worthless).
pub fn run_checked(
    service: &FsdService,
    workload: &Workload,
    variant: Variant,
    workers: u32,
    memory_mb: u32,
) -> InferenceReport {
    let report = service
        .submit(&InferenceRequest {
            variant,
            workers,
            memory_mb,
            inputs: workload.inputs.clone(),
        })
        // fsd_lint::allow(no-unwrap): the bench harness aborts on any
        // submit failure by design — a broken run must not produce numbers.
        .unwrap_or_else(|e| panic!("{variant} P={workers}: {e}"));
    assert_eq!(
        report.first_output(),
        &workload.expected,
        "{variant} P={workers} wrong output"
    );
    report
}

/// Median of three runs by latency (the paper reports medians of 3).
pub fn median_of_3(
    service: &FsdService,
    workload: &Workload,
    variant: Variant,
    workers: u32,
    memory_mb: u32,
) -> InferenceReport {
    let mut runs: Vec<InferenceReport> = (0..3)
        .map(|_| run_checked(service, workload, variant, workers, memory_mb))
        .collect();
    runs.sort_by_key(|a| a.latency);
    runs.swap_remove(1)
}

/// Fresh service over a deterministic region for a workload at a scale.
pub fn engine_for(workload: &Workload, scale: Scale, seed: u64) -> FsdService {
    ServiceBuilder::new(workload.dnn.clone())
        .config(scale.engine_config(seed))
        .build()
}

/// Plain-text table printer with right-aligned numeric columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table with a title.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

pub mod gate;

/// Formats dollars with enough precision for per-sample figures.
pub fn usd(v: f64) -> String {
    if v >= 0.01 {
        format!("${v:.2}")
    } else {
        format!("${v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_grids() {
        assert_eq!(Scale::Paper.neuron_grid(), vec![1024, 4096, 16384, 65536]);
        assert_eq!(Scale::Paper.worker_grid(), vec![8, 20, 42, 62]);
        assert_eq!(Scale::Paper.batch(), 10_000);
        assert_eq!(Scale::Scaled.batch(), 256);
        assert_eq!(Scale::Paper.worker_memory_mb(65536), 4000);
        assert_eq!(Scale::Paper.worker_memory_mb(1024), 1000);
        assert_eq!(Scale::Scaled.worker_memory_mb(1024), 1769);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn usd_formatting() {
        assert_eq!(usd(1.5), "$1.50");
        assert_eq!(usd(0.000012), "$0.000012");
    }

    #[test]
    fn run_checked_round_trips_tiny_workload() {
        let w = workload_with_batch(Scale::Scaled, 256, 8, 3);
        let service = engine_for(&w, Scale::Scaled, 3);
        let r = run_checked(&service, &w, Variant::Serial, 1, 2048);
        assert_eq!(r.first_output(), &w.expected);
    }
}
