//! Table II — end-to-end per-sample runtime (ms) of the optimal parallel
//! FSD-Inference variant, FSD-Inf-Serial, and Sage-SL-Inf.
//!
//! Expected shape: serial wins for the smallest models (no IPC), parallel
//! wins from mid-size on, Sage-SL-Inf trails serial throughout and starts
//! truncating batches / failing outright as the model grows.

use fsd_baselines::{run_sagemaker, BaselineError, SageConfig};
use fsd_bench::{engine_for, run_checked, Scale, Table};
use fsd_core::Variant;

fn main() {
    let scale = Scale::from_args();
    let grid = scale.neuron_grid();
    let mut t = Table::new(&[
        "N",
        "FSD-Inf-Parallel",
        "FSD-Inf-Serial",
        "Sage-SL-Inf",
        "Sage samples",
    ]);
    let mut parallel_ms = Vec::new();
    let mut serial_ms = Vec::new();
    for &n in &grid {
        let w = fsd_bench::workload(scale, n, 42);
        let mem = scale.worker_memory_mb(n);

        // Optimal parallel: best (runtime) configuration over the P grid
        // and both channels — "FSD-Inf-Parallel" in the paper.
        let mut best: Option<fsd_core::InferenceReport> = None;
        for &p in &scale.worker_grid() {
            let engine = engine_for(&w, scale, 42);
            for variant in [Variant::Queue, Variant::Object] {
                let r = run_checked(&engine, &w, variant, p, mem);
                if best.as_ref().is_none_or(|b| r.latency < b.latency) {
                    best = Some(r);
                }
            }
        }
        let best = best.expect("at least one parallel run");

        let engine = engine_for(&w, scale, 42);
        let serial = run_checked(&engine, &w, Variant::Serial, 1, mem);

        let sage = run_sagemaker(&w.dnn, &w.inputs, &SageConfig::default(), &scale.compute());
        let (sage_cell, sage_samples) = match &sage {
            Ok(r) => (
                format!("{:.3}*", r.latency_secs * 1000.0 / r.samples.max(1) as f64),
                r.samples.to_string(),
            ),
            Err(BaselineError::OutOfMemory { .. }) => ("OOM".to_string(), "0".to_string()),
            Err(BaselineError::QuotaExceeded(_)) => ("quota".to_string(), "0".to_string()),
        };
        t.row(vec![
            n.to_string(),
            format!(
                "{:.3} (P={}, {})",
                best.per_sample_ms(),
                best.workers,
                best.variant
            ),
            format!("{:.3}", serial.per_sample_ms()),
            sage_cell,
            sage_samples,
        ]);
        parallel_ms.push(best.per_sample_ms());
        serial_ms.push(serial.per_sample_ms());
    }
    t.print("Table II: end-to-end per-sample runtime (ms); * = truncated batch");

    // Shape checks: serial leads at the smallest N; parallel leads at the
    // largest (paper: 2.00 vs 6.43 at N=1024, 12.97 vs 32.62 at N=16384).
    assert!(
        serial_ms[0] < parallel_ms[0],
        "smallest model: serial {:.3} should beat parallel {:.3}",
        serial_ms[0],
        parallel_ms[0]
    );
    let last = grid.len() - 1;
    assert!(
        parallel_ms[last] < serial_ms[last],
        "largest model: parallel {:.3} should beat serial {:.3}",
        parallel_ms[last],
        serial_ms[last]
    );
    println!(
        "\nShape check: serial wins at N={}, parallel wins at N={} — OK",
        grid[0], grid[last]
    );
}
