//! §VI-F — cost model validation: predicted vs actual charges.
//!
//! The engine's client-side metrics (its "51 per-layer / 26 per-batch
//! captured metrics") are priced by the Section IV cost model and compared
//! against the service-side billing meters (the simulation's "AWS Cost &
//! Usage report"), for both channels. The paper reports exact agreement at
//! N = 16384, P = 20: Queue (comp. $0.10, comms. $0.25), Object (comp.
//! $0.09, comms. $0.28).

use fsd_bench::{engine_for, run_checked, usd, Scale, Table};
use fsd_core::Variant;

fn main() {
    let scale = Scale::from_args();
    let (n, p) = match scale {
        Scale::Scaled => (1024usize, 4u32),
        Scale::Paper => (16384, 20),
    };
    let w = fsd_bench::workload(scale, n, 42);
    let mem = scale.worker_memory_mb(n);

    let mut t = Table::new(&[
        "variant",
        "pred comp",
        "pred comms",
        "pred total",
        "act comp",
        "act comms",
        "act total",
        "rel err",
    ]);
    for variant in [Variant::Queue, Variant::Object] {
        let engine = engine_for(&w, scale, 42);
        let r = run_checked(&engine, &w, variant, p, mem);
        let err = r.cost_actual.relative_error(&r.cost_predicted);
        t.row(vec![
            variant.to_string(),
            usd(r.cost_predicted.compute),
            usd(r.cost_predicted.comms),
            usd(r.cost_predicted.total()),
            usd(r.cost_actual.compute),
            usd(r.cost_actual.comms),
            usd(r.cost_actual.total()),
            format!("{:.4}", err),
        ]);
        assert!(
            err < 0.02,
            "{variant}: predicted {} vs actual {} diverge ({err:.4})",
            usd(r.cost_predicted.total()),
            usd(r.cost_actual.total())
        );
    }
    t.print(&format!("Cost model validation (N = {n}, P = {p})"));
    println!("\nPredicted charges match the metered charges for both channels — OK");
}
