//! Figure 5 — query latency per platform, per model size.
//!
//! One batch per model size on: FSD-Inference (best variant), Server-
//! Always-On Cold/Hot, Server-Job-Scoped, and H-SpFF. Expected shape: JS is
//! dominated by provisioning for every N; FSD lags AO-Hot for small models
//! (unpartitioned-weight reads) but overtakes it as N grows, closing on the
//! HPC baseline for the largest models.

use fsd_baselines::{
    job_scoped_instance, run_hspff, run_server, HpcConfig, ServerKind, ServerTimings, C5_12XLARGE,
};
use fsd_bench::{engine_for, run_checked, Scale, Table};
use fsd_core::Variant;

fn main() {
    let scale = Scale::from_args();
    let grid = scale.neuron_grid();
    let compute = scale.compute();
    let timings = ServerTimings::default();

    let mut t = Table::new(&[
        "N",
        "FSD-Inf (s)",
        "AO-Cold (s)",
        "AO-Hot (s)",
        "JS (s)",
        "H-SpFF (s)",
    ]);
    let mut fsd_series = Vec::new();
    let mut hot_series = Vec::new();
    for &n in &grid {
        let w = fsd_bench::workload(scale, n, 42);
        let engine = engine_for(&w, scale, 42);
        let mem = scale.worker_memory_mb(n);
        // FSD best configuration: serial for the smallest model, the best
        // parallel run otherwise (paper §VI-C2 picks per query).
        let fsd = if n == grid[0] {
            run_checked(&engine, &w, Variant::Serial, 1, mem)
        } else {
            let p = *scale.worker_grid().last().expect("non-empty grid");
            let q = run_checked(&engine, &w, Variant::Queue, p, mem);
            let o = run_checked(&engine, &w, Variant::Object, p, mem);
            if q.latency <= o.latency {
                q
            } else {
                o
            }
        };
        let cold = run_server(
            &w.dnn,
            &w.inputs,
            ServerKind::AlwaysOnCold,
            C5_12XLARGE,
            &compute,
            &timings,
        )
        .expect("fits");
        let hot = run_server(
            &w.dnn,
            &w.inputs,
            ServerKind::AlwaysOnHot,
            C5_12XLARGE,
            &compute,
            &timings,
        )
        .expect("fits");
        let js = run_server(
            &w.dnn,
            &w.inputs,
            ServerKind::JobScoped,
            job_scoped_instance(n),
            &compute,
            &timings,
        )
        .expect("fits");
        // HPC cluster sized comparably to the FSD deployment at each scale
        // (the paper compares against a similarly-provisioned platform).
        let hpc_cfg = match scale {
            Scale::Scaled => HpcConfig {
                nodes: 4,
                cores_per_node: 4,
                ..HpcConfig::default()
            },
            Scale::Paper => HpcConfig::default(),
        };
        let hpc = run_hspff(&w.dnn, &w.inputs, &hpc_cfg, &compute);
        assert_eq!(cold.output, w.expected);
        assert_eq!(hpc.output, w.expected);
        let fsd_s = fsd.latency.as_secs_f64();
        t.row(vec![
            n.to_string(),
            format!("{fsd_s:.2}"),
            format!("{:.2}", cold.latency_secs),
            format!("{:.2}", hot.latency_secs),
            format!("{:.2}", js.latency_secs),
            format!("{:.3}", hpc.latency_secs),
        ]);
        fsd_series.push(fsd_s);
        hot_series.push(hot.latency_secs);
        // Shape check per N: job-scoped is always the worst (provisioning).
        assert!(
            js.latency_secs > fsd_s,
            "N={n}: JS should be slower than FSD"
        );
        assert!(
            js.latency_secs > hot.latency_secs,
            "N={n}: JS should be slower than AO-Hot"
        );
    }
    t.print("Figure 5: query latency by platform");

    // Shape check across N: FSD's deficit against AO-Hot must shrink (and
    // eventually flip) as the model grows — the paper's scalability story.
    let first_ratio = fsd_series[0] / hot_series[0];
    let last_ratio = fsd_series[fsd_series.len() - 1] / hot_series[hot_series.len() - 1];
    println!(
        "\nShape check: FSD/AO-Hot latency ratio {:.2} (smallest N) -> {:.2} (largest N)",
        first_ratio, last_ratio
    );
    assert!(
        last_ratio < first_ratio,
        "FSD must gain on AO-Hot as N grows"
    );
}
