//! Ablation of the Section III/IV optimizations.
//!
//! Each row disables one design choice and reports the effect on the
//! channel's billing inputs and latency:
//!
//! * **compression off** (both channels) — inflates `Z`/payload bytes;
//! * **publish packing off** (queue) — one message per publish, inflating
//!   the billed request count `S`;
//! * **`.nul` markers off** (object) — empty sends become `.dat` files the
//!   receivers must GET, inflating `R`;
//! * **short-ish long-poll `W`** (queue) — more empty polls, inflating `Q`.

use fsd_bench::{Scale, Table};
use fsd_core::{ChannelOptions, ServiceBuilder, Variant};

fn engine_with(
    w: &fsd_bench::Workload,
    scale: Scale,
    channel: ChannelOptions,
) -> fsd_core::FsdService {
    ServiceBuilder::new(w.dnn.clone())
        .config(scale.engine_config(42))
        .channel_options(channel)
        .build()
}

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Scaled => 1024usize,
        Scale::Paper => 16384,
    };
    let p = scale.worker_grid()[1];
    let w = fsd_bench::workload(scale, n, 42);
    let mem = scale.worker_memory_mb(n);
    let base = ChannelOptions::default();

    // --- Queue-channel ablations ---------------------------------------
    let mut t = Table::new(&[
        "queue config",
        "S (billed)",
        "Z (bytes)",
        "Q (calls)",
        "latency ms",
    ]);
    let mut s_values = Vec::new();
    let mut z_values = Vec::new();
    for (label, opts) in [
        ("baseline", base),
        (
            "no compression",
            ChannelOptions {
                compression: false,
                ..base
            },
        ),
        (
            "no publish packing",
            ChannelOptions {
                packing: false,
                ..base
            },
        ),
        (
            "W = 0.2 s",
            ChannelOptions {
                long_poll_secs: 0.2,
                ..base
            },
        ),
    ] {
        let engine = engine_with(&w, scale, opts);
        let r = fsd_bench::run_checked(&engine, &w, Variant::Queue, p, mem);
        t.row(vec![
            label.to_string(),
            r.client.sns_billed.to_string(),
            r.client.bytes_sent.to_string(),
            r.client.sqs_calls.to_string(),
            format!("{:.1}", r.latency.as_millis_f64()),
        ]);
        s_values.push(r.client.sns_billed);
        z_values.push(r.client.bytes_sent);
    }
    t.print(&format!(
        "Ablation: FSD-Inf-Queue optimizations (N = {n}, P = {p})"
    ));
    assert!(
        z_values[1] > z_values[0],
        "disabling compression must inflate Z"
    );
    assert!(
        s_values[2] > s_values[0],
        "disabling packing must inflate S"
    );

    // --- Object-channel ablations ---------------------------------------
    let mut t = Table::new(&[
        "object config",
        "V (PUTs)",
        "R (GETs)",
        "L (LISTs)",
        "latency ms",
    ]);
    let mut r_values = Vec::new();
    for (label, opts) in [
        ("baseline", base),
        (
            "no compression",
            ChannelOptions {
                compression: false,
                ..base
            },
        ),
        (
            "no .nul markers",
            ChannelOptions {
                nul_markers: false,
                ..base
            },
        ),
    ] {
        let engine = engine_with(&w, scale, opts);
        let r = fsd_bench::run_checked(&engine, &w, Variant::Object, p, mem);
        t.row(vec![
            label.to_string(),
            r.client.s3_puts.to_string(),
            r.client.s3_gets.to_string(),
            r.client.s3_lists.to_string(),
            format!("{:.1}", r.latency.as_millis_f64()),
        ]);
        r_values.push(r.client.s3_gets);
    }
    t.print(&format!(
        "Ablation: FSD-Inf-Object optimizations (N = {n}, P = {p})"
    ));
    assert!(
        r_values[2] >= r_values[0],
        "disabling .nul markers must not reduce GETs (usually inflates them)"
    );
    println!("\nAll ablation shape checks passed.");
}
