//! Warm-pool launch-to-first-output — cold starts vs warm hits.
//!
//! Not a paper table: this measures the warm-tree pool. For each model
//! size, `SAMPLES` distinct single-batch requests (per-sample input seed
//! and width, so the deterministic clock still yields a real latency
//! distribution) are served through a pooled service; before each *cold*
//! sample the pool is invalidated (the parked tree is dropped, forcing
//! the full coordinator + cold start + `launch_rounds(P, b)` +
//! weight-load bill), while the matching *warm* sample routes the same
//! inputs into the parked tree. The run asserts warm p50 strictly below
//! cold p50, prints both distributions, and emits `BENCH_warm_pool.json`
//! for the CI bench-regression gate.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin warm_pool
//! ```

use fsd_bench::{workload_with_batch, Scale, Table};
use fsd_core::{InferenceRequest, LaunchPath, ServiceBuilder, Variant};
use fsd_model::{generate_inputs, InputSpec};
use std::fmt::Write as _;

const SEED: u64 = 42;
const SAMPLES: usize = 9;

/// Percentile over a sorted sample set (nearest-rank).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

struct SizeResult {
    neurons: usize,
    workers: u32,
    samples: usize,
    cold_p50_us: u64,
    cold_p99_us: u64,
    warm_p50_us: u64,
    warm_p99_us: u64,
}

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(&[
        "neurons",
        "P",
        "cold p50",
        "cold p99",
        "warm p50",
        "warm p99",
        "speedup p50",
    ]);
    let mut results = Vec::new();
    for &neurons in &scale.neuron_grid() {
        let workers = scale.worker_grid()[1];
        let memory_mb = scale.worker_memory_mb(neurons);
        let base_batch = scale.batch().min(64);
        let w = workload_with_batch(scale, neurons, base_batch, SEED);
        let service = ServiceBuilder::new(w.dnn.clone())
            .config(scale.engine_config(SEED))
            .warm_pool(2, u64::MAX)
            .prewarm(workers)
            .build();
        let mut cold_us = Vec::with_capacity(SAMPLES);
        let mut warm_us = Vec::with_capacity(SAMPLES);
        for s in 0..SAMPLES {
            // Distinct inputs per sample: the virtual clock is
            // deterministic, so identical requests would collapse every
            // percentile onto one value (the p50 == p99 bug this fixes).
            // Varying width and seed spreads real work across samples
            // while cold and warm still see byte-identical inputs.
            let width = (base_batch / 2 + s * base_batch / (2 * SAMPLES)).max(1);
            let inputs = generate_inputs(neurons, &InputSpec::scaled(width, SEED + s as u64));
            let expected = w.dnn.serial_inference(&inputs);
            let req = InferenceRequest {
                variant: Variant::Queue,
                workers,
                memory_mb,
                inputs,
            };
            service.invalidate_warm_trees();
            let cold = service.submit(&req).expect("cold run");
            assert_eq!(cold.launch, LaunchPath::ColdStart);
            assert_eq!(cold.first_output(), &expected, "cold output wrong");
            cold_us.push(cold.latency.as_micros());
            let warm = service.submit(&req).expect("warm run");
            assert_eq!(warm.launch, LaunchPath::WarmHit);
            assert_eq!(warm.first_output(), &expected, "warm output wrong");
            warm_us.push(warm.latency.as_micros());
        }
        cold_us.sort_unstable();
        warm_us.sort_unstable();
        assert_eq!(cold_us.len(), SAMPLES);
        let r = SizeResult {
            neurons,
            workers,
            samples: cold_us.len(),
            cold_p50_us: percentile(&cold_us, 50.0),
            cold_p99_us: percentile(&cold_us, 99.0),
            warm_p50_us: percentile(&warm_us, 50.0),
            warm_p99_us: percentile(&warm_us, 99.0),
        };
        assert!(
            r.warm_p50_us < r.cold_p50_us,
            "warm p50 must be strictly below cold p50 (N={neurons})"
        );
        assert!(
            r.cold_p50_us < r.cold_p99_us,
            "varied samples must spread the distribution (N={neurons}): \
             p50 {} == p99 {}",
            r.cold_p50_us,
            r.cold_p99_us
        );
        table.row(vec![
            neurons.to_string(),
            workers.to_string(),
            format!("{:.1}ms", r.cold_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.cold_p99_us as f64 / 1000.0),
            format!("{:.1}ms", r.warm_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.warm_p99_us as f64 / 1000.0),
            format!("{:.2}x", r.cold_p50_us as f64 / r.warm_p50_us as f64),
        ]);
        results.push(r);
    }
    table.print(&format!(
        "Warm pool — launch-to-first-output, {SAMPLES} varied samples per path, FSD-Inf-Queue"
    ));

    // Machine-readable emission for the CI bench-regression gate.
    let mut json = String::from("{\n  \"bench\": \"warm_pool\",\n  \"samples_per_path\": ");
    let _ = write!(json, "{SAMPLES},\n  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"neurons\": {}, \"workers\": {}, \"samples\": {}, \
             \"cold_p50_us\": {}, \"cold_p99_us\": {}, \
             \"warm_p50_us\": {}, \"warm_p99_us\": {}}}{}",
            r.neurons,
            r.workers,
            r.samples,
            r.cold_p50_us,
            r.cold_p99_us,
            r.warm_p50_us,
            r.warm_p99_us,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_warm_pool.json", &json).expect("write BENCH_warm_pool.json");
    println!("wrote BENCH_warm_pool.json");
}
