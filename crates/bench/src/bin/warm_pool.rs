//! Warm-pool launch-to-first-output — cold starts vs warm hits.
//!
//! Not a paper table: this measures the warm-tree pool. For each model
//! size, the same single-batch request is served repeatedly through a
//! pooled service; before each *cold* sample the pool is invalidated (the
//! parked tree is dropped, forcing the full coordinator + cold start +
//! `launch_rounds(P, b)` + weight-load bill), while *warm* samples route
//! into the parked tree. The run asserts warm p50 strictly below cold p50
//! under the deterministic clock, prints both distributions, and emits
//! `BENCH_warm_pool.json` for CI trend tracking.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin warm_pool
//! ```

use fsd_bench::{workload_with_batch, Scale, Table};
use fsd_core::{InferenceRequest, LaunchPath, ServiceBuilder, Variant};
use std::fmt::Write as _;

const SEED: u64 = 42;
const SAMPLES: usize = 9;

/// Percentile over a sorted sample set (nearest-rank).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

struct SizeResult {
    neurons: usize,
    workers: u32,
    cold_p50_us: u64,
    cold_p99_us: u64,
    warm_p50_us: u64,
    warm_p99_us: u64,
}

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(&[
        "neurons",
        "P",
        "cold p50",
        "cold p99",
        "warm p50",
        "warm p99",
        "speedup p50",
    ]);
    let mut results = Vec::new();
    for &neurons in &scale.neuron_grid() {
        let workers = scale.worker_grid()[1];
        let memory_mb = scale.worker_memory_mb(neurons);
        let w = workload_with_batch(scale, neurons, scale.batch().min(64), SEED);
        let service = ServiceBuilder::new(w.dnn.clone())
            .config(scale.engine_config(SEED))
            .warm_pool(2, u64::MAX)
            .prewarm(workers)
            .build();
        let req = InferenceRequest {
            variant: Variant::Queue,
            workers,
            memory_mb,
            inputs: w.inputs.clone(),
        };
        let mut cold_us = Vec::with_capacity(SAMPLES);
        let mut warm_us = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            service.invalidate_warm_trees();
            let cold = service.submit(&req).expect("cold run");
            assert_eq!(cold.launch, LaunchPath::ColdStart);
            assert_eq!(cold.first_output(), &w.expected, "cold output wrong");
            cold_us.push(cold.latency.as_micros());
            let warm = service.submit(&req).expect("warm run");
            assert_eq!(warm.launch, LaunchPath::WarmHit);
            assert_eq!(warm.first_output(), &w.expected, "warm output wrong");
            warm_us.push(warm.latency.as_micros());
        }
        cold_us.sort_unstable();
        warm_us.sort_unstable();
        let r = SizeResult {
            neurons,
            workers,
            cold_p50_us: percentile(&cold_us, 50.0),
            cold_p99_us: percentile(&cold_us, 99.0),
            warm_p50_us: percentile(&warm_us, 50.0),
            warm_p99_us: percentile(&warm_us, 99.0),
        };
        assert!(
            r.warm_p50_us < r.cold_p50_us,
            "warm p50 must be strictly below cold p50 (N={neurons})"
        );
        table.row(vec![
            neurons.to_string(),
            workers.to_string(),
            format!("{:.1}ms", r.cold_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.cold_p99_us as f64 / 1000.0),
            format!("{:.1}ms", r.warm_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.warm_p99_us as f64 / 1000.0),
            format!("{:.2}x", r.cold_p50_us as f64 / r.warm_p50_us as f64),
        ]);
        results.push(r);
    }
    table.print(&format!(
        "Warm pool — launch-to-first-output, {SAMPLES} samples per path, FSD-Inf-Queue"
    ));

    // Machine-readable emission for CI trend tracking.
    let mut json = String::from("{\n  \"bench\": \"warm_pool\",\n  \"samples_per_path\": ");
    let _ = write!(json, "{SAMPLES},\n  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"neurons\": {}, \"workers\": {}, \
             \"cold_p50_us\": {}, \"cold_p99_us\": {}, \
             \"warm_p50_us\": {}, \"warm_p99_us\": {}}}{}",
            r.neurons,
            r.workers,
            r.cold_p50_us,
            r.cold_p99_us,
            r.warm_p50_us,
            r.warm_p99_us,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_warm_pool.json", &json).expect("write BENCH_warm_pool.json");
    println!("wrote BENCH_warm_pool.json");
}
