//! Chaos soak — the fault-injection acceptance gate.
//!
//! Drives a seeded bursty trace through an admission-controlled scheduler
//! twice: once fault-free (the overhead baseline the CI bench gate
//! tracks) and once with a 5% per-operation transient fault rate across
//! every API class (`FaultPlan::uniform_transient`), with channel-level
//! retry/backoff and a scheduler retry budget absorbing the injected
//! failures. The faulted soak is replayed **three times** and must be
//! bit-identical — same injected faults, same retries, same outputs, same
//! bills — because every injection decision is a pure hash of
//! `(plan seed, api class, flow, virtual now, resource)`.
//!
//! Hard assertions (the chaos gate):
//! * every request ultimately succeeds (≥99% required; zero terminal
//!   failures delivered) and returns the exact serial-reference output;
//! * ×3 bit-identical faulted replays (per-request latency + billing
//!   fingerprints, scheduler counters, fault-plane stats, global meters);
//! * zero cloud residue after drain (`CloudEnv::assert_no_residue`);
//! * exact billing partition: the global comm + Lambda meters must equal
//!   the sum of the per-flow request digests even though failed attempts
//!   are billed and retries add calls;
//! * the fault-free run injects nothing and retries nothing.
//!
//! `FSD_FAULT_SEED` selects the fault-plane seed (CI sweeps several); the
//! workload itself stays fixed so only the injection schedule moves.
//!
//! ```text
//! FSD_FAULT_SEED=7 cargo run --release -p fsd-bench --bin chaos_soak
//! ```

use fsd_bench::Table;
use fsd_comm::{CloudConfig, FaultPlan, MeterSnapshot, VirtualTime};
use fsd_core::{BatchedRequest, FailedAttemptBill, FsdService, ServiceBuilder};
use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec, SparseDnn};
use fsd_sched::{trace, Arrival, Scheduler, SchedulerConfig, Ticket, DEFAULT_MODEL};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Workload seed — fixed, so the fault seed is the only moving part.
const SEED: u64 = 42;
/// Per-operation transient fault probability in the chaos run.
const FAULT_RATE: f64 = 0.05;
/// Scheduler-level retry budget per request (on top of channel retries).
const RETRY_BUDGET: u32 = 6;

fn fault_seed() -> u64 {
    std::env::var("FSD_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SEED)
}

fn dnn_spec() -> DnnSpec {
    DnnSpec {
        neurons: 64,
        layers: 2,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: SEED,
    }
}

fn request_for(dnn: &SparseDnn, a: &Arrival) -> BatchedRequest {
    BatchedRequest {
        variant: a.variant,
        workers: a.workers,
        memory_mb: a.memory_mb,
        batches: vec![generate_inputs(
            dnn.spec().neurons,
            &InputSpec::scaled(a.width, a.input_seed),
        )],
    }
}

/// Everything a soak run must reproduce bit-for-bit on replay.
#[derive(Debug, PartialEq)]
struct SoakRun {
    /// Per request: (virtual latency µs, SQS calls, SNS publishes,
    /// S3 GET+PUT, Lambda invocations).
    fingerprints: Vec<(u64, u64, u64, u64, u64)>,
    retried: u64,
    failed: u64,
    injected: u64,
    global_comm: MeterSnapshot,
    global_invocations: u64,
    /// What the failed (retried-away) attempts were billed.
    failed_bill: FailedAttemptBill,
    mean_latency_us: u64,
}

/// One full soak: enqueue the whole trace with a retry budget through an
/// auto-dispatch scheduler at `global_cap(1)` (serial admission keeps the
/// flow-id sequence — and therefore the injection schedule — replayable),
/// wait every ticket, then audit billing partition and residue.
fn soak(dnn: &Arc<SparseDnn>, arrivals: &[Arrival], plan: Option<FaultPlan>) -> SoakRun {
    let mut cloud = CloudConfig::deterministic(SEED);
    if let Some(plan) = plan {
        cloud = cloud.with_faults(plan);
    }
    let service: Arc<FsdService> = Arc::new(
        ServiceBuilder::new(dnn.clone())
            .cloud(cloud)
            .seed(SEED)
            .build(),
    );
    let sched = Scheduler::wrap(
        service.clone(),
        SchedulerConfig::default().global_cap(1).queue_capacity(256),
    );
    let tickets: Vec<Ticket> = arrivals
        .iter()
        .map(|a| {
            sched
                .enqueue_with_retries(DEFAULT_MODEL, a.priority, request_for(dnn, a), RETRY_BUDGET)
                .expect("generous queues must not reject")
        })
        .collect();

    let mut fingerprints = Vec::with_capacity(arrivals.len());
    let mut per_flow_comm = MeterSnapshot::default();
    let mut per_flow_invocations = 0u64;
    let mut total_latency_us = 0u64;
    for (t, a) in tickets.into_iter().zip(arrivals) {
        let report = t
            .wait()
            .expect("the retry budget must absorb every injected fault");
        // Faults must never corrupt payloads: every answer is still the
        // exact serial reference for its input.
        let inputs = generate_inputs(
            dnn.spec().neurons,
            &InputSpec::scaled(a.width, a.input_seed),
        );
        assert_eq!(
            report.first_output(),
            &dnn.serial_inference(&inputs),
            "faulted run must still produce the serial-reference output"
        );
        total_latency_us += report.latency.as_micros();
        per_flow_comm = per_flow_comm.plus(&report.comm);
        per_flow_invocations += report.lambda.invocations;
        fingerprints.push((
            report.latency.as_micros(),
            report.comm.sqs_api_calls,
            report.comm.sns_publish_requests,
            report.comm.s3_get_requests + report.comm.s3_put_requests,
            report.lambda.invocations,
        ));
    }
    sched.shutdown();
    sched.drain();

    // Exact billing partition: failed attempts are billed (the service
    // folds their harvested flow windows into `failed_attempt_bill`), so
    // the successful per-request digests plus the failed-attempt bill must
    // reproduce the region's global meters even after retries.
    let global_comm = service.env().meter().snapshot();
    let global_invocations = service.platform().lambda_meter().snapshot().invocations;
    let failed_bill = service.failed_attempt_bill();
    assert_eq!(
        per_flow_comm.plus(&failed_bill.comm),
        global_comm,
        "per-flow comm + failed-attempt bill must partition the global meter exactly"
    );
    assert_eq!(
        per_flow_invocations + failed_bill.lambda.invocations,
        global_invocations,
        "per-flow + failed-attempt invocations must partition the global Lambda meter"
    );
    // And nothing may leak — queues, subscriptions, objects, flows.
    service.env().assert_no_residue();
    assert_eq!(
        service.env().meter().tracked_flows(),
        0,
        "leaked comm flows"
    );

    let stats = sched.stats();
    assert_eq!(stats.failed, 0, "zero terminal failures required");
    assert_eq!(stats.completed, arrivals.len() as u64);
    SoakRun {
        fingerprints,
        retried: stats.retried,
        failed: stats.failed,
        injected: service.env().faults().stats().injected_total(),
        global_comm,
        global_invocations,
        failed_bill,
        mean_latency_us: total_latency_us / arrivals.len().max(1) as u64,
    }
}

fn main() {
    let fault_seed = fault_seed();
    let dnn = Arc::new(generate_dnn(&dnn_spec()));
    let arrivals = trace::bursty(6, 8, 300_000, SEED);
    let plan = FaultPlan::uniform_transient(fault_seed, FAULT_RATE);

    // Fault-free baseline: the plane must stay perfectly dormant.
    let started = Instant::now();
    let baseline = soak(&dnn, &arrivals, None);
    let baseline_wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(baseline.injected, 0, "no plan, no faults");
    assert_eq!(baseline.retried, 0, "no faults, no retries");
    assert_eq!(
        baseline.failed_bill,
        FailedAttemptBill::default(),
        "a fault-free run must bill no failed attempts"
    );

    // Chaos run ×3 — must replay bit-identically.
    let started = Instant::now();
    let chaos = soak(&dnn, &arrivals, Some(plan));
    let chaos_wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert!(chaos.injected > 0, "a 5% plan over this trace must inject");
    assert!(chaos.retried > 0, "injected faults must surface as retries");
    for replay in 0..2 {
        assert_eq!(
            soak(&dnn, &arrivals, Some(plan)),
            chaos,
            "faulted replay {} diverged — injection must be deterministic",
            replay + 2,
        );
    }

    let success_pct =
        |r: &SoakRun| 100.0 * (arrivals.len() as u64 - r.failed) as f64 / arrivals.len() as f64;
    let mut t = Table::new(&[
        "mode",
        "requests",
        "success %",
        "injected",
        "retried",
        "mean virt latency",
        "SQS calls",
        "invocations",
        "wall ms",
    ]);
    for (mode, r, wall_ms) in [
        ("fault-free", &baseline, baseline_wall_ms),
        ("5% chaos ×3", &chaos, chaos_wall_ms),
    ] {
        t.row(vec![
            mode.to_string(),
            arrivals.len().to_string(),
            format!("{:.1}%", success_pct(r)),
            r.injected.to_string(),
            r.retried.to_string(),
            VirtualTime::from_micros(r.mean_latency_us).to_string(),
            r.global_comm.sqs_api_calls.to_string(),
            r.global_invocations.to_string(),
            format!("{wall_ms:.1}"),
        ]);
    }
    t.print(&format!(
        "Chaos soak — bursty trace ({} requests), fault seed {fault_seed}: \
         bit-identical ×3, exact billing partition, zero residue",
        arrivals.len(),
    ));
    println!(
        "failed attempts are billed: chaos run bills {} extra SQS calls and \
         {} extra invocations over the fault-free baseline",
        chaos.global_comm.sqs_api_calls as i64 - baseline.global_comm.sqs_api_calls as i64,
        chaos.global_invocations as i64 - baseline.global_invocations as i64,
    );

    // Machine-readable emission for the CI bench-regression gate. Only
    // the fault-free latency is gated (the chaos run's latency moves with
    // FSD_FAULT_SEED); the success rate is gated for both modes.
    let mut json = String::from("{\n  \"bench\": \"chaos_soak\",\n  \"soak\": [\n");
    let _ = writeln!(
        json,
        "    {{\"mode\": \"fault_free\", \"fault_free_mean_latency_us\": {}, \
         \"success_rate_pct\": {:.1}}},",
        baseline.mean_latency_us,
        success_pct(&baseline),
    );
    let _ = writeln!(
        json,
        "    {{\"mode\": \"faulted\", \"injected\": {}, \"retried\": {}, \
         \"success_rate_pct\": {:.1}}}",
        chaos.injected,
        chaos.retried,
        success_pct(&chaos),
    );
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_chaos_soak.json", &json).expect("write BENCH_chaos_soak.json");
    println!("wrote BENCH_chaos_soak.json");
}
