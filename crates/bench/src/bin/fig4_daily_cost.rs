//! Figure 4 — daily cost vs query volume.
//!
//! Queries arrive over 24 h, evenly spread over the neuron-count grid. For
//! each volume: FSD-Inference picks its best variant per model size and
//! pays per query; Server-Always-On keeps 2× c5.12xlarge running all day
//! (fixed cost); Server-Job-Scoped provisions per query. The paper's shape:
//! FSD is far cheaper than always-on until ~4M samples/day; job-scoped is
//! marginally cheaper than FSD but (Fig. 5) suffers minute-scale latency.

use fsd_baselines::{job_scoped_instance, run_server, ServerKind, ServerTimings, C5_12XLARGE};
use fsd_bench::{engine_for, run_checked, usd, Scale, Table};
use fsd_core::Variant;

fn main() {
    let scale = Scale::from_args();
    let batch = scale.batch();
    let grid = scale.neuron_grid();

    // Per-query cost of FSD's best configuration for each model size.
    println!("Measuring FSD per-query costs (best variant per N)…");
    let mut fsd_query_cost = Vec::new();
    let mut js_query_cost = Vec::new();
    for &n in &grid {
        let w = fsd_bench::workload(scale, n, 42);
        let engine = engine_for(&w, scale, 42);
        // Best variant: serial for the smallest model, queue/object beyond
        // (the engine's own recommendation logic is exercised in tests;
        // here we measure both parallel variants and keep the cheaper).
        let mem = scale.worker_memory_mb(n);
        let p = scale.worker_grid()[scale.worker_grid().len() / 2];
        let candidates = if n == grid[0] {
            vec![run_checked(&engine, &w, Variant::Serial, 1, mem)]
        } else {
            vec![
                run_checked(&engine, &w, Variant::Queue, p, mem),
                run_checked(&engine, &w, Variant::Object, p, mem),
            ]
        };
        let best = candidates
            .into_iter()
            .min_by(|a, b| {
                a.cost_actual
                    .total()
                    .partial_cmp(&b.cost_actual.total())
                    .expect("finite")
            })
            .expect("non-empty");
        println!(
            "  N={n}: {} P={} -> {}/query",
            best.variant,
            best.workers,
            usd(best.cost_actual.total())
        );
        fsd_query_cost.push(best.cost_actual.total());

        let js = run_server(
            &w.dnn,
            &w.inputs,
            ServerKind::JobScoped,
            job_scoped_instance(n),
            &scale.compute(),
            &ServerTimings::default(),
        )
        .expect("job-scoped fits");
        js_query_cost.push(js.cost_per_query.expect("per-query billed"));
    }

    let always_on_daily = 2.0 * 24.0 * C5_12XLARGE.hourly_usd;

    let mut t = Table::new(&[
        "samples/day (k)",
        "queries/day",
        "FSD-Inference",
        "Server-Always-On",
        "Server-Job-Scoped",
    ]);
    // Volume grid: query-count doublings up to well past the always-on
    // crossover (the paper's sweep reaches it around 4M samples/day).
    let daily_cost = |queries: u64| -> (f64, f64) {
        let per_model = (queries as f64 / grid.len() as f64).ceil();
        let fsd: f64 = fsd_query_cost.iter().map(|c| c * per_model).sum();
        let js: f64 = js_query_cost.iter().map(|c| c * per_model).sum();
        (fsd, js)
    };
    let mut crossover: Option<u64> = None;
    for i in 0..17u32 {
        let queries = 1u64 << i;
        let daily_samples = queries * batch as u64;
        let (fsd, js) = daily_cost(queries);
        if fsd > always_on_daily && crossover.is_none() {
            crossover = Some(daily_samples);
        }
        t.row(vec![
            format!("{:.1}", daily_samples as f64 / 1000.0),
            format!("{queries}"),
            usd(fsd),
            usd(always_on_daily),
            usd(js),
        ]);
    }
    t.print("Figure 4: daily cost vs query volume");

    // The paper's headline shape: FSD is far cheaper than always-on until
    // very high daily volumes, where the lines cross (≈4M samples/day in
    // the paper); job-scoped stays marginally cheaper than FSD throughout.
    let (fsd_low, _) = daily_cost(1);
    assert!(
        fsd_low < always_on_daily,
        "FSD must undercut always-on at low volume"
    );
    let crossover = crossover.expect("sweep must reach the always-on crossover");
    println!(
        "\nShape check: FSD {} at the lowest volume, crossover with always-on at ~{:.1}k samples/day — OK",
        usd(fsd_low),
        crossover as f64 / 1000.0
    );
}
