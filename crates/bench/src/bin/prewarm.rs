//! Predictive pre-warming — predicted-burst hit rate vs reactive-only.
//!
//! Not a paper table: this measures the PR-4 predictor. The same seeded
//! bursty trace is replayed through three manual-dispatch schedulers over
//! identically seeded models:
//!
//! * **off** — no warm pool at all (every request pays the launch bill);
//! * **reactive** — the PR-3 pool: trees park only after traffic already
//!   paid their cold start;
//! * **predictive** — the same pool fronted by the arrival-history
//!   predictor ([`fsd_sched::PredictorConfig`]), which pre-warms each
//!   shape before its burst is admitted.
//!
//! Replays run at `global_cap = 1` so every pool mutation is totally
//! ordered and the emitted metrics are bit-stable — exactly what the CI
//! bench-regression gate needs. The run asserts the acceptance criterion
//! (predictive hit rate strictly above reactive) and emits
//! `BENCH_prewarm.json`.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin prewarm
//! ```

use fsd_core::{FsdService, ServiceBuilder};
use fsd_model::{generate_dnn, DnnSpec};
use fsd_sched::harness::replay;
use fsd_sched::{trace, PredictorConfig, Scheduler, SchedulerBuilder, SchedulerConfig};
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 42;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Reactive,
    Predictive,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Reactive => "reactive",
            Mode::Predictive => "predictive",
        }
    }
}

fn fresh_service(mode: Mode) -> Arc<FsdService> {
    let spec = DnnSpec {
        neurons: 128,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: SEED,
    };
    let mut builder = ServiceBuilder::new(Arc::new(generate_dnn(&spec)))
        .deterministic(SEED)
        .prewarm(1)
        .prewarm(2);
    if mode != Mode::Off {
        // The bursty trace carries four distributed shapes
        // (Queue/Object × P ∈ {1, 2}) bursting up to two deep.
        builder = builder.auto_warm_pool(4, 2);
    }
    Arc::new(builder.build())
}

fn fresh_scheduler(mode: Mode) -> Scheduler {
    let mut cfg = SchedulerConfig::default()
        .global_cap(1)
        .queue_capacity(64)
        .manual();
    if mode == Mode::Predictive {
        // Window of one burst (8 arrivals): in-window counts equal the
        // burst depth per shape instead of double-counting across bursts.
        cfg = cfg.predictive(PredictorConfig::default().window(8).max_warm(8));
    }
    SchedulerBuilder::new(cfg)
        .model("m", fresh_service(mode))
        .build()
}

struct Row {
    mode: &'static str,
    warm_hits: u64,
    cold_starts: u64,
    hit_rate_pct: u64,
    prewarmed: u64,
    mean_latency_us: u64,
}

fn main() {
    let arrivals = trace::bursty(4, 8, 400_000, SEED);
    let mut table = fsd_bench::Table::new(&[
        "pool",
        "warm hits",
        "cold starts",
        "hit rate",
        "prewarmed",
        "mean virt latency",
    ]);
    let mut rows = Vec::new();
    for mode in [Mode::Off, Mode::Reactive, Mode::Predictive] {
        let sched = fresh_scheduler(mode);
        let report = replay(&sched, "m", &arrivals);
        assert!(report.rejected.is_empty(), "generous queues never reject");
        assert_eq!(report.stats.failed, 0);
        let (sum_us, n) = report
            .outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .fold((0u64, 0u64), |(s, n), d| (s + d.latency_us, n + 1));
        let distributed = report.stats.warm_hits + report.stats.cold_starts;
        let row = Row {
            mode: mode.name(),
            warm_hits: report.stats.warm_hits,
            cold_starts: report.stats.cold_starts,
            hit_rate_pct: 100 * report.stats.warm_hits / distributed.max(1),
            prewarmed: report.stats.prewarmed,
            mean_latency_us: sum_us / n.max(1),
        };
        table.row(vec![
            row.mode.to_string(),
            row.warm_hits.to_string(),
            row.cold_starts.to_string(),
            format!("{}%", row.hit_rate_pct),
            row.prewarmed.to_string(),
            format!("{:.1}ms", row.mean_latency_us as f64 / 1000.0),
        ]);
        rows.push(row);
    }
    table.print(&format!(
        "Predictive pre-warming — bursty trace ({} requests), manual replay, global_cap=1",
        arrivals.len(),
    ));

    // The acceptance criterion, enforced on every bench run: the
    // predictor's hit rate strictly beats reactive-only, which in turn
    // beats no pool at all.
    let (off, reactive, predictive) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(off.warm_hits, 0, "a pool-less run cannot hit warm");
    assert!(
        predictive.warm_hits > reactive.warm_hits,
        "predicted-burst hit rate must beat reactive-only: {} vs {}",
        predictive.warm_hits,
        reactive.warm_hits
    );
    assert!(
        predictive.mean_latency_us < reactive.mean_latency_us
            && reactive.mean_latency_us < off.mean_latency_us,
        "latency must fall with the hit rate"
    );

    // Machine-readable emission for the CI bench-regression gate.
    let mut json = String::from("{\n  \"bench\": \"prewarm\",\n  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"warm_hits\": {}, \"cold_starts\": {}, \
             \"hit_rate_pct\": {}, \"prewarmed\": {}, \"mean_latency_us\": {}}}{}",
            r.mode,
            r.warm_hits,
            r.cold_starts,
            r.hit_rate_pct,
            r.prewarmed,
            r.mean_latency_us,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_prewarm.json", &json).expect("write BENCH_prewarm.json");
    println!("wrote BENCH_prewarm.json");
}
