//! Channel matrix — payload-size sweep across all four transports.
//!
//! Not a paper table: this measures where each channel wins, the evidence
//! behind the §IV-C routing bands extended with the FMI direct-exchange
//! band (Direct → Queue → Hybrid → Object).
//! For each payload size, `SAMPLES` seeded layer fan-outs (one sender
//! shipping a per-pair payload to [`FANOUT`] targets, `ROUNDS` successive
//! layer tags — the send shape of an FSI layer) run over each transport
//! in a fresh deterministic region; the metric is the slowest receiver's
//! end-to-end virtual time. The run asserts the hybrid contract — p50 no
//! worse than pure queue wherever payloads spill, and no worse than pure
//! object wherever they stay inline — plus the direct contract (p50 no
//! worse than queue on inline payloads, where zero per-message API cost
//! must dominate), sweeps the direct transport across NAT-punch transient
//! failure rates (failed handshakes cost retries, never correctness),
//! prints the matrices, and emits `BENCH_comm_matrix.json` for the CI
//! bench-regression gate.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin comm_matrix
//! ```

use fsd_bench::Table;
use fsd_comm::{ApiClass, CloudConfig, CloudEnv, FaultPlan, VirtualTime};
use fsd_core::{ChannelOptions, ChannelRegistry, RecvTracker, Tag, Variant};
use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};
use fsd_sparse::{codec, SparseRows};
use std::fmt::Write as _;

const SEED: u64 = 77;
const SAMPLES: usize = 5;
const ROUNDS: u32 = 3;
/// Receivers per layer fan-out (worker 0 → workers 1..=FANOUT).
const FANOUT: u32 = 7;
const NNZ_PER_ROW: usize = 500;

/// One per-pair payload: `total_nnz` nonzeros spread over rows of
/// [`NNZ_PER_ROW`], hash-varied values (activation-like entropy — near
/// enough incompressible that wire bytes track the serialized size, as
/// they do for real intermediates).
fn payload(total_nnz: usize, seed: u64) -> SparseRows {
    let n_rows = total_nnz.div_ceil(NNZ_PER_ROW).max(1);
    SparseRows::from_rows(
        NNZ_PER_ROW,
        (0..n_rows as u32).map(|i| {
            let cols: Vec<u32> = (0..NNZ_PER_ROW as u32).collect();
            let vals: Vec<f32> = (0..NNZ_PER_ROW)
                .map(|j| {
                    let h = (i as u64)
                        .wrapping_mul(2654435761)
                        .wrapping_add(j as u64 * 40503)
                        .wrapping_add(seed)
                        % 65521;
                    h as f32 * 1.73e-4
                })
                .collect();
            (i, cols, vals)
        }),
    )
}

/// Slowest-receiver virtual time for `ROUNDS` fan-outs of `rows` (worker
/// 0 → every other rank) over `variant` in a fresh deterministic region.
fn measure(variant: Variant, rows: &SparseRows, seed: u64) -> u64 {
    measure_with(variant, rows, seed, 0.0)
}

/// [`measure`] with a seeded transient failure rate on the direct
/// transport's NAT punches ([`ApiClass::DirectPunch`]). Failed handshakes
/// are retried by the channel; they cost time, never payloads.
fn measure_with(variant: Variant, rows: &SparseRows, seed: u64, punch_fail_rate: f64) -> u64 {
    let mut config = CloudConfig::deterministic(seed);
    if punch_fail_rate > 0.0 {
        config = config.with_faults(
            FaultPlan::new(seed).with_transient(ApiClass::DirectPunch, punch_fail_rate),
        );
    }
    let env = CloudEnv::new(config);
    let channel = ChannelRegistry::with_builtins()
        .get(variant.channel_name().expect("channel variant"))
        .expect("builtin provider")
        .provision(&env, FANOUT + 1, ChannelOptions::default(), 0);
    let platform = FaasPlatform::new(env, ComputeModel::default());
    let ch_send = channel.clone();
    let sent = rows.clone();
    platform
        .invoke(
            FunctionConfig::worker("send", 4096),
            VirtualTime::ZERO,
            move |ctx| {
                for r in 0..ROUNDS {
                    let sends: Vec<(u32, SparseRows)> =
                        (1..=FANOUT).map(|t| (t, sent.clone())).collect();
                    ch_send.send_layer(ctx, Tag::Layer(r), 0, &sends)?;
                }
                Ok(())
            },
        )
        .join()
        .expect("sender ok");
    let expected_nnz = rows.nnz();
    let mut slowest = 0u64;
    for me in 1..=FANOUT {
        let ch_recv = channel.clone();
        let (elapsed_us, _) = platform
            .invoke(
                FunctionConfig::worker(format!("recv{me}"), 4096),
                VirtualTime::ZERO,
                move |ctx| {
                    for r in 0..ROUNDS {
                        let mut tracker = RecvTracker::expecting([0u32]);
                        let got = ch_recv.receive_all(ctx, Tag::Layer(r), me, &mut tracker)?;
                        let got_nnz: usize = got.iter().map(|(_, b)| b.nnz()).sum();
                        assert_eq!(got_nnz, expected_nnz, "{variant} round {r} lost payload");
                    }
                    Ok(ctx.now().as_micros())
                },
            )
            .join()
            .expect("receiver ok");
        slowest = slowest.max(elapsed_us);
    }
    channel.teardown();
    slowest
}

fn p50(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

struct SweepResult {
    label: &'static str,
    payload_nnz: usize,
    wire_bytes: usize,
    spilled: bool,
    queue_p50_us: u64,
    object_p50_us: u64,
    hybrid_p50_us: u64,
    direct_p50_us: u64,
}

fn main() {
    let threshold = ChannelOptions::default().spill_threshold;
    let sweeps: [(&'static str, usize); 4] = [
        ("small", 2_000),
        ("medium", 30_000),
        ("large", 400_000),
        ("huge", 1_200_000),
    ];
    let mut table = Table::new(&[
        "payload",
        "nnz",
        "serialized",
        "plane",
        "queue p50",
        "object p50",
        "hybrid p50",
        "direct p50",
    ]);
    let mut results = Vec::new();
    for (label, total_nnz) in sweeps {
        let wire_bytes = codec::encoded_size(&payload(total_nnz, SEED));
        let spilled = wire_bytes > threshold;
        let mut per_variant = [0u64; 4];
        for (vi, variant) in [
            Variant::Queue,
            Variant::Object,
            Variant::Hybrid,
            Variant::Direct,
        ]
        .into_iter()
        .enumerate()
        {
            let mut samples: Vec<u64> = (0..SAMPLES)
                .map(|s| {
                    let rows = payload(total_nnz, SEED + s as u64);
                    measure(variant, &rows, SEED + 100 * s as u64)
                })
                .collect();
            per_variant[vi] = p50(&mut samples);
        }
        let r = SweepResult {
            label,
            payload_nnz: total_nnz,
            wire_bytes,
            spilled,
            queue_p50_us: per_variant[0],
            object_p50_us: per_variant[1],
            hybrid_p50_us: per_variant[2],
            direct_p50_us: per_variant[3],
        };
        // The hybrid contract the §IV-C bands are built on.
        if r.spilled {
            assert!(
                r.hybrid_p50_us <= r.queue_p50_us,
                "{label}: spilled hybrid p50 {} must not exceed queue p50 {}",
                r.hybrid_p50_us,
                r.queue_p50_us
            );
        } else {
            assert!(
                r.hybrid_p50_us <= r.object_p50_us,
                "{label}: inline hybrid p50 {} must not exceed object p50 {}",
                r.hybrid_p50_us,
                r.object_p50_us
            );
            // The direct contract behind the §IV-C Direct band: on
            // small/mid inline payloads, zero per-message API cost must
            // beat the cheapest managed transport.
            assert!(
                r.direct_p50_us <= r.queue_p50_us,
                "{label}: inline direct p50 {} must not exceed queue p50 {}",
                r.direct_p50_us,
                r.queue_p50_us
            );
        }
        table.row(vec![
            label.to_string(),
            r.payload_nnz.to_string(),
            format!("{:.0} KiB", r.wire_bytes as f64 / 1024.0),
            if r.spilled { "spill" } else { "inline" }.to_string(),
            format!("{:.1}ms", r.queue_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.object_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.hybrid_p50_us as f64 / 1000.0),
            format!("{:.1}ms", r.direct_p50_us as f64 / 1000.0),
        ]);
        results.push(r);
    }
    table.print(&format!(
        "Channel matrix — 1→{FANOUT} layer fan-out, {ROUNDS} layers, {SAMPLES} seeded samples, \
         spill threshold {} KiB (serialized)",
        threshold / 1024
    ));

    // Direct-transport resilience: sweep the NAT-punch transient failure
    // rate on the small inline payload. Every handshake refusal is billed,
    // elapsed and retried, so latency may only climb with the rate —
    // payloads are conserved at every point (asserted inside `measure`).
    let punch_rates: [f64; 3] = [0.0, 0.1, 0.3];
    let mut punch_table = Table::new(&["punch fail rate", "direct p50"]);
    let mut punch_results: Vec<(u32, u64)> = Vec::new();
    for rate in punch_rates {
        let mut samples: Vec<u64> = (0..SAMPLES)
            .map(|s| {
                let rows = payload(2_000, SEED + s as u64);
                measure_with(Variant::Direct, &rows, SEED + 100 * s as u64, rate)
            })
            .collect();
        let v = p50(&mut samples);
        punch_table.row(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.1}ms", v as f64 / 1000.0),
        ]);
        punch_results.push(((rate * 100.0) as u32, v));
    }
    let fault_free = punch_results[0].1;
    for &(rate_pct, v) in &punch_results[1..] {
        assert!(
            v >= fault_free,
            "punch failures can only add retry time: {rate_pct}% p50 {v} < fault-free {fault_free}"
        );
    }
    punch_table.print(&format!(
        "Direct under punch faults — small payload, 1→{FANOUT} fan-out, {ROUNDS} layers, \
         {SAMPLES} seeded samples"
    ));

    // Machine-readable emission for the CI bench-regression gate.
    let mut json = String::from("{\n  \"bench\": \"comm_matrix\",\n");
    let _ = write!(
        json,
        "  \"samples\": {SAMPLES},\n  \"rounds\": {ROUNDS},\n  \
         \"spill_threshold\": {threshold},\n  \"sweeps\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"payload_nnz\": {}, \"wire_bytes\": {}, \
             \"spilled\": {}, \"queue_p50_us\": {}, \"object_p50_us\": {}, \
             \"hybrid_p50_us\": {}, \"direct_p50_us\": {}}}{}",
            r.label,
            r.payload_nnz,
            r.wire_bytes,
            r.spilled,
            r.queue_p50_us,
            r.object_p50_us,
            r.hybrid_p50_us,
            r.direct_p50_us,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"punch_sweeps\": [\n");
    for (i, (rate_pct, v)) in punch_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"punch_fail_rate_pct\": {rate_pct}, \"direct_punch_p50_us\": {v}}}{}",
            if i + 1 < punch_results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_comm_matrix.json", &json).expect("write BENCH_comm_matrix.json");
    println!("wrote BENCH_comm_matrix.json");
}
