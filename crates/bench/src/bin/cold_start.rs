//! Cold-start multicast — independent weight loads vs λScale-style
//! streaming down the launch cascade.
//!
//! Not a paper table: this measures the weight-streaming cold path. For
//! each (model size, P), `SAMPLES` distinct single-batch requests are
//! served three ways, all of them `ColdStart` launches:
//!
//! * **off** — streaming disabled: the hierarchical cascade, every worker
//!   fetching its own partition from object storage (the original path);
//! * **miss** — streaming enabled, cache invalidated first: rank 0
//!   fetches each block once and multicasts it down the tree;
//! * **hit** — streaming enabled, parked trees evicted but the shared
//!   weight cache kept: the relaunch streams straight out of memory.
//!
//! The run asserts miss p50 strictly below off p50 and hit p50 at or
//! below miss p50, gates the streamed cold start against the *committed*
//! `BENCH_warm_pool.json` cold baselines (≥20% drop at the workers=4
//! rows; in-run off p50 when no baseline is checked out), and emits
//! `BENCH_cold_start.json` for the CI bench-regression gate.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin cold_start
//! ```

use fsd_bench::{gate, workload_with_batch, Scale, Table};
use fsd_core::{InferenceRequest, LaunchPath, ServiceBuilder, Variant};
use fsd_model::{generate_inputs, InputSpec};
use std::fmt::Write as _;

const SEED: u64 = 42;
const SAMPLES: usize = 9;

/// Percentile over a sorted sample set (nearest-rank).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

struct SizeResult {
    neurons: usize,
    workers: u32,
    samples: usize,
    off_p50_us: u64,
    off_p99_us: u64,
    miss_p50_us: u64,
    miss_p99_us: u64,
    hit_p50_us: u64,
    hit_p99_us: u64,
}

fn main() {
    let scale = Scale::from_args();
    // P = 4 (comparable to the committed warm-pool baselines) and P = 8
    // (a two-level cascade, so relay forwarding is on the measured path).
    let worker_grid = [scale.worker_grid()[1], scale.worker_grid()[2]];
    let mut table = Table::new(&[
        "neurons",
        "P",
        "off p50",
        "miss p50",
        "hit p50",
        "drop miss",
        "drop hit",
    ]);
    let mut results = Vec::new();
    for &neurons in &scale.neuron_grid() {
        for &workers in &worker_grid {
            let memory_mb = scale.worker_memory_mb(neurons);
            let base_batch = scale.batch().min(64);
            let w = workload_with_batch(scale, neurons, base_batch, SEED);
            let eager = ServiceBuilder::new(w.dnn.clone())
                .config(scale.engine_config(SEED))
                .warm_pool(2, u64::MAX)
                .build();
            let streamed = ServiceBuilder::new(w.dnn.clone())
                .config(scale.engine_config(SEED))
                .weight_streaming(true)
                .warm_pool(2, u64::MAX)
                .build();
            let mut off_us = Vec::with_capacity(SAMPLES);
            let mut miss_us = Vec::with_capacity(SAMPLES);
            let mut hit_us = Vec::with_capacity(SAMPLES);
            for s in 0..SAMPLES {
                // Distinct inputs per sample (same scheme as the warm-pool
                // bench, so the off path reproduces its cold distribution):
                // the deterministic clock would otherwise collapse every
                // percentile onto one value.
                let width = (base_batch / 2 + s * base_batch / (2 * SAMPLES)).max(1);
                let inputs = generate_inputs(neurons, &InputSpec::scaled(width, SEED + s as u64));
                let expected = w.dnn.serial_inference(&inputs);
                let req = InferenceRequest {
                    variant: Variant::Queue,
                    workers,
                    memory_mb,
                    inputs,
                };
                // Stream off: drop the parked tree, full hierarchical
                // cascade with independent weight loads.
                eager.invalidate_warm_trees();
                let off = eager.submit(&req).expect("stream-off cold run");
                assert_eq!(off.launch, LaunchPath::ColdStart);
                assert_eq!(off.first_output(), &expected, "off output wrong");
                off_us.push(off.latency.as_micros());
                // Stream miss: tree AND cache dropped — rank 0 refetches
                // everything and multicasts it.
                streamed.invalidate_warm_trees();
                let miss = streamed.submit(&req).expect("stream-miss cold run");
                assert_eq!(miss.launch, LaunchPath::ColdStart);
                assert_eq!(miss.outputs, off.outputs, "miss output diverged");
                miss_us.push(miss.latency.as_micros());
                // Stream hit: trees evicted, cache kept — the relaunch is
                // still a ColdStart but streams out of memory.
                streamed.evict_warm_trees(Variant::Queue, workers, memory_mb);
                let hit = streamed.submit(&req).expect("stream-hit cold run");
                assert_eq!(hit.launch, LaunchPath::ColdStart);
                assert_eq!(hit.outputs, off.outputs, "hit output diverged");
                hit_us.push(hit.latency.as_micros());
            }
            off_us.sort_unstable();
            miss_us.sort_unstable();
            hit_us.sort_unstable();
            let r = SizeResult {
                neurons,
                workers,
                samples: off_us.len(),
                off_p50_us: percentile(&off_us, 50.0),
                off_p99_us: percentile(&off_us, 99.0),
                miss_p50_us: percentile(&miss_us, 50.0),
                miss_p99_us: percentile(&miss_us, 99.0),
                hit_p50_us: percentile(&hit_us, 50.0),
                hit_p99_us: percentile(&hit_us, 99.0),
            };
            assert!(
                r.miss_p50_us < r.off_p50_us,
                "streaming must beat independent loads (N={neurons}, P={workers}): \
                 miss {} >= off {}",
                r.miss_p50_us,
                r.off_p50_us
            );
            assert!(
                r.hit_p50_us <= r.miss_p50_us,
                "a cached stream must not lose to a fetching one \
                 (N={neurons}, P={workers}): hit {} > miss {}",
                r.hit_p50_us,
                r.miss_p50_us
            );
            assert!(
                r.off_p50_us < r.off_p99_us,
                "varied samples must spread the distribution (N={neurons}, P={workers})"
            );
            table.row(vec![
                neurons.to_string(),
                workers.to_string(),
                format!("{:.1}ms", r.off_p50_us as f64 / 1000.0),
                format!("{:.1}ms", r.miss_p50_us as f64 / 1000.0),
                format!("{:.1}ms", r.hit_p50_us as f64 / 1000.0),
                format!(
                    "{:.1}%",
                    100.0 * (1.0 - r.miss_p50_us as f64 / r.off_p50_us as f64)
                ),
                format!(
                    "{:.1}%",
                    100.0 * (1.0 - r.hit_p50_us as f64 / r.off_p50_us as f64)
                ),
            ]);
            results.push(r);
        }
    }
    table.print(&format!(
        "Cold-start multicast — launch-to-first-output, {SAMPLES} varied samples per path, \
         FSD-Inf-Queue"
    ));

    // The acceptance gate: at the committed warm-pool baseline's shape
    // (reduced scale, workers = 4) the streamed cold start must undercut
    // the recorded eager cold p50 by at least 20%. Without a checked-out
    // baseline (ad-hoc runs outside the repo root) the in-run off p50
    // stands in, which the relative assertions above already cover.
    if scale == Scale::Scaled {
        let baseline = std::fs::read_to_string("bench-baselines/BENCH_warm_pool.json").ok();
        let (base_neurons, base_cold) = match &baseline {
            Some(json) => (
                gate::extract(json, "neurons"),
                gate::extract(json, "cold_p50_us"),
            ),
            None => (Vec::new(), Vec::new()),
        };
        for r in results.iter().filter(|r| r.workers == 4) {
            let committed = base_neurons
                .iter()
                .position(|&n| n == r.neurons as f64)
                .and_then(|i| base_cold.get(i).copied());
            let (reference, source) = match committed {
                Some(v) => (v, "committed"),
                None => (r.off_p50_us as f64, "in-run"),
            };
            let ceiling = 0.8 * reference;
            assert!(
                (r.miss_p50_us as f64) <= ceiling,
                "N={}: streamed cold p50 {}us must drop >=20% below the {} \
                 eager cold p50 {}us",
                r.neurons,
                r.miss_p50_us,
                source,
                reference
            );
            assert!(
                (r.hit_p50_us as f64) <= ceiling,
                "N={}: cached streamed cold p50 {}us must drop >=20% below the {} \
                 eager cold p50 {}us",
                r.neurons,
                r.hit_p50_us,
                source,
                reference
            );
        }
    }

    // Machine-readable emission for the CI bench-regression gate.
    let mut json = String::from("{\n  \"bench\": \"cold_start\",\n  \"samples_per_path\": ");
    let _ = write!(json, "{SAMPLES},\n  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"neurons\": {}, \"workers\": {}, \"samples\": {}, \
             \"off_p50_us\": {}, \"off_p99_us\": {}, \
             \"miss_p50_us\": {}, \"miss_p99_us\": {}, \
             \"hit_p50_us\": {}, \"hit_p99_us\": {}}}{}",
            r.neurons,
            r.workers,
            r.samples,
            r.off_p50_us,
            r.off_p99_us,
            r.miss_p50_us,
            r.miss_p99_us,
            r.hit_p50_us,
            r.hit_p99_us,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_cold_start.json", &json).expect("write BENCH_cold_start.json");
    println!("wrote BENCH_cold_start.json");
}
