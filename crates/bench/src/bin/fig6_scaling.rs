//! Figure 6 — per-sample runtime and cost vs worker parallelism.
//!
//! For each model size and each `P` in the grid, runs FSD-Inf-Queue and
//! FSD-Inf-Object and reports per-sample runtime (ms) and per-sample cost.
//! Expected shape (paper §VI-D): the two channels have similar runtime
//! profiles, while object-storage *cost* grows linearly with `P` and
//! queue cost grows much more slowly — the cost gap widening with
//! parallelism.

use fsd_bench::{engine_for, run_checked, Scale, Table};
use fsd_core::Variant;

fn main() {
    let scale = Scale::from_args();
    for &n in &scale.neuron_grid() {
        let w = fsd_bench::workload(scale, n, 42);
        let mem = scale.worker_memory_mb(n);
        let mut t = Table::new(&[
            "P",
            "Queue ms/sample",
            "Object ms/sample",
            "Queue $/sample",
            "Object $/sample",
        ]);
        let mut queue_costs = Vec::new();
        let mut object_costs = Vec::new();
        for &p in &scale.worker_grid() {
            let engine = engine_for(&w, scale, 42);
            let q = run_checked(&engine, &w, Variant::Queue, p, mem);
            let o = run_checked(&engine, &w, Variant::Object, p, mem);
            t.row(vec![
                p.to_string(),
                format!("{:.3}", q.per_sample_ms()),
                format!("{:.3}", o.per_sample_ms()),
                format!("{:.9}", q.per_sample_cost()),
                format!("{:.9}", o.per_sample_cost()),
            ]);
            queue_costs.push(q.per_sample_cost());
            object_costs.push(o.per_sample_cost());
        }
        t.print(&format!("Figure 6: per-sample runtime and cost, N = {n}"));

        // Shape checks (paper §VI-D): object cost rises with P and ends
        // above queue cost at the highest parallelism; queue cost grows
        // more slowly than object cost.
        let first = 0;
        let last = object_costs.len() - 1;
        assert!(
            object_costs[last] > object_costs[first],
            "N={n}: object cost must grow with P"
        );
        assert!(
            object_costs[last] > queue_costs[last],
            "N={n}: object must be pricier than queue at high P"
        );
        let object_growth = object_costs[last] / object_costs[first];
        let queue_growth = queue_costs[last] / queue_costs[first].max(1e-18);
        println!(
            "Shape check N={n}: cost growth with P — object {object_growth:.2}x vs queue {queue_growth:.2}x"
        );
        assert!(
            object_growth > queue_growth,
            "N={n}: queue cost must grow more slowly with P than object cost"
        );
    }
}
