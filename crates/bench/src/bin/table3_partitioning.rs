//! Table III — hypergraph partitioning (HGP-DNN) vs random partitioning
//! (RP): FSD-Inf-Object communication volumes and per-sample runtime.
//!
//! Paper result (N = 16384, P = 42): HGP reduces the data volume sent
//! between FaaS instances by almost an order of magnitude (3.9 GB vs
//! 36.4 GB; 17 888 vs 86 020 NNZ per target) and per-sample runtime from
//! 27.90 ms to 11.78 ms.

use fsd_bench::{Scale, Table};
use fsd_core::{ServiceBuilder, Variant};
use fsd_partition::PartitionScheme;

fn main() {
    let scale = Scale::from_args();
    // The paper's single configuration: mid-size model, high parallelism.
    let (n, p) = match scale {
        Scale::Scaled => (1024usize, 8u32),
        Scale::Paper => (16384, 42),
    };
    // A larger batch than the default grid: communication volume scales
    // with batch width, and the runtime effect of partition quality only
    // shows when volume (not fixed request latency) carries weight — as at
    // the paper's 10k-sample scale.
    let batch = scale.batch() * 4;
    let w = fsd_bench::workload_with_batch(scale, n, batch, 42);
    let mem = scale.worker_memory_mb(n);

    let mut t = Table::new(&[
        "scheme",
        "data volume sent (B)",
        "NNZ sent per target",
        "per-sample runtime (ms)",
    ]);
    let mut volumes = Vec::new();
    let mut runtimes = Vec::new();
    for (label, scheme) in [
        ("HGP-DNN", PartitionScheme::Hgp),
        ("RP", PartitionScheme::Random),
    ] {
        let mut cfg = scale.engine_config(42);
        cfg.scheme = scheme;
        let engine = ServiceBuilder::new(w.dnn.clone()).config(cfg).build();
        let r = fsd_bench::run_checked(&engine, &w, Variant::Object, p, mem);
        // Volume: bytes shipped between instances (pre-compression, to
        // match the paper's "data volume sent" which counts payload rows).
        let volume = r.client.bytes_precompress;
        // NNZ per target: total activation nonzeros shipped / (P-1 targets
        // per worker) — the paper's per-target average.
        let pairs = (p as u64) * (p as u64 - 1);
        let nnz_per_target = volume / 8 / pairs.max(1); // ≈ 8 wire bytes/nnz
        t.row(vec![
            label.to_string(),
            volume.to_string(),
            nnz_per_target.to_string(),
            format!("{:.3}", r.per_sample_ms()),
        ]);
        volumes.push(volume);
        runtimes.push(r.per_sample_ms());
    }
    t.print(&format!(
        "Table III: HGP-DNN vs RP (N = {n}, P = {p}, FSD-Inf-Object)"
    ));

    let reduction = volumes[1] as f64 / volumes[0] as f64;
    println!("\nVolume reduction: {reduction:.1}x (paper: ~9.3x)");
    println!(
        "Runtime: HGP {:.3} ms vs RP {:.3} ms (paper: 11.78 vs 27.90)",
        runtimes[0], runtimes[1]
    );
    assert!(
        reduction > 3.0,
        "HGP must cut communication volume by a large factor, got {reduction:.2}x"
    );
    assert!(
        runtimes[0] < runtimes[1],
        "HGP runtime {:.3} must beat RP {:.3}",
        runtimes[0],
        runtimes[1]
    );
}
