//! Table I — features of potential inter-worker communication channels.
//!
//! The qualitative design-space comparison behind Section II-D: which cloud
//! service categories satisfy each requirement for fully serverless FaaS
//! IPC. Encoded as data (not prose) so the recommendation logic can be
//! inspected programmatically.

use fsd_bench::Table;

/// Feature support level (✓ / partial / blank in the paper).
#[derive(Clone, Copy, PartialEq)]
enum Support {
    Yes,
    Partial,
    No,
}

impl Support {
    fn cell(self) -> String {
        match self {
            Support::Yes => "yes".to_string(),
            Support::Partial => "partial".to_string(),
            Support::No => "-".to_string(),
        }
    }
}

struct ChannelCategory {
    name: &'static str,
    serverless: Support,
    low_latency_high_thrpt: Support,
    cost_effective: Support,
    flexible_payloads: Support,
    many_producers_consumers: Support,
    service_side_filtering: Support,
    direct_consumer_access: Support,
}

impl ChannelCategory {
    fn suitable(&self) -> bool {
        // The paper selects categories with full support on every column
        // except cost (where partial is tolerable for object storage).
        use Support::{Partial, Yes};
        self.serverless == Yes
            && self.low_latency_high_thrpt == Yes
            && (self.cost_effective == Yes || self.cost_effective == Partial)
            && self.many_producers_consumers == Yes
            && self.service_side_filtering == Yes
            && self.direct_consumer_access == Yes
    }
}

fn categories() -> Vec<ChannelCategory> {
    use Support::{No, Partial, Yes};
    vec![
        ChannelCategory {
            name: "Stream",
            serverless: Partial,
            low_latency_high_thrpt: Yes,
            cost_effective: Partial,
            flexible_payloads: No,
            many_producers_consumers: Partial,
            service_side_filtering: No,
            direct_consumer_access: Yes,
        },
        ChannelCategory {
            name: "Stream (ETL)",
            serverless: Yes,
            low_latency_high_thrpt: Yes,
            cost_effective: Yes,
            flexible_payloads: No,
            many_producers_consumers: Yes,
            service_side_filtering: Yes,
            direct_consumer_access: No,
        },
        ChannelCategory {
            name: "NoSQL",
            serverless: Partial,
            low_latency_high_thrpt: Yes,
            cost_effective: No,
            flexible_payloads: No,
            many_producers_consumers: Yes,
            service_side_filtering: Yes,
            direct_consumer_access: Yes,
        },
        ChannelCategory {
            name: "Pub-Sub",
            serverless: Yes,
            low_latency_high_thrpt: Yes,
            cost_effective: Yes,
            flexible_payloads: No,
            many_producers_consumers: Yes,
            service_side_filtering: Yes,
            direct_consumer_access: No,
        },
        ChannelCategory {
            name: "Queues",
            serverless: Yes,
            low_latency_high_thrpt: Yes,
            cost_effective: Yes,
            flexible_payloads: No,
            many_producers_consumers: Yes,
            service_side_filtering: No,
            direct_consumer_access: Yes,
        },
        ChannelCategory {
            name: "Pub-Sub+Queues",
            serverless: Yes,
            low_latency_high_thrpt: Yes,
            cost_effective: Yes,
            flexible_payloads: No,
            many_producers_consumers: Yes,
            service_side_filtering: Yes,
            direct_consumer_access: Yes,
        },
        ChannelCategory {
            name: "Object Storage",
            serverless: Yes,
            low_latency_high_thrpt: Yes,
            cost_effective: Partial,
            flexible_payloads: Yes,
            many_producers_consumers: Yes,
            service_side_filtering: Yes,
            direct_consumer_access: Yes,
        },
    ]
}

fn main() {
    let mut t = Table::new(&[
        "channel",
        "serverless",
        "lat/thrpt",
        "cost",
        "payloads",
        "many P/C",
        "filtering",
        "direct",
        "suitable",
    ]);
    let cats = categories();
    for c in &cats {
        t.row(vec![
            c.name.to_string(),
            c.serverless.cell(),
            c.low_latency_high_thrpt.cell(),
            c.cost_effective.cell(),
            c.flexible_payloads.cell(),
            c.many_producers_consumers.cell(),
            c.service_side_filtering.cell(),
            c.direct_consumer_access.cell(),
            if c.suitable() { "<-- selected" } else { "" }.to_string(),
        ]);
    }
    t.print("Table I: inter-worker communication channel features");
    let selected: Vec<&str> = cats
        .iter()
        .filter(|c| c.suitable())
        .map(|c| c.name)
        .collect();
    println!("\nSelected categories (as in the paper): {selected:?}");
    assert_eq!(selected, vec!["Pub-Sub+Queues", "Object Storage"]);
}
