//! CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline_dir> <fresh_dir> [--tolerance 0.25]
//! ```
//!
//! Compares the `BENCH_*.json` files a fresh `--release` bench run wrote
//! into `<fresh_dir>` against the committed baselines in
//! `<baseline_dir>`, metric by metric (see [`fsd_bench::gate::GATED`]).
//! Exits non-zero — failing the CI job — if any latency rose, or any hit
//! rate fell, by more than the tolerance (default 25%).

use fsd_bench::gate::{gate_file, report, GATED};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.25f64;
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it.next().expect("--tolerance needs a value");
            tolerance = v.parse().expect("--tolerance must be a number");
        } else {
            dirs.push(arg.clone());
        }
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        eprintln!("usage: bench_gate <baseline_dir> <fresh_dir> [--tolerance 0.25]");
        exit(2);
    };

    let mut checked = 0;
    let mut regressions = Vec::new();
    for &(file, keys) in GATED {
        let baseline_path = Path::new(baseline_dir).join(file);
        let fresh_path = Path::new(fresh_dir).join(file);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        let fresh = std::fs::read_to_string(&fresh_path)
            .unwrap_or_else(|e| panic!("read fresh {}: {e}", fresh_path.display()));
        let (n, r) = gate_file(file, keys, &baseline, &fresh, tolerance);
        checked += n;
        regressions.extend(r);
    }
    print!("{}", report(checked, &regressions, tolerance));
    if !regressions.is_empty() {
        exit(1);
    }
}
