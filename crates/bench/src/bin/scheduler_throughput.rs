//! Scheduler throughput — admission control in front of `FsdService`.
//!
//! Not a paper table: this measures the PR-2 scheduling layer. A seeded
//! bursty trace is pushed through auto-dispatch schedulers at increasing
//! global concurrency caps; real worker trees execute concurrently, so
//! wall-clock throughput rises with the cap until the host saturates. A
//! second run floods the scheduler with large-`P` requests against small
//! bounded queues to show explicit backpressure (rejection rate + retry
//! hints) instead of unbounded buffering. Parts 4 and 5 turn on
//! cross-request continuous batching: the same bursty trace replayed with
//! coalescing (mean latency must beat the non-batched run), then the
//! fleet axis — 10× the requests across four models — where virtual
//! throughput must *rise* with the global cap and per-flow billing must
//! partition each model's global meters exactly.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin scheduler_throughput
//! ```

use fsd_bench::Table;
use fsd_comm::VirtualTime;
use fsd_core::{BatchedRequest, FsdError, FsdService, ServiceBuilder};
use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_sched::{
    harness, trace, Arrival, BatchingConfig, Scheduler, SchedulerBuilder, SchedulerConfig, Ticket,
    DEFAULT_MODEL,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 42;

fn service_builder() -> ServiceBuilder {
    let spec = DnnSpec {
        neurons: 128,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: SEED,
    };
    ServiceBuilder::new(Arc::new(generate_dnn(&spec)))
        .deterministic(SEED)
        .prewarm(1)
        .prewarm(2)
        .prewarm(4)
}

fn fresh_service() -> Arc<FsdService> {
    Arc::new(service_builder().build())
}

/// A service whose warm pool is pre-warmed past the concurrency cap for
/// every distributed shape the bursty trace produces, so each such
/// request is a warm hit.
fn fresh_pooled_service(cap: usize) -> Arc<FsdService> {
    use fsd_core::Variant;
    let mut builder = service_builder().warm_pool(4 * cap, u64::MAX);
    for variant in [Variant::Queue, Variant::Object] {
        for workers in [1u32, 2] {
            for _ in 0..cap {
                builder = builder.prewarm_tree(variant, workers, 1769);
            }
        }
    }
    Arc::new(builder.build())
}

fn request_for(service: &FsdService, a: &Arrival) -> BatchedRequest {
    BatchedRequest {
        variant: a.variant,
        workers: a.workers,
        memory_mb: a.memory_mb,
        batches: vec![generate_inputs(
            service.dnn().spec().neurons,
            &InputSpec::scaled(a.width, a.input_seed),
        )],
    }
}

/// Deterministic virtual makespan of a fleet replay: list-schedule the
/// admission groups (in admission order) over `cap` slots — a group
/// starts at `max(its latest member arrival, earliest slot free)` and
/// occupies its slot for the sum of its members' virtual latencies (a
/// coalesced pass runs its members back to back on one resident tree).
/// A pure function of the replay report, so the derived throughput is
/// gateable.
fn virtual_makespan_us(report: &harness::FleetReplayReport, cap: usize) -> u64 {
    let by_seq: HashMap<u64, (u64, u64)> = report
        .outcomes
        .iter()
        .map(|o| {
            let latency = o.result.as_ref().map_or(0, |d| d.latency_us);
            (o.seq, (o.arrival_us, latency))
        })
        .collect();
    let mut slots = vec![0u64; cap.max(1)];
    let mut makespan = 0u64;
    for group in &report.admission_groups {
        let ready = group.iter().map(|s| by_seq[s].0).max().unwrap_or(0);
        let duration: u64 = group.iter().map(|s| by_seq[s].1).sum();
        let slot = slots.iter_mut().min().expect("cap >= 1 slot");
        let start = (*slot).max(ready);
        *slot = start + duration;
        makespan = makespan.max(*slot);
    }
    makespan
}

struct RunResult {
    accepted: usize,
    rejected: usize,
    wall_ms: f64,
    max_inflight: usize,
    mean_virtual_latency: VirtualTime,
    last_retry_hint: VirtualTime,
    warm_hits: u64,
    cold_starts: u64,
}

/// Enqueues the whole trace (auto dispatch), waits every ticket, and
/// reports wall-clock + scheduler statistics.
fn drive(sched: &Scheduler, service: &FsdService, arrivals: &[Arrival]) -> RunResult {
    let started = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(arrivals.len());
    let mut rejected = 0usize;
    let mut last_retry_hint = VirtualTime::ZERO;
    for a in arrivals {
        match sched.enqueue_default(a.priority, request_for(service, a)) {
            Ok(t) => tickets.push(t),
            Err(FsdError::Overloaded { retry_after }) => {
                rejected += 1;
                last_retry_hint = retry_after;
            }
            Err(e) => panic!("enqueue failed: {e}"),
        }
    }
    let accepted = tickets.len();
    let mut total_latency_us = 0u64;
    for t in tickets {
        let report = t.wait().expect("scheduled request runs");
        total_latency_us += report.latency.as_micros();
    }
    sched.shutdown();
    sched.drain();
    let stats = sched.stats();
    RunResult {
        accepted,
        rejected,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        max_inflight: stats.max_inflight,
        mean_virtual_latency: VirtualTime::from_micros(total_latency_us / accepted.max(1) as u64),
        last_retry_hint,
        warm_hits: stats.warm_hits,
        cold_starts: stats.cold_starts,
    }
}

fn main() {
    // Virtual-time metrics are deterministic (per-request private
    // timelines, seeded jitter) and feed the CI bench-regression gate;
    // wall-clock numbers are printed but never emitted.
    let mut cap_rows: Vec<(usize, u64)> = Vec::new();
    let mut pool_rows: Vec<(&str, u64, u64, u64)> = Vec::new();

    // Part 1: throughput vs global concurrency cap on a bursty trace.
    let arrivals = trace::bursty(4, 8, 400_000, SEED);
    let mut t = Table::new(&[
        "global cap",
        "accepted",
        "wall ms",
        "req/s (wall)",
        "max in-flight",
        "mean virt latency",
    ]);
    for cap in [1usize, 2, 4, 8] {
        let service = fresh_service();
        let sched = Scheduler::wrap(
            service.clone(),
            SchedulerConfig::default()
                .global_cap(cap)
                .queue_capacity(256),
        );
        let r = drive(&sched, &service, &arrivals);
        assert_eq!(r.rejected, 0, "generous queues must not reject");
        cap_rows.push((cap, r.mean_virtual_latency.as_micros()));
        t.row(vec![
            cap.to_string(),
            r.accepted.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.1}", r.accepted as f64 / (r.wall_ms / 1000.0)),
            r.max_inflight.to_string(),
            r.mean_virtual_latency.to_string(),
        ]);
    }
    t.print(&format!(
        "Scheduler throughput — bursty trace ({} requests), queue_capacity=256",
        arrivals.len(),
    ));

    // Part 2: backpressure under a large-P flood with small bounded queues.
    let flood = trace::flood(48, 4, SEED);
    let mut t = Table::new(&[
        "queue cap",
        "accepted",
        "rejected",
        "rejection %",
        "retry hint",
        "wall ms",
    ]);
    for queue_cap in [4usize, 8, 16] {
        let service = fresh_service();
        let sched = Scheduler::wrap(
            service.clone(),
            SchedulerConfig::default()
                .global_cap(4)
                .queue_capacity(queue_cap),
        );
        let r = drive(&sched, &service, &flood);
        t.row(vec![
            queue_cap.to_string(),
            r.accepted.to_string(),
            r.rejected.to_string(),
            format!("{:.0}%", 100.0 * r.rejected as f64 / flood.len() as f64),
            r.last_retry_hint.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    t.print(&format!(
        "Backpressure — large-P flood ({} simultaneous requests), global_cap=4",
        flood.len(),
    ));

    // Part 3: the same bursty trace with the warm-tree pool pre-warmed —
    // distributed requests skip cold start + launch rounds entirely.
    let cap = 4usize;
    let mut t = Table::new(&[
        "pool",
        "warm hits",
        "cold starts",
        "mean virt latency",
        "wall ms",
    ]);
    for pooled in [false, true] {
        let service = if pooled {
            fresh_pooled_service(cap)
        } else {
            fresh_service()
        };
        let sched = Scheduler::wrap(
            service.clone(),
            SchedulerConfig::default()
                .global_cap(cap)
                .queue_capacity(256),
        );
        let r = drive(&sched, &service, &arrivals);
        assert_eq!(r.rejected, 0, "generous queues must not reject");
        pool_rows.push((
            if pooled { "warm" } else { "off" },
            r.warm_hits,
            r.cold_starts,
            r.mean_virtual_latency.as_micros(),
        ));
        t.row(vec![
            if pooled { "warm" } else { "off" }.to_string(),
            r.warm_hits.to_string(),
            r.cold_starts.to_string(),
            r.mean_virtual_latency.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    t.print(&format!(
        "Warm pool — bursty trace ({} requests), global_cap={cap}: \
         warm hits skip coordinator cold start and all launch rounds",
        arrivals.len(),
    ));

    // Part 4: continuous batching on the same bursty trace — a manual,
    // deterministic replay that coalesces compatible burst members into
    // shared tree passes, so every follower lands warm on its coalition's
    // resident tree without any pre-warmed pool.
    let started = Instant::now();
    let service = fresh_service();
    let sched = Scheduler::wrap(
        service.clone(),
        SchedulerConfig::default()
            .global_cap(cap)
            .queue_capacity(256)
            .manual()
            .batched(BatchingConfig::default()),
    );
    let report = harness::replay(&sched, DEFAULT_MODEL, &arrivals);
    assert!(
        report.rejected.is_empty(),
        "generous queues must not reject"
    );
    let total_batched_us: u64 = report
        .outcomes
        .iter()
        .map(|o| {
            o.result
                .as_ref()
                .expect("batched replay request runs")
                .latency_us
        })
        .sum();
    let batched_mean_us = total_batched_us / report.outcomes.len().max(1) as u64;
    let batched_stats = report.stats.clone();
    assert!(
        batched_stats.coalesced > 0,
        "the bursty trace must form at least one coalition"
    );
    let unbatched_mean_us = cap_rows
        .iter()
        .find(|(c, _)| *c == cap)
        .expect("cap row from part 1")
        .1;
    assert!(
        batched_mean_us <= unbatched_mean_us,
        "batched bursty mean {batched_mean_us}us must not exceed the \
         non-batched {unbatched_mean_us}us"
    );
    let mut t = Table::new(&[
        "mode",
        "coalitions",
        "coalesced reqs",
        "mean virt latency",
        "wall ms",
    ]);
    t.row(vec![
        "off".to_string(),
        "0".to_string(),
        "0".to_string(),
        VirtualTime::from_micros(unbatched_mean_us).to_string(),
        "(part 1)".to_string(),
    ]);
    t.row(vec![
        "batched".to_string(),
        batched_stats.coalitions.to_string(),
        batched_stats.coalesced.to_string(),
        VirtualTime::from_micros(batched_mean_us).to_string(),
        format!("{:.1}", started.elapsed().as_secs_f64() * 1000.0),
    ]);
    t.print(&format!(
        "Continuous batching — bursty trace ({} requests), global_cap={cap}: \
         coalition followers run warm on the shared tree pass",
        arrivals.len(),
    ));

    // Part 5: the fleet axis — four models, 10× the request count, caps
    // swept with batching ON. The old per-request bottleneck made mean
    // latency flat in the cap; with coalesced passes the deterministic
    // virtual throughput must now RISE with every cap step. Also asserts
    // billing disjointness: each model's global meters must equal the sum
    // of its per-flow (per-request) reports even under coalesced passes.
    const FLEET_MODELS: usize = 4;
    let fleet_trace = trace::fleet(FLEET_MODELS, 10, 8, 400_000, SEED);
    let fleet_names: Vec<String> = (0..FLEET_MODELS).map(|m| format!("m{m}")).collect();
    let mut fleet_rows: Vec<(usize, usize, u64, f64)> = Vec::new();
    let mut t = Table::new(&[
        "global cap",
        "accepted",
        "coalitions",
        "virt makespan",
        "req/s (virtual)",
        "wall ms",
    ]);
    for cap in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let mut builder = SchedulerBuilder::new(
            SchedulerConfig::default()
                .global_cap(cap)
                .queue_capacity(512)
                .manual()
                .batched(BatchingConfig::default()),
        );
        let mut services = Vec::new();
        for (m, name) in fleet_names.iter().enumerate() {
            let spec = DnnSpec {
                neurons: 64,
                layers: 2,
                nnz_per_row: 8,
                bias: -0.25,
                clip: 32.0,
                seed: SEED + m as u64,
            };
            let service = Arc::new(
                ServiceBuilder::new(Arc::new(generate_dnn(&spec)))
                    .deterministic(SEED + m as u64)
                    .warm_pool(16, u64::MAX)
                    .build(),
            );
            services.push(service.clone());
            builder = builder.model(name, service);
        }
        let sched = builder.build();
        let names: Vec<&str> = fleet_names.iter().map(String::as_str).collect();
        let report = harness::replay_fleet(&sched, &names, &fleet_trace);
        assert!(report.rejected.is_empty(), "fleet queues must not reject");
        assert_eq!(report.outcomes.len(), fleet_trace.len());

        // Billing disjointness: the coalesced passes meter each member
        // under its own flow id, so summing the per-request digests must
        // reproduce each model's global comm + Lambda meters exactly.
        for (m, service) in services.iter().enumerate() {
            let mut sqs = 0u64;
            let mut sns = 0u64;
            let mut s3_get = 0u64;
            let mut s3_put = 0u64;
            let mut invocations = 0u64;
            for o in report.outcomes.iter().filter(|o| o.model == m) {
                let d = o.result.as_ref().expect("fleet request runs");
                sqs += d.sqs_api_calls;
                sns += d.sns_publish_requests;
                s3_get += d.s3_get_requests;
                s3_put += d.s3_put_requests;
                invocations += d.invocations;
            }
            let global = service.env().meter().snapshot();
            assert_eq!(
                (sqs, sns, s3_get, s3_put),
                (
                    global.sqs_api_calls,
                    global.sns_publish_requests,
                    global.s3_get_requests,
                    global.s3_put_requests,
                ),
                "model {m}: per-flow comm billing must partition the global meter"
            );
            assert_eq!(
                invocations,
                service.platform().lambda_meter().snapshot().invocations,
                "model {m}: per-flow invocations must partition the global meter"
            );
            assert_eq!(
                service.env().meter().tracked_flows(),
                0,
                "model {m}: leaked comm flows"
            );
        }

        let makespan_us = virtual_makespan_us(&report, cap);
        let throughput =
            report.outcomes.len() as f64 / (makespan_us as f64 / 1_000_000.0).max(f64::EPSILON);
        fleet_rows.push((cap, report.outcomes.len(), makespan_us, throughput));
        t.row(vec![
            cap.to_string(),
            report.outcomes.len().to_string(),
            report.stats.coalitions.to_string(),
            VirtualTime::from_micros(makespan_us).to_string(),
            format!("{throughput:.2}"),
            format!("{:.1}", started.elapsed().as_secs_f64() * 1000.0),
        ]);
    }
    t.print(&format!(
        "Fleet scale — {} requests across {FLEET_MODELS} models, continuous \
         batching on: virtual throughput rises with the global cap",
        fleet_trace.len(),
    ));
    for pair in fleet_rows.windows(2) {
        assert!(
            pair[1].3 > pair[0].3,
            "fleet throughput must strictly rise with the cap: \
             cap {} gave {:.2} req/s, cap {} gave {:.2} req/s",
            pair[0].0,
            pair[0].3,
            pair[1].0,
            pair[1].3,
        );
    }

    // Machine-readable emission for the CI bench-regression gate —
    // deterministic virtual-time metrics only.
    let mut json = String::from("{\n  \"bench\": \"scheduler_throughput\",\n  \"caps\": [\n");
    for (i, (cap, mean_us)) in cap_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"global_cap\": {cap}, \"bursty_mean_latency_us\": {mean_us}}}{}",
            if i + 1 < cap_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"pool\": [\n");
    for (i, (mode, warm_hits, cold_starts, mean_us)) in pool_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{mode}\", \"warm_hits\": {warm_hits}, \
             \"cold_starts\": {cold_starts}, \"bursty_mean_latency_us\": {mean_us}}}{}",
            if i + 1 < pool_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"batched\": [\n");
    let _ = writeln!(
        json,
        "    {{\"mode\": \"batched\", \"coalitions\": {}, \"coalesced\": {}, \
         \"bursty_mean_latency_us\": {batched_mean_us}}}",
        batched_stats.coalitions, batched_stats.coalesced,
    );
    json.push_str("  ],\n  \"fleet\": [\n");
    for (i, (fleet_cap, accepted, makespan_us, throughput)) in fleet_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"global_cap\": {fleet_cap}, \"accepted\": {accepted}, \
             \"fleet_makespan_us\": {makespan_us}, \
             \"fleet_throughput_rps\": {throughput:.2}}}{}",
            if i + 1 < fleet_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scheduler_throughput.json", &json)
        .expect("write BENCH_scheduler_throughput.json");
    println!("wrote BENCH_scheduler_throughput.json");
}
