//! Scheduler throughput — admission control in front of `FsdService`.
//!
//! Not a paper table: this measures the PR-2 scheduling layer. A seeded
//! bursty trace is pushed through auto-dispatch schedulers at increasing
//! global concurrency caps; real worker trees execute concurrently, so
//! wall-clock throughput rises with the cap until the host saturates. A
//! second run floods the scheduler with large-`P` requests against small
//! bounded queues to show explicit backpressure (rejection rate + retry
//! hints) instead of unbounded buffering.
//!
//! ```text
//! cargo run --release -p fsd-bench --bin scheduler_throughput
//! ```

use fsd_bench::Table;
use fsd_comm::VirtualTime;
use fsd_core::{BatchedRequest, FsdError, FsdService, ServiceBuilder};
use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_sched::{trace, Arrival, Scheduler, SchedulerConfig, Ticket};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 42;

fn service_builder() -> ServiceBuilder {
    let spec = DnnSpec {
        neurons: 128,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: SEED,
    };
    ServiceBuilder::new(Arc::new(generate_dnn(&spec)))
        .deterministic(SEED)
        .prewarm(1)
        .prewarm(2)
        .prewarm(4)
}

fn fresh_service() -> Arc<FsdService> {
    Arc::new(service_builder().build())
}

/// A service whose warm pool is pre-warmed past the concurrency cap for
/// every distributed shape the bursty trace produces, so each such
/// request is a warm hit.
fn fresh_pooled_service(cap: usize) -> Arc<FsdService> {
    use fsd_core::Variant;
    let mut builder = service_builder().warm_pool(4 * cap, u64::MAX);
    for variant in [Variant::Queue, Variant::Object] {
        for workers in [1u32, 2] {
            for _ in 0..cap {
                builder = builder.prewarm_tree(variant, workers, 1769);
            }
        }
    }
    Arc::new(builder.build())
}

fn request_for(service: &FsdService, a: &Arrival) -> BatchedRequest {
    BatchedRequest {
        variant: a.variant,
        workers: a.workers,
        memory_mb: a.memory_mb,
        batches: vec![generate_inputs(
            service.dnn().spec().neurons,
            &InputSpec::scaled(a.width, a.input_seed),
        )],
    }
}

struct RunResult {
    accepted: usize,
    rejected: usize,
    wall_ms: f64,
    max_inflight: usize,
    mean_virtual_latency: VirtualTime,
    last_retry_hint: VirtualTime,
    warm_hits: u64,
    cold_starts: u64,
}

/// Enqueues the whole trace (auto dispatch), waits every ticket, and
/// reports wall-clock + scheduler statistics.
fn drive(sched: &Scheduler, service: &FsdService, arrivals: &[Arrival]) -> RunResult {
    let started = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(arrivals.len());
    let mut rejected = 0usize;
    let mut last_retry_hint = VirtualTime::ZERO;
    for a in arrivals {
        match sched.enqueue_default(a.priority, request_for(service, a)) {
            Ok(t) => tickets.push(t),
            Err(FsdError::Overloaded { retry_after }) => {
                rejected += 1;
                last_retry_hint = retry_after;
            }
            Err(e) => panic!("enqueue failed: {e}"),
        }
    }
    let accepted = tickets.len();
    let mut total_latency_us = 0u64;
    for t in tickets {
        let report = t.wait().expect("scheduled request runs");
        total_latency_us += report.latency.as_micros();
    }
    sched.shutdown();
    sched.drain();
    let stats = sched.stats();
    RunResult {
        accepted,
        rejected,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        max_inflight: stats.max_inflight,
        mean_virtual_latency: VirtualTime::from_micros(total_latency_us / accepted.max(1) as u64),
        last_retry_hint,
        warm_hits: stats.warm_hits,
        cold_starts: stats.cold_starts,
    }
}

fn main() {
    // Virtual-time metrics are deterministic (per-request private
    // timelines, seeded jitter) and feed the CI bench-regression gate;
    // wall-clock numbers are printed but never emitted.
    let mut cap_rows: Vec<(usize, u64)> = Vec::new();
    let mut pool_rows: Vec<(&str, u64, u64, u64)> = Vec::new();

    // Part 1: throughput vs global concurrency cap on a bursty trace.
    let arrivals = trace::bursty(4, 8, 400_000, SEED);
    let mut t = Table::new(&[
        "global cap",
        "accepted",
        "wall ms",
        "req/s (wall)",
        "max in-flight",
        "mean virt latency",
    ]);
    for cap in [1usize, 2, 4, 8] {
        let service = fresh_service();
        let sched = Scheduler::wrap(
            service.clone(),
            SchedulerConfig::default()
                .global_cap(cap)
                .queue_capacity(256),
        );
        let r = drive(&sched, &service, &arrivals);
        assert_eq!(r.rejected, 0, "generous queues must not reject");
        cap_rows.push((cap, r.mean_virtual_latency.as_micros()));
        t.row(vec![
            cap.to_string(),
            r.accepted.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.1}", r.accepted as f64 / (r.wall_ms / 1000.0)),
            r.max_inflight.to_string(),
            r.mean_virtual_latency.to_string(),
        ]);
    }
    t.print(&format!(
        "Scheduler throughput — bursty trace ({} requests), queue_capacity=256",
        arrivals.len(),
    ));

    // Part 2: backpressure under a large-P flood with small bounded queues.
    let flood = trace::flood(48, 4, SEED);
    let mut t = Table::new(&[
        "queue cap",
        "accepted",
        "rejected",
        "rejection %",
        "retry hint",
        "wall ms",
    ]);
    for queue_cap in [4usize, 8, 16] {
        let service = fresh_service();
        let sched = Scheduler::wrap(
            service.clone(),
            SchedulerConfig::default()
                .global_cap(4)
                .queue_capacity(queue_cap),
        );
        let r = drive(&sched, &service, &flood);
        t.row(vec![
            queue_cap.to_string(),
            r.accepted.to_string(),
            r.rejected.to_string(),
            format!("{:.0}%", 100.0 * r.rejected as f64 / flood.len() as f64),
            r.last_retry_hint.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    t.print(&format!(
        "Backpressure — large-P flood ({} simultaneous requests), global_cap=4",
        flood.len(),
    ));

    // Part 3: the same bursty trace with the warm-tree pool pre-warmed —
    // distributed requests skip cold start + launch rounds entirely.
    let cap = 4usize;
    let mut t = Table::new(&[
        "pool",
        "warm hits",
        "cold starts",
        "mean virt latency",
        "wall ms",
    ]);
    for pooled in [false, true] {
        let service = if pooled {
            fresh_pooled_service(cap)
        } else {
            fresh_service()
        };
        let sched = Scheduler::wrap(
            service.clone(),
            SchedulerConfig::default()
                .global_cap(cap)
                .queue_capacity(256),
        );
        let r = drive(&sched, &service, &arrivals);
        assert_eq!(r.rejected, 0, "generous queues must not reject");
        pool_rows.push((
            if pooled { "warm" } else { "off" },
            r.warm_hits,
            r.cold_starts,
            r.mean_virtual_latency.as_micros(),
        ));
        t.row(vec![
            if pooled { "warm" } else { "off" }.to_string(),
            r.warm_hits.to_string(),
            r.cold_starts.to_string(),
            r.mean_virtual_latency.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    t.print(&format!(
        "Warm pool — bursty trace ({} requests), global_cap={cap}: \
         warm hits skip coordinator cold start and all launch rounds",
        arrivals.len(),
    ));

    // Machine-readable emission for the CI bench-regression gate —
    // deterministic virtual-time metrics only.
    let mut json = String::from("{\n  \"bench\": \"scheduler_throughput\",\n  \"caps\": [\n");
    for (i, (cap, mean_us)) in cap_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"global_cap\": {cap}, \"bursty_mean_latency_us\": {mean_us}}}{}",
            if i + 1 < cap_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"pool\": [\n");
    for (i, (mode, warm_hits, cold_starts, mean_us)) in pool_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{mode}\", \"warm_hits\": {warm_hits}, \
             \"cold_starts\": {cold_starts}, \"bursty_mean_latency_us\": {mean_us}}}{}",
            if i + 1 < pool_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scheduler_throughput.json", &json)
        .expect("write BENCH_scheduler_throughput.json");
    println!("wrote BENCH_scheduler_throughput.json");
}
