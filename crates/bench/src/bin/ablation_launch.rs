//! Ablation: hierarchical launch tree vs flatter/deeper alternatives.
//!
//! The paper's `worker_invoke_children` populates `P` instances in
//! `O(log_b P)` invocation rounds and "reduces the launch time for the
//! fully populated instance tree, compared to a centralized single-loop
//! launch or a two-level launch loop as used in Lambada". Here: branching
//! factor 1 is a chain (worst case, `P` rounds), large branching is the
//! centralized loop (root pays every invoke round trip serially), and
//! moderate branching is the paper's tree. The metric is the time until
//! the *last* worker has started (tree fully populated).

use fsd_bench::{Scale, Table};
use fsd_core::{ServiceBuilder, Variant};

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Scaled => 1024usize,
        Scale::Paper => 16384,
    };
    let p = *scale.worker_grid().last().expect("non-empty");
    let w = fsd_bench::workload_with_batch(scale, n, 32, 42);
    let mem = scale.worker_memory_mb(n);

    let mut t = Table::new(&[
        "branching",
        "launch rounds",
        "last start (ms)",
        "latency (ms)",
    ]);
    let mut last_starts = Vec::new();
    for branching in [1usize, 2, 4, p as usize] {
        let mut cfg = scale.engine_config(42);
        cfg.branching = branching;
        let engine = ServiceBuilder::new(w.dnn.clone()).config(cfg).build();
        let r = fsd_bench::run_checked(&engine, &w, Variant::Object, p, mem);
        let last_start = r
            .per_worker
            .iter()
            .map(|wr| wr.started)
            .max()
            .expect("workers exist")
            .as_millis_f64();
        let rounds = fsd_faas::launch::launch_rounds(p as usize, branching);
        t.row(vec![
            if branching == p as usize {
                format!("{branching} (central loop)")
            } else {
                branching.to_string()
            },
            rounds.to_string(),
            format!("{last_start:.1}"),
            format!("{:.1}", r.latency.as_millis_f64()),
        ]);
        last_starts.push((branching, last_start));
    }
    t.print(&format!(
        "Ablation: launch tree branching (N = {n}, P = {p})"
    ));

    let chain = last_starts[0].1;
    let tree = last_starts[2].1; // branching 4
    println!(
        "\nShape check: tree launch (b=4) populates in {tree:.0} ms vs {chain:.0} ms for a chain"
    );
    assert!(
        tree < chain,
        "the hierarchical tree must beat the chain launch"
    );
}
