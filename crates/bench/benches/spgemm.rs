//! Microbench: the distributed MVP/MMP kernel (Gustavson-style scatter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_sparse::{ColMajorBlock, LayerAccumulator};

fn bench_spgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("spgemm_accumulate");
    for &n in &[512usize, 2048] {
        let spec = DnnSpec {
            neurons: n,
            layers: 1,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 1,
        };
        let dnn = generate_dnn(&spec);
        let inputs = generate_inputs(n, &InputSpec::scaled(64, 1));
        let all: Vec<u32> = (0..n as u32).collect();
        let block = ColMajorBlock::from_layer(dnn.layer(0), &all);
        g.throughput(Throughput::Elements(block.matched_work(&inputs)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut acc = LayerAccumulator::new(n, 64);
            b.iter(|| {
                acc.reset(n);
                acc.accumulate(&block, &inputs)
            });
        });
    }
    g.finish();
}

fn bench_finalize(c: &mut Criterion) {
    let n = 2048usize;
    let spec = DnnSpec {
        neurons: n,
        layers: 1,
        nnz_per_row: 8,
        bias: -0.3,
        clip: 32.0,
        seed: 1,
    };
    let dnn = generate_dnn(&spec);
    let inputs = generate_inputs(n, &InputSpec::scaled(64, 1));
    let all: Vec<u32> = (0..n as u32).collect();
    let block = ColMajorBlock::from_layer(dnn.layer(0), &all);
    let mut acc = LayerAccumulator::new(n, 64);
    acc.accumulate(&block, &inputs);
    c.bench_function("relu_bias_clip_finalize", |b| {
        b.iter(|| acc.finalize(&all, -0.3, 32.0))
    });
}

criterion_group!(benches, bench_spgemm, bench_finalize);
criterion_main!(benches);
