//! Microbench: multilevel hypergraph partitioning (offline step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsd_model::{generate_dnn, DnnSpec};
use fsd_partition::{partition_hypergraph, HgpConfig, Hypergraph};

fn bench_hgp(c: &mut Criterion) {
    let mut g = c.benchmark_group("hypergraph_partitioning");
    g.sample_size(10);
    for &n in &[512usize, 1024] {
        let spec = DnnSpec {
            neurons: n,
            layers: 4,
            nnz_per_row: 8,
            bias: -0.3,
            clip: 32.0,
            seed: 1,
        };
        let dnn = generate_dnn(&spec);
        let h = Hypergraph::from_dnn(&dnn);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| partition_hypergraph(&h, &HgpConfig::new(8, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hgp);
criterion_main!(benches);
