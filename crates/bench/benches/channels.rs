//! Microbench: channel send/receive round trips (simulated services).

use criterion::{criterion_group, criterion_main, Criterion};
use fsd_comm::{CloudConfig, CloudEnv, VirtualTime};
use fsd_core::{ChannelOptions, FsiChannel, ObjectChannel, QueueChannel, RecvTracker, Tag};
use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};
use fsd_model::{generate_inputs, InputSpec};

fn roundtrip(c: &mut Criterion) {
    let block = generate_inputs(1024, &InputSpec::scaled(64, 3));
    let mut g = c.benchmark_group("channel_roundtrip");
    g.sample_size(20);
    g.bench_function("queue", |b| {
        b.iter(|| {
            let env = CloudEnv::new(CloudConfig::deterministic(1));
            let ch = QueueChannel::setup(env.clone(), 2, ChannelOptions::default());
            let platform = FaasPlatform::new(env, ComputeModel::default());
            let ch2 = ch.clone();
            let send_block = block.clone();
            let s = platform.invoke(
                FunctionConfig::worker("s", 1769),
                VirtualTime::ZERO,
                move |ctx| ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, send_block)]),
            );
            let r = platform.invoke(
                FunctionConfig::worker("r", 1769),
                VirtualTime::ZERO,
                move |ctx| {
                    let mut t = RecvTracker::expecting([0u32]);
                    ch.receive_all(ctx, Tag::Layer(0), 1, &mut t)
                },
            );
            s.join().expect("send ok");
            r.join().expect("recv ok").0.len()
        })
    });
    g.bench_function("object", |b| {
        b.iter(|| {
            let env = CloudEnv::new(CloudConfig::deterministic(1));
            let ch = ObjectChannel::setup(env.clone(), 2, ChannelOptions::default());
            let platform = FaasPlatform::new(env, ComputeModel::default());
            let ch2 = ch.clone();
            let send_block = block.clone();
            let s = platform.invoke(
                FunctionConfig::worker("s", 1769),
                VirtualTime::ZERO,
                move |ctx| ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, send_block)]),
            );
            let r = platform.invoke(
                FunctionConfig::worker("r", 1769),
                VirtualTime::ZERO,
                move |ctx| {
                    let mut t = RecvTracker::expecting([0u32]);
                    ch.receive_all(ctx, Tag::Layer(0), 1, &mut t)
                },
            );
            s.join().expect("send ok");
            r.join().expect("recv ok").0.len()
        })
    });
    g.finish();
}

criterion_group!(benches, roundtrip);
criterion_main!(benches);
