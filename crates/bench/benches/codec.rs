//! Microbench: wire codec and the LZ-style compressor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fsd_model::{generate_inputs, InputSpec};
use fsd_sparse::{codec, compress};

fn bench_codec(c: &mut Criterion) {
    let block = generate_inputs(4096, &InputSpec::scaled(256, 7));
    let encoded = codec::encode(&block);
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| b.iter(|| codec::encode(&block)));
    g.bench_function("decode", |b| {
        b.iter(|| codec::decode(&encoded).expect("ok"))
    });
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let block = generate_inputs(4096, &InputSpec::scaled(256, 7));
    let encoded = codec::encode(&block);
    let compressed = compress::compress(&encoded);
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("compress", |b| b.iter(|| compress::compress(&encoded)));
    g.bench_function("decompress", |b| {
        b.iter(|| compress::decompress(&compressed).expect("ok"))
    });
    g.finish();
    println!(
        "payload {} B -> {} B ({:.2}x)",
        encoded.len(),
        compressed.len(),
        encoded.len() as f64 / compressed.len() as f64
    );
}

criterion_group!(benches, bench_codec, bench_compress);
criterion_main!(benches);
