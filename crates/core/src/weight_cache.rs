//! The service-wide weight-block cache behind cold-start streaming.
//!
//! Every artifact object a streamed cold launch fetches from object
//! storage lands here, keyed by its full object key
//! (`{model}/p{P}/w{m}/…`), so pool growth and repeated cold starts of
//! the same shape skip the GETs entirely: a cached block is resident
//! process memory, delivered with zero transfer latency and zero billing
//! (decode work is still charged, so outputs and work totals stay
//! bit-identical to an independent load). The cache is consulted **only
//! by streaming-mode loads** — with `EngineConfig::stream_weights` off,
//! nothing reads or writes it, which keeps the committed non-streaming
//! baselines bit-stable.
//!
//! Invalidation is generation-tagged: [`WeightCache::retire_generation`]
//! bumps the live generation (every resident block becomes stale and
//! invisible to lookups, and in-flight loads that started under the old
//! generation can no longer insert), and [`WeightCache::purge_stale`]
//! sweeps the stale blocks out. [`WeightCache::invalidate`] does both,
//! and `FsdService::invalidate_warm_trees` wires it to the warm-pool
//! generation bump — re-staged model weights must never be served from a
//! stale cache, exactly as they must never be served by a stale warm
//! tree. A retire *without* a purge leaves stale blocks resident; the
//! residue audit ([`WeightCache::residue_report`]) flags them as leaks.

use fsd_faas::lockorder::{self, rank};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The generation-tagged block map. Generation lives under the same lock
/// as the blocks so an insert can never race an invalidation: a tag is
/// compared and the map mutated in one critical section.
struct BlockMap {
    generation: u64,
    blocks: HashMap<String, CachedBlock>,
}

struct CachedBlock {
    body: Arc<[u8]>,
    generation: u64,
}

/// Counter snapshot of one [`WeightCache`] (diagnostics/tests/benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightCacheStats {
    /// Lookups served from a live (current-generation) block.
    pub hits: u64,
    /// Lookups that found nothing live.
    pub misses: u64,
    /// Blocks accepted by [`WeightCache::insert_block`].
    pub inserts: u64,
    /// Inserts rejected because their load began under a generation that
    /// was retired mid-load.
    pub stale_rejected: u64,
    /// Blocks removed by [`WeightCache::evict_block`] or a stale sweep.
    pub evicted: u64,
}

/// Process-wide shared weight-block cache (see the module docs).
pub struct WeightCache {
    map: Mutex<BlockMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    stale_rejected: AtomicU64,
    evicted: AtomicU64,
}

impl Default for WeightCache {
    fn default() -> Self {
        WeightCache::new()
    }
}

impl WeightCache {
    /// An empty cache at generation 0.
    pub fn new() -> WeightCache {
        WeightCache {
            map: Mutex::new(BlockMap {
                generation: 0,
                blocks: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            stale_rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> (lockorder::OrderToken, parking_lot::MutexGuard<'_, BlockMap>) {
        (
            lockorder::acquire(rank::WEIGHT_CACHE, "weight.cache"),
            self.map.lock(),
        )
    }

    /// The live generation. Loads capture it once at load start and pass
    /// it back to [`WeightCache::insert_block`], so a load that straddles
    /// an invalidation can never repopulate the cache with blocks fetched
    /// for retired artifacts.
    pub fn generation(&self) -> u64 {
        let (_ord, map) = self.lock();
        map.generation
    }

    /// Looks `key` up, returning the block only if it is live (tagged with
    /// the current generation). Counts a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<Arc<[u8]>> {
        let (_ord, map) = self.lock();
        match map.blocks.get(key) {
            Some(block) if block.generation == map.generation => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(block.body.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a fetched block under the generation its load captured at
    /// start. Returns `false` (and drops the block) when that generation
    /// has since been retired — the concurrent-invalidation case.
    pub fn insert_block(&self, key: &str, body: Arc<[u8]>, generation: u64) -> bool {
        let (_ord, mut map) = self.lock();
        if generation != map.generation {
            self.stale_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        map.blocks
            .insert(key.to_string(), CachedBlock { body, generation });
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Evicts one block regardless of generation (teardown twin of
    /// [`WeightCache::insert_block`]). Returns whether a block was
    /// resident.
    pub fn evict_block(&self, key: &str) -> bool {
        let (_ord, mut map) = self.lock();
        let existed = map.blocks.remove(key).is_some();
        if existed {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Bumps the live generation: every resident block becomes stale
    /// (invisible to lookups) and every in-flight load loses its insert
    /// rights. Callers must follow with [`WeightCache::purge_stale`] —
    /// the two are split so the residue audit can detect a retire whose
    /// sweep was forgotten. Returns the new generation.
    pub fn retire_generation(&self) -> u64 {
        let (_ord, mut map) = self.lock();
        map.generation += 1;
        map.generation
    }

    /// Sweeps out every stale block. Returns how many were dropped.
    pub fn purge_stale(&self) -> usize {
        let (_ord, mut map) = self.lock();
        let generation = map.generation;
        let before = map.blocks.len();
        map.blocks.retain(|_, b| b.generation == generation);
        let dropped = before - map.blocks.len();
        self.evicted.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Full invalidation: retire the generation, then sweep. Returns how
    /// many blocks were dropped.
    pub fn invalidate(&self) -> usize {
        self.retire_generation();
        self.purge_stale()
    }

    /// Blocks currently resident (live and stale).
    pub fn len(&self) -> usize {
        let (_ord, map) = self.lock();
        map.blocks.len()
    }

    /// Whether the cache holds no blocks at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Leak audit: stale-generation blocks still resident, as
    /// human-readable descriptions. Empty means clean — after an
    /// [`WeightCache::invalidate`] nothing stale may linger; a non-empty
    /// report means a retire ran without its sweep (or a block was planted
    /// behind the cache's back).
    pub fn residue_report(&self) -> Vec<String> {
        let (_ord, map) = self.lock();
        let generation = map.generation;
        let mut stale: Vec<&String> = map
            .blocks
            .iter()
            .filter(|(_, b)| b.generation != generation)
            .map(|(k, _)| k)
            .collect();
        stale.sort();
        stale
            .into_iter()
            .map(|k| format!("stale weight-cache block `{k}`"))
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WeightCacheStats {
        WeightCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            stale_rejected: self.stale_rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes())
    }

    #[test]
    fn insert_lookup_evict_roundtrip() {
        let cache = WeightCache::new();
        let generation = cache.generation();
        assert!(cache.lookup("model/p4/w0/L0").is_none());
        assert!(cache.insert_block("model/p4/w0/L0", body("w"), generation));
        let hit = cache.lookup("model/p4/w0/L0").expect("cached");
        assert_eq!(&hit[..], b"w");
        assert!(cache.evict_block("model/p4/w0/L0"));
        assert!(!cache.evict_block("model/p4/w0/L0"));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts, stats.evicted),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn invalidation_hides_and_sweeps_old_generations() {
        let cache = WeightCache::new();
        let generation = cache.generation();
        assert!(cache.insert_block("k", body("old"), generation));
        assert_eq!(cache.invalidate(), 1);
        assert!(cache.lookup("k").is_none(), "stale blocks never hit");
        assert!(cache.is_empty());
        // The new generation serves fresh inserts normally.
        assert!(cache.insert_block("k", body("new"), cache.generation()));
        assert_eq!(&cache.lookup("k").expect("fresh")[..], b"new");
    }

    #[test]
    fn straddling_load_cannot_repopulate_after_invalidate() {
        let cache = WeightCache::new();
        let load_started_under = cache.generation();
        cache.invalidate();
        assert!(
            !cache.insert_block("k", body("torn"), load_started_under),
            "inserts tagged with a retired generation must be rejected"
        );
        assert!(cache.is_empty());
        assert_eq!(cache.stats().stale_rejected, 1);
    }

    #[test]
    fn residue_audit_flags_retire_without_sweep() {
        let cache = WeightCache::new();
        assert!(cache.insert_block("model/p4/w1/L2", body("x"), cache.generation()));
        assert!(cache.residue_report().is_empty());
        cache.retire_generation();
        let residue = cache.residue_report();
        assert_eq!(residue.len(), 1);
        assert!(residue[0].contains("model/p4/w1/L2"), "{residue:?}");
        assert_eq!(cache.purge_stale(), 1);
        assert!(cache.residue_report().is_empty());
    }

    #[test]
    fn concurrent_inserts_and_invalidates_stay_consistent() {
        let cache = Arc::new(WeightCache::new());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let generation = cache.generation();
                        cache.insert_block(&format!("w{w}/k{i}"), body("b"), generation);
                        cache.lookup(&format!("w{w}/k{i}"));
                    }
                })
            })
            .collect();
        let invalidator = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    cache.invalidate();
                }
            })
        };
        for handle in writers {
            handle.join().expect("writer");
        }
        invalidator.join().expect("invalidator");
        cache.invalidate();
        assert!(cache.is_empty(), "final invalidate leaves nothing live");
        assert!(cache.residue_report().is_empty());
    }
}
