//! FSD-Inf-Hybrid: queue control plane with size-based payload spilling.
//!
//! The paper's §IV finding is that neither pure transport wins everywhere:
//! queue messages are fast and cheap per request but payload-capped, while
//! object storage carries unbounded intermediates at a higher per-op
//! latency. The hybrid channel deploys both at once, per message:
//!
//! * **control plane** — every send travels the pub-sub/queue path of
//!   Algorithm 1 (per-flow queues, filter-policy fan-out, publish
//!   batching, long polling), so receivers keep the queue channel's
//!   completion tracking and latency profile;
//! * **data plane** — any per-target payload whose serialized
//!   (pre-compression) size exceeds [`ChannelOptions::spill_threshold`]
//!   is written once to object storage and replaced in-queue by a small
//!   **pointer record** the receiver dereferences transparently.
//!
//! Wire framing (first byte of every message body):
//!
//! ```text
//! 0x00  inline:  [0x00][encoded payload …]
//! 0x01  pointer: [0x01][key_len: u32 LE][key bytes][payload_len: u64 LE]
//! ```
//!
//! Spilled objects live under the flow namespace
//! (`f{flow}/{tag}/{target}/…`), so [`HybridChannel::teardown`] removes
//! them together with the flow's queues and subscriptions — the same
//! per-request cleanup invariant both pure channels honor. A pointer is
//! only published after its object's PUT has completed, so a receiver that
//! has seen the pointer (clock ≥ message stamp ≥ PUT stamp) always finds
//! the object visible.

use crate::channel::{FsiChannel, RecvTracker, Tag};
use crate::queue_channel::{
    decode_payload, encode_payload, poll_and_stash, publish_over_lanes, ChannelOptions, TagInbox,
};
use crate::stats::ChannelStats;
use fsd_comm::{bucket_name, quota, CloudEnv, Message, MessageAttributes, SqsQueue, VClock};
use fsd_faas::{FaasError, WorkerCtx};
use fsd_sparse::{codec, SparseRows};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const FRAME_INLINE: u8 = 0x00;
const FRAME_POINTER: u8 = 0x01;

/// A parsed hybrid message body.
enum Frame<'a> {
    /// The payload travelled inline on the queue.
    Inline(&'a [u8]),
    /// The payload was spilled; fetch it from the receiver's bucket and
    /// check it against the advertised length.
    Pointer { key: &'a str, payload_len: u64 },
}

/// Frames an inline payload: `[0x00][body]`.
fn frame_inline(body: Vec<u8>) -> Vec<u8> {
    let mut framed = Vec::with_capacity(1 + body.len());
    framed.push(FRAME_INLINE);
    framed.extend_from_slice(&body);
    framed
}

/// Frames a pointer record: `[0x01][key_len u32][key][payload_len u64]`.
fn frame_pointer(key: &str, payload_len: u64) -> Vec<u8> {
    let mut framed = Vec::with_capacity(1 + 4 + key.len() + 8);
    framed.push(FRAME_POINTER);
    framed.extend_from_slice(&(key.len() as u32).to_le_bytes());
    framed.extend_from_slice(key.as_bytes());
    framed.extend_from_slice(&payload_len.to_le_bytes());
    framed
}

/// Parses a framed body (strict: truncated or unknown frames are errors).
fn parse_frame(body: &[u8]) -> Result<Frame<'_>, FaasError> {
    match body.first() {
        Some(&FRAME_INLINE) => Ok(Frame::Inline(&body[1..])),
        Some(&FRAME_POINTER) => {
            let rest = &body[1..];
            if rest.len() < 4 {
                return Err(FaasError::comm("frame", "", "truncated pointer record"));
            }
            let key_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let rest = &rest[4..];
            if rest.len() < key_len + 8 {
                return Err(FaasError::comm("frame", "", "truncated pointer key"));
            }
            let key = std::str::from_utf8(&rest[..key_len])
                .map_err(|e| FaasError::comm("frame", "", e.to_string()))?;
            let payload_len =
                u64::from_le_bytes(rest[key_len..key_len + 8].try_into().expect("8 bytes"));
            Ok(Frame::Pointer { key, payload_len })
        }
        _ => Err(FaasError::comm("frame", "", "unknown hybrid frame tag")),
    }
}

/// The hybrid channel. One instance serves one request flow: its queues,
/// filter-policy subscriptions *and* spilled objects are namespaced by the
/// flow id, so concurrent requests share the region's topics and buckets
/// without cross-delivery or residue.
pub struct HybridChannel {
    env: Arc<CloudEnv>,
    n_workers: u32,
    n_buckets: usize,
    flow: u64,
    opts: ChannelOptions,
    queues: Vec<Arc<SqsQueue>>,
    stats: ChannelStats,
    /// Deferred arrivals: `(receiver, tag) → inbox`.
    inboxes: Mutex<HashMap<(u32, u32), TagInbox>>,
}

/// Canonical per-flow queue naming (distinct from the pure queue channel's
/// names, so mixed-transport tests over one region never collide).
fn queue_name(flow: u64, rank: u32) -> String {
    format!("fsd-f{flow}-hq{rank}")
}

impl HybridChannel {
    /// Sets up a channel in the default flow (0) — single-request and test
    /// use. Serving code goes through [`HybridChannel::setup_scoped`].
    pub fn setup(env: Arc<CloudEnv>, n_workers: u32, opts: ChannelOptions) -> Arc<HybridChannel> {
        HybridChannel::setup_scoped(env, n_workers, opts, 0)
    }

    /// Pre-creates one queue per worker and subscribes each to every topic
    /// with a `(flow, rank)` filter policy, exactly like the queue channel;
    /// the object-side needs no setup (buckets are pre-created offline).
    pub fn setup_scoped(
        env: Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<HybridChannel> {
        let mut queues = Vec::with_capacity(n_workers as usize);
        for m in 0..n_workers {
            let q = env.queue(&queue_name(flow, m));
            for t in 0..env.pubsub().n_topics() {
                env.pubsub()
                    .subscribe(t, flow, m, q.clone())
                    .expect("topic pre-created");
            }
            queues.push(q);
        }
        let n_buckets = env.config().n_buckets.max(1);
        Arc::new(HybridChannel {
            env,
            n_workers,
            n_buckets,
            flow,
            opts,
            queues,
            stats: ChannelStats::new(),
            inboxes: Mutex::new(HashMap::new()),
        })
    }

    /// Client-side statistics (cost-model inputs).
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Worker count this channel was set up for.
    pub fn n_workers(&self) -> u32 {
        self.n_workers
    }

    /// The request flow this channel is scoped to.
    pub fn flow(&self) -> u64 {
        self.flow
    }

    /// The spill threshold in force (bytes of serialized payload).
    pub fn spill_threshold(&self) -> usize {
        self.opts.spill_threshold
    }

    /// Bucket spilled payloads for `target` land in (k-fold API limit,
    /// same placement as the object channel).
    fn bucket_for(&self, target: u32) -> String {
        bucket_name(target as usize % self.n_buckets)
    }

    /// Flow-namespaced key prefix for a `(tag, target)` pair.
    fn prefix_for(&self, tag: Tag, target: u32) -> String {
        format!("f{}/{}/{}/", self.flow, tag.key_segment(), target)
    }

    /// Builds the frames (and PUT list) for one target's rows: the whole
    /// block spills when its serialized size exceeds the threshold;
    /// otherwise it is chunked inline exactly like the queue channel. An
    /// inline chunk that still cannot fit one publish message (a single
    /// giant row) falls back to spilling just that chunk.
    fn frames_for(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        src: u32,
        target: u32,
        rows: &SparseRows,
        puts: &mut Vec<(String, String, Vec<u8>)>,
    ) -> Vec<Vec<u8>> {
        let spill = |chunk_idx: usize,
                     body: Vec<u8>,
                     puts: &mut Vec<(String, String, Vec<u8>)>|
         -> Vec<u8> {
            let key = format!(
                "{}{src}_{target}.c{chunk_idx}.dat",
                self.prefix_for(tag, target)
            );
            let ptr = frame_pointer(&key, body.len() as u64);
            puts.push((self.bucket_for(target), key, body));
            ptr
        };
        if rows.is_empty() {
            // An empty send still announces itself so the receiver's
            // tracker can complete the source.
            return vec![frame_inline(encode_payload(
                ctx,
                &self.stats,
                rows,
                self.opts.compression,
            ))];
        }
        if codec::encoded_size(rows) > self.opts.spill_threshold {
            let body = encode_payload(ctx, &self.stats, rows, self.opts.compression);
            return vec![spill(0, body, puts)];
        }
        let mut frames = Vec::new();
        let mut pending: Vec<SparseRows> = rows.split_by_nnz(self.opts.chunk_nnz);
        while let Some(chunk) = pending.pop() {
            let body = encode_payload(ctx, &self.stats, &chunk, self.opts.compression);
            if body.len() + 1 > quota::MAX_PUBLISH_BYTES {
                if chunk.n_rows() > 1 {
                    let halves = chunk.split_by_nnz((chunk.nnz() / 2).max(1));
                    pending.extend(halves);
                } else {
                    // A single row too large for any message: spill it.
                    frames.push(spill(frames.len(), body, puts));
                }
                continue;
            }
            frames.push(frame_inline(body));
        }
        frames
    }
}

impl FsiChannel for HybridChannel {
    fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Releases everything this flow holds on the region: filter-policy
    /// subscriptions, queues, *and* spilled payload objects.
    fn teardown(&self) {
        for m in 0..self.n_workers {
            for t in 0..self.env.pubsub().n_topics() {
                let _ = self.env.pubsub().unsubscribe(t, self.flow, m);
            }
            if let Some(q) = self.env.remove_queue(&queue_name(self.flow, m)) {
                q.purge();
            }
        }
        for i in 0..self.n_buckets {
            self.env
                .object_store()
                .delete_prefix(&bucket_name(i), &format!("f{}/", self.flow));
        }
    }

    fn send_layer(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        src: u32,
        sends: &[(u32, SparseRows)],
    ) -> Result<(), FaasError> {
        if sends.is_empty() {
            return Ok(());
        }
        // 1. Build every frame; collect spilled bodies for the PUT phase.
        let mut puts: Vec<(String, String, Vec<u8>)> = Vec::new();
        let mut messages: Vec<Message> = Vec::new();
        for (target, rows) in sends {
            let frames = self.frames_for(ctx, tag, src, *target, rows, &mut puts);
            let total_chunks = frames.len() as u32;
            for body in frames {
                messages.push(Message {
                    attributes: MessageAttributes {
                        flow: self.flow,
                        source: src,
                        target: *target,
                        layer: tag.encode(),
                        total_chunks,
                        batch: 0,
                    },
                    body,
                });
            }
        }
        // 2. Spilled payloads PUT first over the modeled thread pool — a
        //    pointer is only published once its object is durable, so the
        //    caller's clock joins the slowest PUT lane before publishing.
        if !puts.is_empty() {
            let lanes = self.opts.send_threads.max(1);
            let lane0 = VClock::starting_at(ctx.now()).with_flow(ctx.clock_mut().flow());
            let mut lane_clocks: Vec<VClock> = vec![lane0; lanes];
            for (i, (bucket, key, body)) in puts.into_iter().enumerate() {
                let lane = &mut lane_clocks[i % lanes];
                let bytes = body.len() as u64;
                // A faulted PUT bills but stores nothing; re-PUT of the
                // same key/body is idempotent.
                let (res, retries) = self.opts.retry.run(lane, |lane| {
                    self.env
                        .object_store()
                        .put(&bucket, &key, body.clone(), lane)
                });
                self.stats.add(&self.stats.retries, retries);
                res.map_err(|e| FaasError::comm("put", &key, e))?;
                self.stats.add(&self.stats.s3_puts, 1);
                self.stats.add(&self.stats.s3_bytes_put, bytes);
            }
            let slowest = lane_clocks.iter().map(|c| c.now()).max().expect("≥1 lane");
            ctx.clock_mut().observe(slowest);
        }
        // 3. Greedy batch packing + lane-clocked publishes — the queue
        //    channel's control-plane path, shared verbatim.
        let topic = src as usize % self.env.pubsub().n_topics();
        publish_over_lanes(&self.env, &self.stats, ctx, &self.opts, topic, messages)
    }

    fn receive_round(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        me: u32,
        tracker: &mut RecvTracker,
    ) -> Result<Vec<(u32, SparseRows)>, FaasError> {
        let want = tag.encode();
        // Shared prologue with the queue channel: apply early
        // announcements, raw-take one physical batch (no billing, no
        // clock movement until the tag completes), or bill one empty
        // long poll on a genuine producer drought.
        poll_and_stash(
            &self.queues[me as usize],
            &self.inboxes,
            &self.stats,
            ctx,
            &self.opts,
            (me, want),
            tracker,
        );
        if !tracker.done() {
            return Ok(Vec::new());
        }
        // Tag complete. Settle the billed long-poll sequence *first* —
        // the receiver's clock walks past every pointer's stamp, which is
        // never earlier than its object's PUT stamp, so the GETs below
        // always find their objects visible — then dereference frames in
        // deterministic stamp order.
        let inbox = self.inboxes.lock().remove(&(me, want)).unwrap_or_default();
        let mut raw = inbox.raw;
        raw.sort_unstable_by_key(|m| (m.0, m.1, m.3.len()));
        let billing: Vec<(fsd_comm::VirtualTime, usize)> = raw
            .iter()
            .map(|(stamp, .., body)| (*stamp, body.len()))
            .collect();
        let rounds = self.queues[me as usize].settle_receives(
            ctx.clock_mut(),
            self.opts.long_poll_secs,
            &billing,
        );
        self.stats.add(&self.stats.sqs_calls, rounds);
        let bucket = self.bucket_for(me);
        let mut out = Vec::new();
        for (_, source, _, body) in raw {
            let rows = match parse_frame(&body)? {
                Frame::Inline(inline) => decode_payload(ctx, inline, self.opts.compression)?,
                Frame::Pointer { key, payload_len } => {
                    // GET is a pure read — safe to retry on transients.
                    let (res, retries) = self.opts.retry.run(ctx.clock_mut(), |clock| {
                        self.env.object_store().get(&bucket, key, clock)
                    });
                    self.stats.add(&self.stats.retries, retries);
                    let fetched = res.map_err(|e| FaasError::comm("get", key, e))?;
                    self.stats.add(&self.stats.s3_gets, 1);
                    if fetched.len() as u64 != payload_len {
                        return Err(FaasError::comm(
                            "get",
                            key,
                            format!(
                                "spilled object length mismatch: pointer advertised \
                                 {payload_len} bytes, object holds {}",
                                fetched.len()
                            ),
                        ));
                    }
                    decode_payload(ctx, &fetched, self.opts.compression)?
                }
            };
            if !rows.is_empty() {
                out.push((source, rows));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::{CloudConfig, VirtualTime};
    use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};

    fn with_ctx<T: Send + 'static>(
        env: Arc<CloudEnv>,
        body: impl FnOnce(&mut WorkerCtx) -> Result<T, FaasError> + Send + 'static,
    ) -> T {
        let platform = FaasPlatform::new(env, ComputeModel::default());
        platform
            .invoke(FunctionConfig::worker("t", 2048), VirtualTime::ZERO, body)
            .join()
            .expect("test body ok")
            .0
    }

    fn rows(ids: &[u32]) -> SparseRows {
        SparseRows::from_rows(
            4,
            ids.iter().map(|&i| (i, vec![0u32, 2], vec![1.0f32, 2.0])),
        )
    }

    /// A block whose serialized size comfortably exceeds `bytes`.
    fn big_rows(bytes: usize) -> SparseRows {
        let nnz_per_row = 64usize;
        let n_rows = bytes / (nnz_per_row * 8) + 2;
        SparseRows::from_rows(
            nnz_per_row,
            (0..n_rows as u32).map(|i| {
                (
                    i,
                    (0..nnz_per_row as u32).collect::<Vec<_>>(),
                    (0..nnz_per_row)
                        .map(|j| (i as f32) + (j as f32) * 0.37)
                        .collect(),
                )
            }),
        )
    }

    fn total_object_count(env: &Arc<CloudEnv>) -> usize {
        (0..env.config().n_buckets)
            .map(|i| env.object_store().object_count(&bucket_name(i)))
            .sum()
    }

    #[test]
    fn frames_roundtrip() {
        match parse_frame(&frame_inline(vec![1, 2, 3])).expect("inline") {
            Frame::Inline(b) => assert_eq!(b, &[1, 2, 3]),
            _ => panic!("wrong frame"),
        }
        match parse_frame(&frame_pointer("f1/L0/1/0_1.c0.dat", 99)).expect("pointer") {
            Frame::Pointer { key, payload_len } => {
                assert_eq!(key, "f1/L0/1/0_1.c0.dat");
                assert_eq!(payload_len, 99);
            }
            _ => panic!("wrong frame"),
        }
        assert!(parse_frame(&[0x02, 0, 0]).is_err(), "unknown tag");
        assert!(parse_frame(&[FRAME_POINTER, 9]).is_err(), "truncated");
        assert!(parse_frame(&[]).is_err(), "empty body");
    }

    #[test]
    fn small_payloads_stay_inline() {
        let env = CloudEnv::new(CloudConfig::deterministic(61));
        let ch = HybridChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        let sent = rows(&[3, 8]);
        let sent2 = sent.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, sent2)])
        });
        let snap = ch.stats().snapshot();
        assert_eq!(snap.s3_puts, 0, "small payload must not spill");
        assert!(snap.messages > 0);
        let got = with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, sent);
        assert_eq!(env.snapshot().s3_get_requests, 0, "inline needs no GET");
    }

    #[test]
    fn large_payloads_spill_to_objects() {
        let env = CloudEnv::new(CloudConfig::deterministic(62));
        let opts = ChannelOptions {
            spill_threshold: 4 * 1024,
            ..ChannelOptions::default()
        };
        let ch = HybridChannel::setup(env.clone(), 2, opts);
        let ch2 = ch.clone();
        let sent = big_rows(16 * 1024);
        let sent2 = sent.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(2), 0, &[(1, sent2)])
        });
        let snap = ch.stats().snapshot();
        assert_eq!(snap.s3_puts, 1, "one object per spilled payload");
        assert_eq!(snap.messages, 1, "one pointer record in-queue");
        assert!(
            snap.bytes_sent < 256,
            "pointer record must be tiny, sent {} bytes",
            snap.bytes_sent
        );
        let ch_recv = ch.clone();
        let got = with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch_recv.receive_all(ctx, Tag::Layer(2), 1, &mut tracker)
        });
        let mut merged = SparseRows::new(sent.width());
        for (_, b) in got {
            merged.merge(&b);
        }
        assert_eq!(merged, sent);
        assert_eq!(ch.stats().snapshot().s3_gets, 1, "one dereference GET");
    }

    #[test]
    fn threshold_compares_serialized_size_exactly() {
        let sent = rows(&[1, 2, 3]);
        let wire = codec::encoded_size(&sent);
        for (threshold, expect_spill) in [(wire, false), (wire - 1, true)] {
            let env = CloudEnv::new(CloudConfig::deterministic(63));
            let opts = ChannelOptions {
                spill_threshold: threshold,
                ..ChannelOptions::default()
            };
            let ch = HybridChannel::setup(env.clone(), 2, opts);
            let ch2 = ch.clone();
            let sent2 = sent.clone();
            with_ctx(env, move |ctx| {
                ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, sent2)])
            });
            assert_eq!(
                ch.stats().snapshot().s3_puts > 0,
                expect_spill,
                "threshold {threshold} vs wire {wire}"
            );
        }
    }

    #[test]
    fn empty_send_completes_tracker_without_rows() {
        let env = CloudEnv::new(CloudConfig::deterministic(64));
        let ch = HybridChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, SparseRows::new(4))])
        });
        let got = with_ctx(env, move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        assert!(got.is_empty());
    }

    #[test]
    fn teardown_removes_queues_subscriptions_and_spilled_objects() {
        let env = CloudEnv::new(CloudConfig::deterministic(65));
        let opts = ChannelOptions {
            spill_threshold: 1024,
            ..ChannelOptions::default()
        };
        let ch = HybridChannel::setup_scoped(env.clone(), 3, opts, 9);
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(
                ctx,
                Tag::Layer(0),
                0,
                &[(1, big_rows(8 * 1024)), (2, big_rows(8 * 1024))],
            )
        });
        assert_eq!(env.queue_count(), 3);
        assert_eq!(total_object_count(&env), 2, "two spilled objects");
        ch.teardown();
        assert_eq!(env.queue_count(), 0);
        assert_eq!(
            total_object_count(&env),
            0,
            "spilled objects must be deleted"
        );
        for t in 0..env.pubsub().n_topics() {
            assert_eq!(env.pubsub().subscription_count(t), 0);
        }
    }

    #[test]
    fn pointer_length_mismatch_is_detected() {
        let env = CloudEnv::new(CloudConfig::deterministic(69));
        let opts = ChannelOptions {
            spill_threshold: 1024,
            ..ChannelOptions::default()
        };
        let ch = HybridChannel::setup(env.clone(), 2, opts);
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, big_rows(8 * 1024))])
        });
        // Corrupt the spilled object: overwrite it with a body whose
        // length disagrees with the pointer record's advertised size.
        let bucket = bucket_name(1 % env.config().n_buckets);
        env.object_store()
            .put_offline(&bucket, "f0/L0/1/0_1.c0.dat", &b"truncated"[..])
            .expect("overwrite spilled object");
        let platform = FaasPlatform::new(env, ComputeModel::default());
        let res = platform
            .invoke(
                FunctionConfig::worker("t", 2048),
                VirtualTime::ZERO,
                move |ctx| {
                    let mut tracker = RecvTracker::expecting([0u32]);
                    ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
                },
            )
            .join();
        let err = res.expect_err("length mismatch must surface as an error");
        assert!(
            err.to_string().contains("length mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn mixed_inline_and_spilled_sends_in_one_layer() {
        let env = CloudEnv::new(CloudConfig::deterministic(66));
        let opts = ChannelOptions {
            spill_threshold: 4 * 1024,
            ..ChannelOptions::default()
        };
        let ch = HybridChannel::setup(env.clone(), 3, opts);
        let ch2 = ch.clone();
        let small = rows(&[1]);
        let big = big_rows(16 * 1024);
        let (small2, big2) = (small.clone(), big.clone());
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, small2), (2, big2)])
        });
        let snap = ch.stats().snapshot();
        assert_eq!(snap.s3_puts, 1);
        assert_eq!(snap.messages, 2, "inline body + pointer record");
        let ch_a = ch.clone();
        let got_small = with_ctx(env.clone(), move |ctx| {
            let mut t = RecvTracker::expecting([0u32]);
            ch_a.receive_all(ctx, Tag::Layer(0), 1, &mut t)
        });
        assert_eq!(got_small[0].1, small);
        let got_big = with_ctx(env, move |ctx| {
            let mut t = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 2, &mut t)
        });
        let mut merged = SparseRows::new(big.width());
        for (_, b) in got_big {
            merged.merge(&b);
        }
        assert_eq!(merged, big);
    }

    #[test]
    fn barrier_and_reduce_work_over_hybrid() {
        use crate::channel::{barrier, reduce};
        let env = CloudEnv::new(CloudConfig::deterministic(67));
        let ch = HybridChannel::setup(env.clone(), 3, ChannelOptions::default());
        let platform = FaasPlatform::new(env, ComputeModel::default());
        let mut handles = Vec::new();
        for m in 0..3u32 {
            let ch = ch.clone();
            handles.push(platform.invoke(
                FunctionConfig::worker(format!("w{m}"), 2048),
                VirtualTime::ZERO,
                move |ctx| {
                    barrier(ch.as_ref(), ctx, m, 3, 0)?;
                    let mine = rows(&[m * 10]);
                    reduce(ch.as_ref(), ctx, m, 3, mine, 0)
                },
            ));
        }
        let outs: Vec<Option<SparseRows>> = handles
            .into_iter()
            .map(|h| h.join().expect("worker ok").0)
            .collect();
        let root = outs.iter().flatten().next().expect("root produced output");
        assert_eq!(root.ids(), &[0, 10, 20]);
        assert_eq!(outs.iter().filter(|o| o.is_some()).count(), 1);
    }

    #[test]
    fn scoped_flows_are_isolated() {
        let env = CloudEnv::new(CloudConfig::deterministic(68));
        let opts = ChannelOptions {
            spill_threshold: 1024,
            ..ChannelOptions::default()
        };
        let a = HybridChannel::setup_scoped(env.clone(), 2, opts, 1);
        let b = HybridChannel::setup_scoped(env.clone(), 2, opts, 2);
        let (a2, b2) = (a.clone(), b.clone());
        let big_a = big_rows(8 * 1024);
        let big_b = big_rows(12 * 1024);
        let (big_a2, big_b2) = (big_a.clone(), big_b.clone());
        with_ctx(env.clone(), move |ctx| {
            a2.send_layer(ctx, Tag::Layer(0), 0, &[(1, big_a2)])?;
            b2.send_layer(ctx, Tag::Layer(0), 0, &[(1, big_b2)])
        });
        let (a3, b3) = (a.clone(), b.clone());
        let (got_a, got_b) = with_ctx(env.clone(), move |ctx| {
            let mut ta = RecvTracker::expecting([0u32]);
            let ga = a3.receive_all(ctx, Tag::Layer(0), 1, &mut ta)?;
            let mut tb = RecvTracker::expecting([0u32]);
            let gb = b3.receive_all(ctx, Tag::Layer(0), 1, &mut tb)?;
            Ok((ga, gb))
        });
        let merge = |blocks: Vec<(u32, SparseRows)>, width: usize| {
            let mut m = SparseRows::new(width);
            for (_, b) in blocks {
                m.merge(&b);
            }
            m
        };
        assert_eq!(merge(got_a, big_a.width()), big_a);
        assert_eq!(merge(got_b, big_b.width()), big_b);
        // Teardown releases exactly this flow's resources.
        a.teardown();
        assert_eq!(env.queue_count(), 2);
        b.teardown();
        assert_eq!(env.queue_count(), 0);
        assert_eq!(total_object_count(&env), 0);
    }
}
