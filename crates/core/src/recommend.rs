//! Design recommendations (paper Section IV-C).
//!
//! * Models that fit one instance comfortably → **Serial** (no IPC latency);
//! * otherwise **Queue** while per-pair payloads stay within a few publish
//!   quotas (its API requests are ~1 OOM cheaper and batch 10 targets);
//! * **Object** once per-layer pairwise volumes saturate pub-sub payload
//!   limits (object size is effectively unbounded and transfer is free).

use crate::engine::Variant;
use fsd_comm::quota;
use fsd_faas::MAX_MEMORY_MB;

/// Workload description for the recommender.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// In-memory bytes of the whole (unpartitioned) model.
    pub model_bytes: usize,
    /// Planned worker parallelism.
    pub workers: u32,
    /// Estimated bytes shipped per (source, target) pair per layer.
    pub bytes_per_pair_layer: usize,
}

/// Fraction of instance memory the model may take before Serial stops
/// being recommended (activations, buffers and runtime need the rest).
const SERIAL_FIT_FRACTION: f64 = 0.55;

/// Publish quotas a pair/layer may consume before the queue channel starts
/// paying multiple billed requests per target consistently (§IV-C: queue
/// wins "until multiple publishes are consistently required per target").
const QUEUE_SATURATION_PUBLISHES: usize = 4;

/// A recommendation with the profile that produced it (diagnostics).
#[derive(Debug, Clone, Copy)]
pub struct Recommendation {
    /// The recommended execution variant.
    pub variant: Variant,
    /// The workload profile the rules were evaluated on.
    pub profile: WorkloadProfile,
}

/// Whether a model fits one maximum-memory instance with the §IV-C
/// headroom fraction (the Serial-eligibility test).
pub fn fits_single_instance(model_bytes: usize) -> bool {
    let serial_budget = (MAX_MEMORY_MB as usize * 1024 * 1024) as f64 * SERIAL_FIT_FRACTION;
    (model_bytes as f64) <= serial_budget
}

/// Recommends the variant for a workload.
pub fn recommend_variant(w: &WorkloadProfile) -> Variant {
    if fits_single_instance(w.model_bytes) {
        return Variant::Serial;
    }
    if w.bytes_per_pair_layer <= quota::MAX_PUBLISH_BYTES * QUEUE_SATURATION_PUBLISHES {
        Variant::Queue
    } else {
        Variant::Object
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_run_serial() {
        let w = WorkloadProfile {
            model_bytes: 100 * 1024 * 1024,
            workers: 8,
            bytes_per_pair_layer: 10_000,
        };
        assert_eq!(recommend_variant(&w), Variant::Serial);
    }

    #[test]
    fn medium_models_use_queue() {
        let w = WorkloadProfile {
            model_bytes: 8 * 1024 * 1024 * 1024,
            workers: 20,
            bytes_per_pair_layer: 200 * 1024,
        };
        assert_eq!(recommend_variant(&w), Variant::Queue);
    }

    #[test]
    fn huge_volumes_use_object() {
        let w = WorkloadProfile {
            model_bytes: 30 * 1024 * 1024 * 1024,
            workers: 62,
            bytes_per_pair_layer: 4 * 1024 * 1024,
        };
        assert_eq!(recommend_variant(&w), Variant::Object);
    }

    #[test]
    fn boundary_is_the_publish_quota_multiple() {
        let base = WorkloadProfile {
            model_bytes: 8 * 1024 * 1024 * 1024,
            workers: 40,
            bytes_per_pair_layer: 0,
        };
        let at = WorkloadProfile {
            bytes_per_pair_layer: quota::MAX_PUBLISH_BYTES * QUEUE_SATURATION_PUBLISHES,
            ..base
        };
        let over = WorkloadProfile {
            bytes_per_pair_layer: quota::MAX_PUBLISH_BYTES * QUEUE_SATURATION_PUBLISHES + 1,
            ..base
        };
        assert_eq!(recommend_variant(&at), Variant::Queue);
        assert_eq!(recommend_variant(&over), Variant::Object);
    }
}
