//! Design recommendations (paper Section IV-C, extended with the FMI
//! direct-exchange band).
//!
//! * Models that fit one instance comfortably → **Serial** (no IPC latency);
//! * otherwise **Direct** while per-pair payloads stay within the punched
//!   connections' socket-buffer budget: NAT-punched TCP has no per-message
//!   API cost at all and sub-millisecond latency, so for small/mid
//!   payloads it dominates every managed service (FMI, PAPERS.md);
//! * **Queue** while per-pair payloads stay within a few publish
//!   quotas (its API requests are ~1 OOM cheaper and batch 10 targets);
//! * **Hybrid** in the mid-size band where payloads overflow the publish
//!   quotas but a queue control plane (one pointer message per pair) still
//!   beats scanning object storage for everything — the configuration the
//!   paper actually deploys once intermediates straddle the SQS cap;
//! * **Object** once per-layer pairwise volumes are so large that even the
//!   pointer control traffic is noise next to the transfers (object size
//!   is effectively unbounded and transfer is free).

use crate::engine::Variant;
use fsd_comm::quota;
use fsd_faas::MAX_MEMORY_MB;

/// Workload description for the recommender.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// In-memory bytes of the whole (unpartitioned) model.
    pub model_bytes: usize,
    /// Planned worker parallelism.
    pub workers: u32,
    /// Estimated bytes shipped per (source, target) pair per layer.
    pub bytes_per_pair_layer: usize,
}

/// Fraction of instance memory the model may take before Serial stops
/// being recommended (activations, buffers and runtime need the rest).
const SERIAL_FIT_FRACTION: f64 = 0.55;

/// Per-pair-per-layer bytes the direct channel absorbs before queueing
/// effects on the punched connections' socket buffers erase its latency
/// edge: half a publish quota — safely below the band where the queue
/// channel still delivers a pair in a single billed publish.
const DIRECT_SATURATION_BYTES: usize = quota::MAX_PUBLISH_BYTES / 2;

/// Publish quotas a pair/layer may consume before the queue channel starts
/// paying multiple billed requests per target consistently (§IV-C: queue
/// wins "until multiple publishes are consistently required per target").
const QUEUE_SATURATION_PUBLISHES: usize = 4;

/// Publish quotas a pair/layer may consume before the hybrid channel's
/// spilled-payload regime stops winning: past this, the per-pair transfer
/// so dominates that the queue control plane buys nothing over a pure
/// object scan, and pub-sub fan-out of the pointer records only adds a
/// delivery hop.
const HYBRID_SATURATION_PUBLISHES: usize = 12;

/// A recommendation with the profile that produced it (diagnostics).
#[derive(Debug, Clone, Copy)]
pub struct Recommendation {
    /// The recommended execution variant.
    pub variant: Variant,
    /// The workload profile the rules were evaluated on.
    pub profile: WorkloadProfile,
}

/// Whether a model fits an instance of `memory_mb` with the §IV-C headroom
/// fraction. Services evaluate this against their configured Serial
/// instance size; the paper's deployment uses Lambda's maximum.
pub fn fits_instance(model_bytes: usize, memory_mb: u32) -> bool {
    let budget = (memory_mb as usize * 1024 * 1024) as f64 * SERIAL_FIT_FRACTION;
    (model_bytes as f64) <= budget
}

/// Whether a model fits one maximum-memory instance with the §IV-C
/// headroom fraction (the Serial-eligibility test).
pub fn fits_single_instance(model_bytes: usize) -> bool {
    fits_instance(model_bytes, MAX_MEMORY_MB)
}

/// Picks among the channel transports by per-pair-per-layer volume — the
/// Direct → Queue → Hybrid → Object bands, for callers that have already
/// ruled Serial out with their own fit test ([`fits_instance`]).
pub fn channel_variant(bytes_per_pair_layer: usize) -> Variant {
    if bytes_per_pair_layer <= DIRECT_SATURATION_BYTES {
        Variant::Direct
    } else if bytes_per_pair_layer <= quota::MAX_PUBLISH_BYTES * QUEUE_SATURATION_PUBLISHES {
        Variant::Queue
    } else if bytes_per_pair_layer <= quota::MAX_PUBLISH_BYTES * HYBRID_SATURATION_PUBLISHES {
        Variant::Hybrid
    } else {
        Variant::Object
    }
}

/// Recommends the variant for a workload.
pub fn recommend_variant(w: &WorkloadProfile) -> Variant {
    if fits_single_instance(w.model_bytes) {
        return Variant::Serial;
    }
    channel_variant(w.bytes_per_pair_layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_run_serial() {
        let w = WorkloadProfile {
            model_bytes: 100 * 1024 * 1024,
            workers: 8,
            bytes_per_pair_layer: 10_000,
        };
        assert_eq!(recommend_variant(&w), Variant::Serial);
    }

    #[test]
    fn small_payloads_use_direct() {
        let w = WorkloadProfile {
            model_bytes: 8 * 1024 * 1024 * 1024,
            workers: 20,
            bytes_per_pair_layer: 10 * 1024,
        };
        assert_eq!(recommend_variant(&w), Variant::Direct);
    }

    #[test]
    fn medium_models_use_queue() {
        let w = WorkloadProfile {
            model_bytes: 8 * 1024 * 1024 * 1024,
            workers: 20,
            bytes_per_pair_layer: 200 * 1024,
        };
        assert_eq!(recommend_variant(&w), Variant::Queue);
    }

    #[test]
    fn mid_band_volumes_use_hybrid() {
        let w = WorkloadProfile {
            model_bytes: 16 * 1024 * 1024 * 1024,
            workers: 42,
            bytes_per_pair_layer: 2 * 1024 * 1024,
        };
        assert_eq!(recommend_variant(&w), Variant::Hybrid);
    }

    #[test]
    fn huge_volumes_use_object() {
        let w = WorkloadProfile {
            model_bytes: 30 * 1024 * 1024 * 1024,
            workers: 62,
            bytes_per_pair_layer: 4 * 1024 * 1024,
        };
        assert_eq!(recommend_variant(&w), Variant::Object);
    }

    #[test]
    fn boundaries_are_the_publish_quota_multiples() {
        let base = WorkloadProfile {
            model_bytes: 8 * 1024 * 1024 * 1024,
            workers: 40,
            bytes_per_pair_layer: 0,
        };
        let at = |v: usize| WorkloadProfile {
            bytes_per_pair_layer: v,
            ..base
        };
        let q = quota::MAX_PUBLISH_BYTES;
        assert_eq!(
            recommend_variant(&at(DIRECT_SATURATION_BYTES)),
            Variant::Direct
        );
        assert_eq!(
            recommend_variant(&at(DIRECT_SATURATION_BYTES + 1)),
            Variant::Queue
        );
        assert_eq!(
            recommend_variant(&at(q * QUEUE_SATURATION_PUBLISHES)),
            Variant::Queue
        );
        assert_eq!(
            recommend_variant(&at(q * QUEUE_SATURATION_PUBLISHES + 1)),
            Variant::Hybrid
        );
        assert_eq!(
            recommend_variant(&at(q * HYBRID_SATURATION_PUBLISHES)),
            Variant::Hybrid
        );
        assert_eq!(
            recommend_variant(&at(q * HYBRID_SATURATION_PUBLISHES + 1)),
            Variant::Object
        );
    }

    #[test]
    fn fit_test_scales_with_instance_memory() {
        let model = 512 * 1024 * 1024;
        assert!(fits_single_instance(model));
        assert!(!fits_instance(model, 512), "55% headroom must bind");
        assert!(fits_instance(model, 1024));
    }
}
