//! Client-side channel statistics.
//!
//! The paper validates its cost model by capturing fine-grained per-layer /
//! per-batch metrics *inside the application* and comparing the predicted
//! charges against the AWS Cost & Usage report. [`ChannelStats`] plays the
//! application-side role here: channels count the work they believe they
//! did, the service meters (`fsd_comm::ServiceMeter`) independently count
//! what was billed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic client-side counters, aggregated across all workers of a run.
#[derive(Debug, Default)]
pub struct ChannelStats {
    /// Billed SNS publish requests (client's own 64 KiB accounting): `S`.
    pub sns_billed: AtomicU64,
    /// `PublishBatch` API calls issued.
    pub sns_batches: AtomicU64,
    /// Messages handed to the pub-sub service.
    pub messages: AtomicU64,
    /// Payload bytes shipped through pub-sub (= SNS→SQS transfer): `Z`.
    pub bytes_sent: AtomicU64,
    /// SQS API calls (receive rounds + deletes): `Q`.
    pub sqs_calls: AtomicU64,
    /// Object PUT requests: `V`.
    pub s3_puts: AtomicU64,
    /// Object GET requests: `R`.
    pub s3_gets: AtomicU64,
    /// Object LIST requests: `L`.
    pub s3_lists: AtomicU64,
    /// Bytes written to object storage (diagnostics; not billed by S3).
    pub s3_bytes_put: AtomicU64,
    /// Pre-compression payload bytes (compression-effectiveness metric).
    pub bytes_precompress: AtomicU64,
    /// Direct-exchange punch handshakes performed.
    pub direct_punches: AtomicU64,
    /// Frames shipped over punched direct connections.
    pub direct_msgs: AtomicU64,
    /// Payload bytes shipped over punched direct connections (un-billed).
    pub direct_bytes: AtomicU64,
    /// Retries performed on idempotent ops after transient faults. Failed
    /// attempts are billed by the service meters, so under injected faults
    /// the service-side counts exceed these client-side logical counts by
    /// design (AWS semantics).
    pub retries: AtomicU64,
}

/// Plain-data snapshot of [`ChannelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStatsSnapshot {
    /// Billed SNS publish requests (client's own 64 KiB accounting): `S`.
    pub sns_billed: u64,
    /// `PublishBatch` API calls issued.
    pub sns_batches: u64,
    /// Messages handed to the pub-sub service.
    pub messages: u64,
    /// Payload bytes shipped through pub-sub (= SNS→SQS transfer): `Z`.
    pub bytes_sent: u64,
    /// SQS API calls (receive rounds + deletes): `Q`.
    pub sqs_calls: u64,
    /// Object PUT requests: `V`.
    pub s3_puts: u64,
    /// Object GET requests: `R`.
    pub s3_gets: u64,
    /// Object LIST requests: `L`.
    pub s3_lists: u64,
    /// Bytes written to object storage (diagnostics; not billed by S3).
    pub s3_bytes_put: u64,
    /// Pre-compression payload bytes (compression-effectiveness metric).
    pub bytes_precompress: u64,
    /// Direct-exchange punch handshakes performed.
    pub direct_punches: u64,
    /// Frames shipped over punched direct connections.
    pub direct_msgs: u64,
    /// Payload bytes shipped over punched direct connections (un-billed).
    pub direct_bytes: u64,
    /// Retries performed on idempotent ops after transient faults.
    pub retries: u64,
}

impl ChannelStats {
    /// Fresh zeroed stats.
    pub fn new() -> ChannelStats {
        ChannelStats::default()
    }

    pub(crate) fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> ChannelStatsSnapshot {
        ChannelStatsSnapshot {
            sns_billed: self.sns_billed.load(Ordering::Relaxed),
            sns_batches: self.sns_batches.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            sqs_calls: self.sqs_calls.load(Ordering::Relaxed),
            s3_puts: self.s3_puts.load(Ordering::Relaxed),
            s3_gets: self.s3_gets.load(Ordering::Relaxed),
            s3_lists: self.s3_lists.load(Ordering::Relaxed),
            s3_bytes_put: self.s3_bytes_put.load(Ordering::Relaxed),
            bytes_precompress: self.bytes_precompress.load(Ordering::Relaxed),
            direct_punches: self.direct_punches.load(Ordering::Relaxed),
            direct_msgs: self.direct_msgs.load(Ordering::Relaxed),
            direct_bytes: self.direct_bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

impl ChannelStatsSnapshot {
    /// Achieved compression ratio (pre / post), 1.0 when nothing was sent.
    pub fn compression_ratio(&self) -> f64 {
        let post = self.bytes_sent + self.s3_bytes_put + self.direct_bytes;
        if post == 0 {
            return 1.0;
        }
        self.bytes_precompress as f64 / post as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let s = ChannelStats::new();
        s.add(&s.sns_billed, 4);
        s.add(&s.messages, 10);
        s.add(&s.bytes_sent, 1000);
        let snap = s.snapshot();
        assert_eq!(snap.sns_billed, 4);
        assert_eq!(snap.messages, 10);
        assert_eq!(snap.bytes_sent, 1000);
        assert_eq!(snap.sqs_calls, 0);
    }

    #[test]
    fn compression_ratio() {
        let s = ChannelStats::new();
        assert_eq!(s.snapshot().compression_ratio(), 1.0);
        s.add(&s.bytes_precompress, 4000);
        s.add(&s.bytes_sent, 1000);
        assert!((s.snapshot().compression_ratio() - 4.0).abs() < 1e-9);
    }
}
