//! Wire formats for staged model artifacts.
//!
//! Weight blocks, communication maps and input shares are staged in the
//! object store offline and fetched by workers at start-up. Formats mirror
//! the activation codec (`fsd_sparse::codec`): LEB128 varints for structure,
//! raw little-endian `f32` for values.

use fsd_sparse::CsrMatrix;

/// Decoding errors for staged artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended mid-field.
    Truncated,
    /// Structure violates invariants (bad lengths, unsorted columns, ...).
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "artifact buffer truncated"),
            WireError::Corrupt(w) => write!(f, "artifact corrupt: {w}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::Corrupt("varint overflow"));
        }
    }
}

/// Serializes a CSR matrix (weight block: local rows, global columns).
pub fn encode_csr(m: &CsrMatrix) -> Vec<u8> {
    let (indptr, indices, values) = m.parts();
    let mut out = Vec::with_capacity(16 + m.nnz() * 6);
    put_varint(&mut out, m.rows() as u64);
    put_varint(&mut out, m.cols() as u64);
    for r in 0..m.rows() {
        put_varint(&mut out, (indptr[r + 1] - indptr[r]) as u64);
    }
    for r in 0..m.rows() {
        let row = &indices[indptr[r]..indptr[r + 1]];
        let mut prev = 0u32;
        for (i, &c) in row.iter().enumerate() {
            let d = if i == 0 { c } else { c - prev - 1 };
            put_varint(&mut out, d as u64);
            prev = c;
        }
    }
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes a buffer from [`encode_csr`].
pub fn decode_csr(buf: &[u8]) -> Result<CsrMatrix, WireError> {
    let mut pos = 0usize;
    let rows = get_varint(buf, &mut pos)? as usize;
    let cols = get_varint(buf, &mut pos)? as usize;
    let mut indptr = Vec::with_capacity(rows + 1);
    indptr.push(0usize);
    for _ in 0..rows {
        let n = get_varint(buf, &mut pos)? as usize;
        indptr.push(indptr.last().expect("non-empty") + n);
    }
    let nnz = *indptr.last().expect("non-empty");
    let mut indices = Vec::with_capacity(nnz);
    for r in 0..rows {
        let n = indptr[r + 1] - indptr[r];
        let mut prev = 0u32;
        for i in 0..n {
            let d = get_varint(buf, &mut pos)? as u32;
            let c = if i == 0 {
                d
            } else {
                prev.checked_add(d)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(WireError::Corrupt("column overflow"))?
            };
            prev = c;
            indices.push(c);
        }
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let end = pos + 4;
        let bytes = buf.get(pos..end).ok_or(WireError::Truncated)?;
        values.push(f32::from_le_bytes(bytes.try_into().expect("4 bytes")));
        pos = end;
    }
    if pos != buf.len() {
        return Err(WireError::Corrupt("trailing bytes"));
    }
    CsrMatrix::new(rows, cols, indptr, indices, values)
        .map_err(|_| WireError::Corrupt("invalid CSR"))
}

/// One worker's per-layer communication map: `[(peer, rows)]` per layer.
pub type LayerMaps = Vec<Vec<(u32, Vec<u32>)>>;

/// Serializes one worker's per-layer map: `[(peer, rows)]` per layer.
pub fn encode_maps(maps: &[Vec<(u32, Vec<u32>)>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, maps.len() as u64);
    for layer in maps {
        put_varint(&mut out, layer.len() as u64);
        for (peer, rows) in layer {
            put_varint(&mut out, *peer as u64);
            put_varint(&mut out, rows.len() as u64);
            let mut prev = 0u32;
            for (i, &r) in rows.iter().enumerate() {
                let d = if i == 0 { r } else { r - prev - 1 };
                put_varint(&mut out, d as u64);
                prev = r;
            }
        }
    }
    out
}

/// Deserializes a buffer from [`encode_maps`].
pub fn decode_maps(buf: &[u8]) -> Result<LayerMaps, WireError> {
    let mut pos = 0usize;
    let n_layers = get_varint(buf, &mut pos)? as usize;
    let mut maps = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let n_peers = get_varint(buf, &mut pos)? as usize;
        let mut layer = Vec::with_capacity(n_peers);
        for _ in 0..n_peers {
            let peer = get_varint(buf, &mut pos)? as u32;
            let n_rows = get_varint(buf, &mut pos)? as usize;
            let mut rows = Vec::with_capacity(n_rows);
            let mut prev = 0u32;
            for i in 0..n_rows {
                let d = get_varint(buf, &mut pos)? as u32;
                let r = if i == 0 {
                    d
                } else {
                    prev.checked_add(d)
                        .and_then(|v| v.checked_add(1))
                        .ok_or(WireError::Corrupt("row overflow"))?
                };
                prev = r;
                rows.push(r);
            }
            layer.push((peer, rows));
        }
        maps.push(layer);
    }
    if pos != buf.len() {
        return Err(WireError::Corrupt("trailing bytes"));
    }
    Ok(maps)
}

/// Serializes a sorted id list (owned rows).
pub fn encode_ids(ids: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + ids.len() * 2);
    put_varint(&mut out, ids.len() as u64);
    let mut prev = 0u32;
    for (i, &r) in ids.iter().enumerate() {
        let d = if i == 0 { r } else { r - prev - 1 };
        put_varint(&mut out, d as u64);
        prev = r;
    }
    out
}

/// Deserializes a buffer from [`encode_ids`].
pub fn decode_ids(buf: &[u8]) -> Result<Vec<u32>, WireError> {
    let mut pos = 0usize;
    let n = get_varint(buf, &mut pos)? as usize;
    let mut ids = Vec::with_capacity(n);
    let mut prev = 0u32;
    for i in 0..n {
        let d = get_varint(buf, &mut pos)? as u32;
        let r = if i == 0 {
            d
        } else {
            prev.checked_add(d)
                .and_then(|v| v.checked_add(1))
                .ok_or(WireError::Corrupt("id overflow"))?
        };
        prev = r;
        ids.push(r);
    }
    if pos != buf.len() {
        return Err(WireError::Corrupt("trailing bytes"));
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let m = CsrMatrix::from_triplets(
            4,
            100,
            [
                (0, 5, 1.5),
                (0, 99, -2.0),
                (2, 0, 3.25),
                (3, 50, 0.5),
                (3, 51, 4.0),
            ],
        )
        .expect("valid");
        let back = decode_csr(&encode_csr(&m)).expect("decodes");
        assert_eq!(back, m);
    }

    #[test]
    fn csr_roundtrip_empty() {
        let m = CsrMatrix::zeros(3, 7);
        assert_eq!(decode_csr(&encode_csr(&m)).expect("decodes"), m);
    }

    #[test]
    fn csr_rejects_truncation() {
        let buf =
            encode_csr(&CsrMatrix::from_triplets(2, 4, [(0, 1, 1.0), (1, 2, 2.0)]).expect("valid"));
        for cut in 0..buf.len() {
            assert!(decode_csr(&buf[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn maps_roundtrip() {
        let maps = vec![
            vec![(1u32, vec![0u32, 5, 9]), (3, vec![2])],
            vec![],
            vec![(0, vec![100, 200, 300])],
        ];
        let back = decode_maps(&encode_maps(&maps)).expect("decodes");
        assert_eq!(back, maps);
    }

    #[test]
    fn maps_roundtrip_empty() {
        let maps: Vec<Vec<(u32, Vec<u32>)>> = Vec::new();
        assert_eq!(decode_maps(&encode_maps(&maps)).expect("decodes"), maps);
    }

    #[test]
    fn ids_roundtrip() {
        for ids in [vec![], vec![0u32], vec![5, 6, 7, 1000, 4_000_000]] {
            assert_eq!(decode_ids(&encode_ids(&ids)).expect("decodes"), ids);
        }
    }

    #[test]
    fn ids_reject_trailing_garbage() {
        let mut buf = encode_ids(&[1, 2, 3]);
        buf.push(7);
        assert!(decode_ids(&buf).is_err());
    }
}
