//! FSD-Inf-Queue: the pub-sub/queueing channel (FSI Algorithm 1).
//!
//! Send path: per-target row blocks are split into byte strings sized by
//! the NNZ heuristic, serialized, compressed, and packed greedily into
//! publish batches (≤ 10 messages, ≤ 256 KiB) to maximize payload
//! utilization — the paper's main cost lever for `S`. Batches are issued to
//! the sender's topic (`topic-{m % T}`) over a modeled thread pool; the
//! service fans each message out to its target's dedicated queue via
//! filter policies.
//!
//! Receive path: long polls against the worker's own queue; each message
//! carries `(source, total_chunks)` attributes so the tracker knows when a
//! source is complete. Early messages for later tags (a fast sender already
//! one layer ahead) are stashed, never dropped.

use crate::channel::{FsiChannel, RecvTracker, Tag};
use crate::stats::ChannelStats;
use fsd_comm::{quota, topic_name, CloudEnv, Message, MessageAttributes, SqsQueue, VClock};
use fsd_faas::{FaasError, WorkerCtx};
use fsd_sparse::{codec, compress, SparseRows};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Tuning knobs for both channels.
#[derive(Debug, Clone, Copy)]
pub struct ChannelOptions {
    /// Modeled sender-side thread pool width (the paper multi-threads
    /// message construction and publication).
    pub send_threads: usize,
    /// Long-poll wait `W` in seconds.
    pub long_poll_secs: f64,
    /// Whether payloads are compressed (ablation lever; paper uses ZLIB).
    pub compression: bool,
    /// Target nonzeros per byte string — the NNZ packing heuristic.
    pub chunk_nnz: usize,
    /// Object channel: write 0-byte `.nul` markers for empty sends instead
    /// of `.dat` files the receiver must GET (ablation lever; paper §III-C2).
    pub nul_markers: bool,
    /// Queue channel: pack messages into multi-message publish batches
    /// (ablation lever; `false` = one message per publish, inflating `S`).
    pub packing: bool,
    /// Hybrid channel: per-target payloads whose serialized
    /// (pre-compression) size exceeds this many bytes are spilled to
    /// object storage and replaced in-queue by a pointer record; at or
    /// below it they ride the queue inline. Defaults to one publish quota
    /// — anything that would not fit a single message spills.
    pub spill_threshold: usize,
    /// Retry policy for transient communication faults on the idempotent
    /// operations (publish / PUT / GET). Enabled by default; with no
    /// faults injected it changes nothing.
    pub retry: crate::retry::RetryPolicy,
}

impl Default for ChannelOptions {
    fn default() -> Self {
        ChannelOptions {
            send_threads: 8,
            long_poll_secs: 2.0,
            compression: true,
            chunk_nnz: 28_000,
            nul_markers: true,
            packing: true,
            spill_threshold: quota::MAX_PUBLISH_BYTES,
            retry: crate::retry::RetryPolicy::default(),
        }
    }
}

/// Single-thread payload-processing throughputs (bytes/second on one full
/// vCPU) — the CPU property behind the paper's serialization/compression
/// overheads, independent of the kernel-work compute model.
const ENCODE_BPS: f64 = 150e6;
const COMPRESS_BPS: f64 = 60e6;
const DECODE_BPS: f64 = 140e6;

/// Serializes (and optionally compresses) a block, charging the worker.
/// Returns the wire body. Shared by both channels.
pub(crate) fn encode_payload(
    ctx: &mut WorkerCtx,
    stats: &ChannelStats,
    rows: &SparseRows,
    compression: bool,
) -> Vec<u8> {
    let encoded = codec::encode(rows);
    ctx.charge_bytes(encoded.len() as u64, ENCODE_BPS);
    stats.add(&stats.bytes_precompress, encoded.len() as u64);
    if compression {
        let compressed = compress::compress(&encoded);
        ctx.charge_bytes(encoded.len() as u64, COMPRESS_BPS);
        compressed
    } else {
        encoded
    }
}

/// Decodes a wire body produced by [`encode_payload`], charging the worker.
pub(crate) fn decode_payload(
    ctx: &mut WorkerCtx,
    body: &[u8],
    compression: bool,
) -> Result<SparseRows, FaasError> {
    ctx.charge_bytes(body.len() as u64, DECODE_BPS);
    let encoded = if compression {
        compress::decompress(body).map_err(|e| FaasError::comm("decompress", "", e))?
    } else {
        body.to_vec()
    };
    codec::decode(&encoded).map_err(|e| FaasError::comm("decode", "", e))
}

/// Per-`(receiver, tag)` buffer of raw arrivals awaiting the tag's
/// completion. Physical dequeues land here with **no billing and no clock
/// movement**; when the receiver's tracker completes, the whole set is
/// processed in deterministic stamp order and the billed long-poll
/// sequence is reconstructed from the stamps
/// ([`SqsQueue::settle_receives`]) — so per-request timing and billing
/// never depend on how real threads happened to batch the arrivals.
/// Shared by the queue and hybrid channels (identical control planes).
#[derive(Default)]
pub(crate) struct TagInbox {
    /// `(stamp, source, total_chunks, wire body)` in arrival order.
    pub(crate) raw: Vec<(fsd_comm::VirtualTime, u32, u32, Vec<u8>)>,
    /// Chunk announcements not yet applied to the tag's tracker (filled
    /// when messages arrive while another tag is being received).
    pub(crate) unapplied: Vec<(u32, u32)>,
}

/// The shared receive prologue of the queue-fed channels: applies stashed
/// chunk announcements for `(me, want)` to `tracker`, then — while the
/// tag is still incomplete — takes one raw physical batch (attribute
/// parsing only; no billing, no clock movement) and stashes it per tag,
/// or bills one empty long poll when producers have genuinely not shown
/// up within the real-time grace (so a stuck run still walks toward its
/// virtual timeout).
pub(crate) fn poll_and_stash(
    queue: &SqsQueue,
    inboxes: &Mutex<HashMap<(u32, u32), TagInbox>>,
    stats: &ChannelStats,
    ctx: &mut WorkerCtx,
    opts: &ChannelOptions,
    (me, want): (u32, u32),
    tracker: &mut RecvTracker,
) {
    {
        let mut inboxes = inboxes.lock();
        if let Some(inbox) = inboxes.get_mut(&(me, want)) {
            for (source, total) in inbox.unapplied.drain(..) {
                tracker.record_chunk(source, total);
            }
        }
    }
    if tracker.done() {
        return;
    }
    let msgs = queue.take_visible(quota::MAX_BATCH_MESSAGES);
    if msgs.is_empty() {
        queue.empty_poll(ctx.clock_mut(), opts.long_poll_secs);
        stats.add(&stats.sqs_calls, 1);
        return;
    }
    let mut inboxes = inboxes.lock();
    for msg in msgs {
        let attrs = msg.message.attributes;
        if attrs.layer == want {
            tracker.record_chunk(attrs.source, attrs.total_chunks);
        } else {
            inboxes
                .entry((me, attrs.layer))
                .or_default()
                .unapplied
                .push((attrs.source, attrs.total_chunks));
        }
        inboxes.entry((me, attrs.layer)).or_default().raw.push((
            msg.available_at,
            attrs.source,
            attrs.total_chunks,
            msg.message.body,
        ));
    }
}

/// Packs `messages` into publish batches (≤ 10 messages, ≤ 256 KiB — or
/// one message per publish with packing disabled) and issues them to
/// `topic` over the modeled `send_threads` lane pool, joining the
/// caller's clock to the slowest lane and recording client-side stats.
/// The shared control-plane send path of the queue and hybrid channels.
pub(crate) fn publish_over_lanes(
    env: &CloudEnv,
    stats: &ChannelStats,
    ctx: &mut WorkerCtx,
    opts: &ChannelOptions,
    topic: usize,
    messages: Vec<Message>,
) -> Result<(), FaasError> {
    let max_batch = if opts.packing {
        quota::MAX_BATCH_MESSAGES
    } else {
        1
    };
    let mut batches: Vec<Vec<Message>> = Vec::new();
    let mut cur: Vec<Message> = Vec::new();
    let mut cur_bytes = 0usize;
    for msg in messages {
        let too_full = cur.len() == max_batch
            || (!cur.is_empty() && cur_bytes + msg.len() > quota::MAX_PUBLISH_BYTES);
        if too_full {
            batches.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
        cur_bytes += msg.len();
        cur.push(msg);
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    // Lane clocks inherit the worker's flow so publishes bill to the
    // request; the caller's clock joins the slowest lane.
    let lanes = opts.send_threads.max(1);
    let lane0 = VClock::starting_at(ctx.now()).with_flow(ctx.clock_mut().flow());
    let mut lane_clocks: Vec<VClock> = vec![lane0; lanes];
    for (i, batch) in batches.into_iter().enumerate() {
        let lane = &mut lane_clocks[i % lanes];
        let bytes: u64 = batch.iter().map(|m| m.len() as u64).sum();
        let n_msgs = batch.len() as u64;
        // A faulted publish bills its requests but delivers nothing, so
        // republishing the identical batch is idempotent (no duplicate
        // deliveries); each failed attempt has already advanced the lane.
        let (res, retries) = opts.retry.run(lane, |lane| {
            env.pubsub().publish_batch(topic, lane, batch.clone())
        });
        stats.add(&stats.retries, retries);
        let billed = res.map_err(|e| FaasError::comm("publish", topic_name(topic), e))?;
        stats.add(&stats.sns_billed, billed);
        stats.add(&stats.sns_batches, 1);
        stats.add(&stats.messages, n_msgs);
        stats.add(&stats.bytes_sent, bytes);
    }
    let slowest = lane_clocks.iter().map(|c| c.now()).max().expect("≥1 lane");
    ctx.clock_mut().observe(slowest);
    Ok(())
}

/// The pub-sub/queueing channel. One instance serves one request flow:
/// its queues and filter-policy subscriptions are namespaced by the flow
/// id, so concurrent requests share the region's topics without
/// cross-delivery or shared mutable state.
pub struct QueueChannel {
    env: Arc<CloudEnv>,
    n_workers: u32,
    flow: u64,
    opts: ChannelOptions,
    queues: Vec<Arc<SqsQueue>>,
    stats: ChannelStats,
    /// Deferred arrivals: `(receiver, tag) → inbox`.
    inboxes: Mutex<HashMap<(u32, u32), TagInbox>>,
}

impl QueueChannel {
    /// Sets up a channel in the default flow (0) — single-request and test
    /// use. Serving code goes through [`QueueChannel::setup_scoped`].
    pub fn setup(env: Arc<CloudEnv>, n_workers: u32, opts: ChannelOptions) -> Arc<QueueChannel> {
        QueueChannel::setup_scoped(env, n_workers, opts, 0)
    }

    /// Pre-creates one queue per worker (named by flow and rank) and
    /// subscribes each to every topic with a `(flow, rank)` filter policy.
    /// Queue/topic infrastructure is pre-created offline in the paper and
    /// carries no idle cost, so setup is not billed.
    pub fn setup_scoped(
        env: Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<QueueChannel> {
        let mut queues = Vec::with_capacity(n_workers as usize);
        for m in 0..n_workers {
            let q = env.queue(&queue_name(flow, m));
            for t in 0..env.pubsub().n_topics() {
                env.pubsub()
                    .subscribe(t, flow, m, q.clone())
                    .expect("topic pre-created");
            }
            queues.push(q);
        }
        Arc::new(QueueChannel {
            env,
            n_workers,
            flow,
            opts,
            queues,
            stats: ChannelStats::new(),
            inboxes: Mutex::new(HashMap::new()),
        })
    }

    /// Client-side statistics (cost-model inputs).
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Worker count this channel was set up for.
    pub fn n_workers(&self) -> u32 {
        self.n_workers
    }

    /// The request flow this channel is scoped to.
    pub fn flow(&self) -> u64 {
        self.flow
    }

    /// Builds the byte-string chunk list for one target.
    fn chunks_for(&self, ctx: &mut WorkerCtx, rows: &SparseRows) -> Vec<Vec<u8>> {
        if rows.is_empty() {
            // An empty send still announces itself with one tiny message so
            // the receiver's tracker can complete the source.
            return vec![encode_payload(
                ctx,
                &self.stats,
                rows,
                self.opts.compression,
            )];
        }
        let mut bodies = Vec::new();
        // NNZ heuristic first, then a hard re-split on the byte cap.
        let mut pending: Vec<SparseRows> = rows.split_by_nnz(self.opts.chunk_nnz);
        while let Some(chunk) = pending.pop() {
            let body = encode_payload(ctx, &self.stats, &chunk, self.opts.compression);
            if body.len() > quota::MAX_PUBLISH_BYTES && chunk.n_rows() > 1 {
                // Rare: compression underperformed the heuristic; halve.
                let halves = chunk.split_by_nnz((chunk.nnz() / 2).max(1));
                pending.extend(halves);
                continue;
            }
            bodies.push(body);
        }
        bodies
    }
}

/// Canonical per-flow queue naming.
fn queue_name(flow: u64, rank: u32) -> String {
    format!("fsd-f{flow}-q{rank}")
}

impl FsiChannel for QueueChannel {
    fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Unsubscribes this flow's filter policies and removes its queues from
    /// the region.
    fn teardown(&self) {
        for m in 0..self.n_workers {
            for t in 0..self.env.pubsub().n_topics() {
                let _ = self.env.pubsub().unsubscribe(t, self.flow, m);
            }
            if let Some(q) = self.env.remove_queue(&queue_name(self.flow, m)) {
                q.purge();
            }
        }
    }

    fn send_layer(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        src: u32,
        sends: &[(u32, SparseRows)],
    ) -> Result<(), FaasError> {
        if sends.is_empty() {
            return Ok(());
        }
        // 1. Build all byte strings (Xsend_list in Algorithm 1).
        let mut messages: Vec<Message> = Vec::new();
        for (target, rows) in sends {
            let bodies = self.chunks_for(ctx, rows);
            let total_chunks = bodies.len() as u32;
            for body in bodies {
                messages.push(Message {
                    attributes: MessageAttributes {
                        flow: self.flow,
                        source: src,
                        target: *target,
                        layer: tag.encode(),
                        total_chunks,
                        batch: 0,
                    },
                    body,
                });
            }
        }
        // 2. Greedy batch packing + lane-clocked publishes (shared with
        //    the hybrid channel's control plane).
        let topic = src as usize % self.env.pubsub().n_topics();
        publish_over_lanes(&self.env, &self.stats, ctx, &self.opts, topic, messages)
    }

    fn receive_round(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        me: u32,
        tracker: &mut RecvTracker,
    ) -> Result<Vec<(u32, SparseRows)>, FaasError> {
        let want = tag.encode();
        // Shared prologue: apply early announcements, raw-take one
        // physical batch (every virtual effect — decode charges, poll
        // billing, clock joins — is deferred to the tag's completion so
        // it cannot depend on how the arrivals were batched in real
        // time), or bill one empty long poll on a genuine drought.
        poll_and_stash(
            &self.queues[me as usize],
            &self.inboxes,
            &self.stats,
            ctx,
            &self.opts,
            (me, want),
            tracker,
        );
        if !tracker.done() {
            return Ok(Vec::new());
        }
        // Tag complete: process the whole arrival set in deterministic
        // stamp order and settle the billed poll sequence from the stamps.
        let inbox = self.inboxes.lock().remove(&(me, want)).unwrap_or_default();
        let mut raw = inbox.raw;
        raw.sort_unstable_by_key(|m| (m.0, m.1, m.3.len()));
        let billing: Vec<(fsd_comm::VirtualTime, usize)> = raw
            .iter()
            .map(|(stamp, .., body)| (*stamp, body.len()))
            .collect();
        let mut out = Vec::new();
        for (_, source, _, body) in raw {
            let rows = decode_payload(ctx, &body, self.opts.compression)?;
            if !rows.is_empty() {
                out.push((source, rows));
            }
        }
        let rounds = self.queues[me as usize].settle_receives(
            ctx.clock_mut(),
            self.opts.long_poll_secs,
            &billing,
        );
        self.stats.add(&self.stats.sqs_calls, rounds);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::CloudConfig;
    use fsd_comm::VirtualTime;
    use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};

    fn with_ctx<T: Send + 'static>(
        env: Arc<CloudEnv>,
        body: impl FnOnce(&mut WorkerCtx) -> Result<T, FaasError> + Send + 'static,
    ) -> T {
        let platform = FaasPlatform::new(env, ComputeModel::default());
        platform
            .invoke(FunctionConfig::worker("t", 2048), VirtualTime::ZERO, body)
            .join()
            .expect("test body ok")
            .0
    }

    fn rows(ids: &[u32]) -> SparseRows {
        SparseRows::from_rows(
            4,
            ids.iter().map(|&i| (i, vec![0u32, 2], vec![1.0f32, 2.0])),
        )
    }

    #[test]
    fn send_receive_roundtrip() {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let ch = QueueChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        let sent = rows(&[3, 8]);
        let sent2 = sent.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, sent2)])
        });
        let got = with_ctx(env, move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1, sent);
    }

    #[test]
    fn empty_send_completes_tracker_without_rows() {
        let env = CloudEnv::new(CloudConfig::deterministic(2));
        let ch = QueueChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, SparseRows::new(4))])
        });
        let got = with_ctx(env, move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        assert!(got.is_empty());
    }

    #[test]
    fn large_blocks_split_into_multiple_chunks() {
        let env = CloudEnv::new(CloudConfig::deterministic(3));
        let opts = ChannelOptions {
            chunk_nnz: 8,
            ..ChannelOptions::default()
        };
        let ch = QueueChannel::setup(env.clone(), 2, opts);
        let ch2 = ch.clone();
        let big = SparseRows::from_rows(
            64,
            (0..32u32).map(|i| (i, (0..8u32).collect::<Vec<_>>(), vec![1.5f32; 8])),
        );
        let big2 = big.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(1), 0, &[(1, big2)])
        });
        assert!(
            ch.stats().snapshot().messages >= 4,
            "NNZ heuristic did not chunk"
        );
        let got = with_ctx(env, move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(1), 1, &mut tracker)
        });
        let mut merged = SparseRows::new(64);
        for (_, b) in got {
            merged.merge(&b);
        }
        assert_eq!(merged, big);
    }

    #[test]
    fn early_arrivals_are_stashed_not_lost() {
        let env = CloudEnv::new(CloudConfig::deterministic(4));
        let ch = QueueChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch_send = ch.clone();
        // Sender ships layer 0 AND layer 1 before the receiver polls at all.
        with_ctx(env.clone(), move |ctx| {
            ch_send.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[1]))])?;
            ch_send.send_layer(ctx, Tag::Layer(1), 0, &[(1, rows(&[2]))])
        });
        let ch_recv = ch.clone();
        let (l0, l1) = with_ctx(env, move |ctx| {
            let mut t0 = RecvTracker::expecting([0u32]);
            let l0 = ch_recv.receive_all(ctx, Tag::Layer(0), 1, &mut t0)?;
            let mut t1 = RecvTracker::expecting([0u32]);
            let l1 = ch_recv.receive_all(ctx, Tag::Layer(1), 1, &mut t1)?;
            Ok((l0, l1))
        });
        assert_eq!(l0[0].1.ids(), &[1]);
        assert_eq!(l1[0].1.ids(), &[2]);
    }

    #[test]
    fn batches_pack_up_to_ten_messages() {
        let env = CloudEnv::new(CloudConfig::deterministic(5));
        let ch = QueueChannel::setup(env.clone(), 12, ChannelOptions::default());
        let ch2 = ch.clone();
        // 11 small sends → 11 messages → 2 publish batches (10 + 1).
        let sends: Vec<(u32, SparseRows)> = (1..12u32).map(|t| (t, rows(&[t]))).collect();
        with_ctx(env, move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &sends)
        });
        let snap = ch.stats().snapshot();
        assert_eq!(snap.messages, 11);
        assert_eq!(snap.sns_batches, 2);
        assert_eq!(snap.sns_billed, 2, "small batches bill one request each");
    }

    #[test]
    fn client_stats_match_service_meter() {
        let env = CloudEnv::new(CloudConfig::deterministic(6));
        let ch = QueueChannel::setup(env.clone(), 3, ChannelOptions::default());
        let ch2 = ch.clone();
        let sends: Vec<(u32, SparseRows)> = vec![(1, rows(&[0, 5])), (2, rows(&[7]))];
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &sends)
        });
        let ch3 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            let mut t = RecvTracker::expecting([0u32]);
            ch3.receive_all(ctx, Tag::Layer(0), 1, &mut t)
        });
        let client = ch.stats().snapshot();
        let service = env.snapshot();
        assert_eq!(client.sns_billed, service.sns_publish_requests);
        assert_eq!(client.bytes_sent, service.sns_delivered_bytes);
        assert_eq!(
            client.messages,
            service.sqs_messages + 1 /* undelivered to w2 */
        );
    }

    #[test]
    fn scoped_channels_are_isolated_per_flow() {
        // Two channels over the same environment and worker ranks, distinct
        // flows: each receiver sees only its own flow's payloads.
        let env = CloudEnv::new(CloudConfig::deterministic(7));
        let a = QueueChannel::setup_scoped(env.clone(), 2, ChannelOptions::default(), 1);
        let b = QueueChannel::setup_scoped(env.clone(), 2, ChannelOptions::default(), 2);
        let (a2, b2) = (a.clone(), b.clone());
        with_ctx(env.clone(), move |ctx| {
            a2.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[1]))])?;
            b2.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[2]))])
        });
        let (a3, b3) = (a.clone(), b.clone());
        let (got_a, got_b) = with_ctx(env.clone(), move |ctx| {
            let mut ta = RecvTracker::expecting([0u32]);
            let ga = a3.receive_all(ctx, Tag::Layer(0), 1, &mut ta)?;
            let mut tb = RecvTracker::expecting([0u32]);
            let gb = b3.receive_all(ctx, Tag::Layer(0), 1, &mut tb)?;
            Ok((ga, gb))
        });
        assert_eq!(got_a[0].1.ids(), &[1], "flow 1 received flow 2's rows");
        assert_eq!(got_b[0].1.ids(), &[2], "flow 2 received flow 1's rows");

        // Teardown releases exactly this flow's resources.
        assert_eq!(env.queue_count(), 4);
        a.teardown();
        assert_eq!(env.queue_count(), 2);
        b.teardown();
        assert_eq!(env.queue_count(), 0);
        for t in 0..env.pubsub().n_topics() {
            assert_eq!(env.pubsub().subscription_count(t), 0);
        }
    }
}
