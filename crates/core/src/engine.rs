//! Public request/report types of the serving API.
//!
//! The engine logic itself lives in [`crate::service::FsdService`]; this
//! module defines what goes in (requests, [`EngineConfig`]) and what comes
//! out ([`InferenceReport`]).

use crate::cost::CostBreakdown;
use crate::queue_channel::ChannelOptions;
use fsd_comm::{CloudConfig, MeterSnapshot, VirtualTime};
use fsd_faas::{ComputeModel, LambdaSnapshot, MAX_MEMORY_MB};
use fsd_partition::PartitionScheme;
use fsd_sparse::SparseRows;

use crate::stats::ChannelStatsSnapshot;

/// Which FSD-Inference variant executes a request (paper §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Single instance, no communication.
    Serial,
    /// Pub-sub/queueing channel (FSI Algorithm 1).
    Queue,
    /// Object-storage channel (FSI Algorithm 2).
    Object,
    /// Queue control plane with per-target payloads above
    /// `ChannelOptions::spill_threshold` spilled to object storage and
    /// dereferenced through in-queue pointer records.
    Hybrid,
    /// FMI-style direct exchange: NAT-punched pairwise connections
    /// between workers, zero per-message API cost after the handshake.
    Direct,
    /// Per-request routing by the Section IV-C recommendation rules: the
    /// service picks Serial/Direct/Queue/Hybrid/Object from the model
    /// size and the estimated per-pair payload volume of this request.
    Auto,
}

impl Variant {
    /// Every variant, in declaration order. Compile-time companion of the
    /// enum: registry assembly ([`crate::provider::ChannelRegistry::with_builtins`])
    /// and exhaustiveness-sensitive sweeps iterate this so their coverage
    /// can never drift from the enum definition. Keep in sync when adding
    /// a variant — the `variant-exhaustive` lint flags every match site.
    pub const ALL: [Variant; 6] = [
        Variant::Serial,
        Variant::Queue,
        Variant::Object,
        Variant::Hybrid,
        Variant::Direct,
        Variant::Auto,
    ];

    /// The channel-provider name this variant runs on; `None` for variants
    /// that use no communication channel (Serial) or that resolve into
    /// another variant first (Auto).
    pub fn channel_name(self) -> Option<&'static str> {
        match self {
            Variant::Serial | Variant::Auto => None,
            Variant::Queue => Some("queue"),
            Variant::Object => Some("object"),
            Variant::Hybrid => Some("hybrid"),
            Variant::Direct => Some("direct"),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Serial => write!(f, "FSD-Inf-Serial"),
            Variant::Queue => write!(f, "FSD-Inf-Queue"),
            Variant::Object => write!(f, "FSD-Inf-Object"),
            Variant::Hybrid => write!(f, "FSD-Inf-Hybrid"),
            Variant::Direct => write!(f, "FSD-Inf-Direct"),
            Variant::Auto => write!(f, "FSD-Inf-Auto"),
        }
    }
}

/// How a request's worker tree came to exist (reported per request so
/// callers, schedulers and benches can split latency by path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchPath {
    /// The request paid the full launch bill: coordinator invoke + cold
    /// start, the hierarchical `launch_rounds(P, b)` tree invocations and
    /// per-worker weight loads (also reported by Serial runs and any
    /// request of a service without a warm pool). With
    /// [`EngineConfig::stream_weights`] the bill shrinks — instances are
    /// provisioned flat and weights are multicast/cached instead of
    /// independently fetched — but the path still reports `ColdStart`.
    ColdStart,
    /// The request was routed into an already-launched, weights-resident
    /// warm tree: no invocations, no cold starts, no launch rounds, no
    /// weight loads — one control-plane hop.
    WarmHit,
}

impl std::fmt::Display for LaunchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchPath::ColdStart => write!(f, "cold-start"),
            LaunchPath::WarmHit => write!(f, "warm-hit"),
        }
    }
}

/// Engine configuration (the raw knobs behind `ServiceBuilder`).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Simulated cloud region parameters.
    pub cloud: CloudConfig,
    /// FaaS compute-time model.
    pub compute: ComputeModel,
    /// Channel tuning (threads, long-poll wait, compression, chunking).
    pub channel: ChannelOptions,
    /// Launch-tree branching factor.
    pub branching: usize,
    /// Partitioning scheme for distributed variants.
    pub scheme: PartitionScheme,
    /// Seed for partitioning.
    pub seed: u64,
    /// Memory for the FSD-Inf-Serial instance (defaults to Lambda's
    /// maximum, as in the paper; tests lower it to exercise OOM paths).
    pub serial_memory_mb: u32,
    /// λScale-style cold-start weight streaming: when `true`, a cold tree
    /// launch provisions all `P` instances flat (FaaSNet-style — the tree
    /// distributes *state*, not invocations), rank 0 fetches every
    /// partition's weight blocks once and multicasts them down the launch
    /// tree over the weight fabric, descendants decode layers lazily as
    /// compute reaches them (execute-while-load), and fetched blocks are
    /// kept in the service-wide [`crate::WeightCache`]. `false` (the
    /// default) keeps the original independent per-worker loads — and
    /// their bit-stable timing — untouched.
    pub stream_weights: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cloud: CloudConfig::default(),
            compute: ComputeModel::default(),
            channel: ChannelOptions::default(),
            branching: 4,
            scheme: PartitionScheme::Hgp,
            seed: 0,
            serial_memory_mb: MAX_MEMORY_MB,
            stream_weights: false,
        }
    }
}

impl EngineConfig {
    /// Jitter-free configuration for tests and validation runs.
    pub fn deterministic(seed: u64) -> EngineConfig {
        EngineConfig {
            cloud: CloudConfig::deterministic(seed),
            seed,
            ..EngineConfig::default()
        }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Execution variant ([`Variant::Auto`] routes per request).
    pub variant: Variant,
    /// Worker count `P` (ignored for Serial).
    pub workers: u32,
    /// Per-worker memory MB (Serial uses the 10 GB maximum, as the paper).
    pub memory_mb: u32,
    /// The input batch.
    pub inputs: SparseRows,
}

/// A request carrying several successive batches, processed by one worker
/// tree with a SYNC between batches (paper Fig. 1) — launch and weight
/// loads amortize across the batches.
#[derive(Debug, Clone)]
pub struct BatchedRequest {
    /// Execution variant ([`Variant::Auto`] routes per request).
    pub variant: Variant,
    /// Worker count `P` (ignored for Serial).
    pub workers: u32,
    /// Per-worker memory MB.
    pub memory_mb: u32,
    /// The successive input batches.
    pub batches: Vec<SparseRows>,
}

/// Per-worker runtime facts extracted from invocation reports.
#[derive(Debug, Clone, Copy)]
pub struct WorkerReport {
    /// Worker rank within the tree (0 = root/coordinator).
    pub rank: u32,
    /// Virtual time the worker body began executing.
    pub started: VirtualTime,
    /// Virtual time the worker body returned.
    pub finished: VirtualTime,
    /// Billed duration in milliseconds (Lambda rounds up per invocation).
    pub billed_ms: u64,
    /// Peak resident bytes observed by the memory tracker.
    pub peak_mem_bytes: usize,
    /// Configured instance memory in MB.
    pub memory_mb: u32,
}

/// Everything measured about one inference run.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// The variant that executed (an [`Variant::Auto`] request reports the
    /// variant it resolved to).
    pub variant: Variant,
    /// Worker count `P` the request ran with.
    pub workers: u32,
    /// Whether the run paid the launch bill ([`LaunchPath::ColdStart`]) or
    /// was routed into a warm tree ([`LaunchPath::WarmHit`]).
    pub launch: LaunchPath,
    /// Virtual time the request arrived — the origin of the measurement
    /// window [`InferenceReport::latency`] is derived from.
    pub arrival: VirtualTime,
    /// End-to-end query latency: request arrival → root holds the result.
    pub latency: VirtualTime,
    /// Per-worker runtime facts, indexed by rank.
    pub per_worker: Vec<WorkerReport>,
    /// Service-side billing events of *this request only*: the meters
    /// bucket events by the request's flow id (carried on every worker's
    /// clock), so concurrent neighbors never leak into this window.
    pub comm: MeterSnapshot,
    /// Lambda billing of this request only (same flow-scoped window).
    pub lambda: LambdaSnapshot,
    /// Client-side channel statistics (request-local).
    pub client: ChannelStatsSnapshot,
    /// Cost from the service meters ("Cost & Usage report").
    pub cost_actual: CostBreakdown,
    /// Cost from the application's own metrics (§VI-F validation).
    pub cost_predicted: CostBreakdown,
    /// The inference result of the first batch.
    #[deprecated(since = "0.2.0", note = "use first_output() or the outputs vec")]
    pub output: SparseRows,
    /// Results of every batch, in order (never empty).
    pub outputs: Vec<SparseRows>,
    /// Total samples across batches.
    pub samples: usize,
    /// Total kernel work units charged.
    pub work_done: u64,
}

impl InferenceReport {
    /// The first batch's inference result (single-batch requests' result).
    pub fn first_output(&self) -> &SparseRows {
        &self.outputs[0]
    }

    /// End-to-end per-sample runtime in milliseconds (Table II metric).
    pub fn per_sample_ms(&self) -> f64 {
        self.latency.as_millis_f64() / self.samples.max(1) as f64
    }

    /// Per-sample cost in dollars (Figure 6 metric).
    pub fn per_sample_cost(&self) -> f64 {
        self.cost_actual.total() / self.samples.max(1) as f64
    }

    /// Average worker runtime `T̄` in seconds (cost model Eq. 4).
    pub fn avg_worker_runtime_s(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 0.0;
        }
        self.per_worker
            .iter()
            .map(|w| (w.finished.as_micros() - w.started.as_micros()) as f64 / 1e6)
            .sum::<f64>()
            / self.per_worker.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_channel_names() {
        assert_eq!(Variant::Queue.channel_name(), Some("queue"));
        assert_eq!(Variant::Object.channel_name(), Some("object"));
        assert_eq!(Variant::Hybrid.channel_name(), Some("hybrid"));
        assert_eq!(Variant::Direct.channel_name(), Some("direct"));
        assert_eq!(Variant::Serial.channel_name(), None);
        assert_eq!(Variant::Auto.channel_name(), None);
    }

    #[test]
    fn variant_displays() {
        assert_eq!(Variant::Auto.to_string(), "FSD-Inf-Auto");
        assert_eq!(Variant::Queue.to_string(), "FSD-Inf-Queue");
        assert_eq!(Variant::Hybrid.to_string(), "FSD-Inf-Hybrid");
        assert_eq!(Variant::Direct.to_string(), "FSD-Inf-Direct");
    }

    #[test]
    fn launch_path_displays() {
        assert_eq!(LaunchPath::ColdStart.to_string(), "cold-start");
        assert_eq!(LaunchPath::WarmHit.to_string(), "warm-hit");
    }
}
