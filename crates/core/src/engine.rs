//! The FSD-Inference engine: staging, launching, measuring.

use crate::artifacts::{stage_full_model, stage_inputs, stage_partitioned_model};
use crate::channel::FsiChannel;
use crate::cost::{CostBreakdown, CostModel};
use crate::object_channel::ObjectChannel;
use crate::queue_channel::{ChannelOptions, QueueChannel};
use crate::stats::ChannelStatsSnapshot;
use crate::worker::{run_serial, run_worker, WorkerOutput, WorkerParams};
use fsd_comm::{CloudConfig, CloudEnv, MeterSnapshot, VirtualTime};
use fsd_faas::{
    ComputeModel, FaasError, FaasPlatform, FunctionConfig, InvocationReport, LambdaSnapshot,
    MAX_MEMORY_MB,
};
use fsd_model::SparseDnn;
use fsd_partition::{partition_model, CommPlan, Partition, PartitionScheme};
use fsd_sparse::SparseRows;
use std::collections::HashMap;
use std::sync::Arc;

/// Which FSD-Inference variant executes a request (paper §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Single instance, no communication.
    Serial,
    /// Pub-sub/queueing channel (FSI Algorithm 1).
    Queue,
    /// Object-storage channel (FSI Algorithm 2).
    Object,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Serial => write!(f, "FSD-Inf-Serial"),
            Variant::Queue => write!(f, "FSD-Inf-Queue"),
            Variant::Object => write!(f, "FSD-Inf-Object"),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Simulated cloud region parameters.
    pub cloud: CloudConfig,
    /// FaaS compute-time model.
    pub compute: ComputeModel,
    /// Channel tuning (threads, long-poll wait, compression, chunking).
    pub channel: ChannelOptions,
    /// Launch-tree branching factor.
    pub branching: usize,
    /// Partitioning scheme for distributed variants.
    pub scheme: PartitionScheme,
    /// Seed for partitioning.
    pub seed: u64,
    /// Memory for the FSD-Inf-Serial instance (defaults to Lambda's
    /// maximum, as in the paper; tests lower it to exercise OOM paths).
    pub serial_memory_mb: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cloud: CloudConfig::default(),
            compute: ComputeModel::default(),
            channel: ChannelOptions::default(),
            branching: 4,
            scheme: PartitionScheme::Hgp,
            seed: 0,
            serial_memory_mb: MAX_MEMORY_MB,
        }
    }
}

impl EngineConfig {
    /// Jitter-free configuration for tests and validation runs.
    pub fn deterministic(seed: u64) -> EngineConfig {
        EngineConfig { cloud: CloudConfig::deterministic(seed), seed, ..EngineConfig::default() }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Execution variant.
    pub variant: Variant,
    /// Worker count `P` (ignored for Serial).
    pub workers: u32,
    /// Per-worker memory MB (Serial uses the 10 GB maximum, as the paper).
    pub memory_mb: u32,
    /// The input batch.
    pub inputs: SparseRows,
}

/// A request carrying several successive batches, processed by one worker
/// tree with a SYNC between batches (paper Fig. 1) — launch and weight
/// loads amortize across the batches.
#[derive(Debug, Clone)]
pub struct BatchedRequest {
    /// Execution variant.
    pub variant: Variant,
    /// Worker count `P` (ignored for Serial).
    pub workers: u32,
    /// Per-worker memory MB.
    pub memory_mb: u32,
    /// The successive input batches.
    pub batches: Vec<SparseRows>,
}

/// Per-worker runtime facts extracted from invocation reports.
#[derive(Debug, Clone, Copy)]
pub struct WorkerReport {
    pub rank: u32,
    pub started: VirtualTime,
    pub finished: VirtualTime,
    pub billed_ms: u64,
    pub peak_mem_bytes: usize,
    pub memory_mb: u32,
}

/// Everything measured about one inference run.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    pub variant: Variant,
    pub workers: u32,
    /// End-to-end query latency: request arrival → root holds the result.
    pub latency: VirtualTime,
    pub per_worker: Vec<WorkerReport>,
    /// Service-side billing events during the run.
    pub comm: MeterSnapshot,
    /// Lambda billing during the run.
    pub lambda: LambdaSnapshot,
    /// Client-side channel statistics.
    pub client: ChannelStatsSnapshot,
    /// Cost from the service meters ("Cost & Usage report").
    pub cost_actual: CostBreakdown,
    /// Cost from the application's own metrics (§VI-F validation).
    pub cost_predicted: CostBreakdown,
    /// The inference result of the first batch (single-batch requests).
    pub output: SparseRows,
    /// Results of every batch, in order.
    pub outputs: Vec<SparseRows>,
    /// Total samples across batches.
    pub samples: usize,
    /// Total kernel work units charged.
    pub work_done: u64,
}

impl InferenceReport {
    /// End-to-end per-sample runtime in milliseconds (Table II metric).
    pub fn per_sample_ms(&self) -> f64 {
        self.latency.as_millis_f64() / self.samples.max(1) as f64
    }

    /// Per-sample cost in dollars (Figure 6 metric).
    pub fn per_sample_cost(&self) -> f64 {
        self.cost_actual.total() / self.samples.max(1) as f64
    }

    /// Average worker runtime `T̄` in seconds (cost model Eq. 4).
    pub fn avg_worker_runtime_s(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 0.0;
        }
        self.per_worker
            .iter()
            .map(|w| (w.finished.as_micros() - w.started.as_micros()) as f64 / 1e6)
            .sum::<f64>()
            / self.per_worker.len() as f64
    }
}

/// The engine: owns the simulated region, the platform, and the staged
/// model artifacts.
pub struct FsdInference {
    env: Arc<CloudEnv>,
    platform: Arc<FaasPlatform>,
    dnn: Arc<SparseDnn>,
    cfg: EngineConfig,
    cost: CostModel,
    model_key: String,
    full_staged: bool,
    partitions: HashMap<u32, Arc<Partition>>,
    run_counter: u64,
}

impl FsdInference {
    /// Creates an engine for a model over a fresh simulated region.
    pub fn new(dnn: Arc<SparseDnn>, cfg: EngineConfig) -> FsdInference {
        let env = CloudEnv::new(cfg.cloud);
        let platform = FaasPlatform::new(env.clone(), cfg.compute);
        FsdInference {
            env,
            platform,
            dnn,
            cfg,
            cost: CostModel::default(),
            model_key: "model".to_string(),
            full_staged: false,
            partitions: HashMap::new(),
            run_counter: 0,
        }
    }

    /// The simulated environment (inspection/tests).
    pub fn env(&self) -> &Arc<CloudEnv> {
        &self.env
    }

    /// The model being served.
    pub fn dnn(&self) -> &Arc<SparseDnn> {
        &self.dnn
    }

    /// The partition used for `P` workers (preparing it if needed).
    pub fn partition(&mut self, p: u32) -> Arc<Partition> {
        self.prepare(p);
        self.partitions[&p].clone()
    }

    /// Recommends a variant for this model at parallelism `p`, from the
    /// Section IV-C rules: estimated per-pair payload volume (plan rows x
    /// typical row bytes) against the publish quota, and whether the model
    /// fits a single instance.
    pub fn recommend(&mut self, p: u32, est_bytes_per_row: usize) -> crate::recommend::Recommendation {
        let model_bytes = self.dnn.mem_bytes();
        if p <= 1 {
            return crate::recommend::Recommendation {
                variant: Variant::Serial,
                profile: crate::recommend::WorkloadProfile {
                    model_bytes,
                    workers: 1,
                    bytes_per_pair_layer: 0,
                },
            };
        }
        self.prepare(p);
        let part = self.partitions[&p].clone();
        let plan = fsd_partition::CommPlan::build(&self.dnn, &part);
        let pairs = plan.total_pairs().max(1);
        let bytes_per_pair_layer =
            (plan.total_row_sends() as usize * est_bytes_per_row) / pairs as usize;
        let profile = crate::recommend::WorkloadProfile { model_bytes, workers: p, bytes_per_pair_layer };
        crate::recommend::Recommendation {
            variant: crate::recommend::recommend_variant(&profile),
            profile,
        }
    }

    /// Offline step: partition for `P` workers and stage the artifacts.
    /// Idempotent; done "a priori, not per request" (paper §III).
    pub fn prepare(&mut self, p: u32) {
        if p <= 1 {
            if !self.full_staged {
                stage_full_model(&self.env, &self.model_key, &self.dnn);
                self.full_staged = true;
            }
            return;
        }
        if self.partitions.contains_key(&p) {
            return;
        }
        let part = partition_model(&self.dnn, p as usize, self.cfg.scheme, self.cfg.seed);
        let plan = CommPlan::build(&self.dnn, &part);
        stage_partitioned_model(&self.env, &self.model_key, &self.dnn, &part, &plan);
        self.partitions.insert(p, Arc::new(part));
    }

    /// Runs one single-batch inference request end to end.
    pub fn run(&mut self, req: &InferenceRequest) -> Result<InferenceReport, FaasError> {
        self.run_batched(&BatchedRequest {
            variant: req.variant,
            workers: req.workers,
            memory_mb: req.memory_mb,
            batches: vec![req.inputs.clone()],
        })
    }

    /// Runs several successive batches through one worker tree (paper
    /// Fig. 1): the tree is launched once, weights are loaded once, and a
    /// barrier + reduce closes each batch.
    pub fn run_batched(&mut self, req: &BatchedRequest) -> Result<InferenceReport, FaasError> {
        assert!(!req.batches.is_empty(), "need at least one batch");
        let p = if req.variant == Variant::Serial { 1 } else { req.workers.max(1) };
        self.prepare(p);
        self.run_counter += 1;
        let input_key = format!("inputs/run{}", self.run_counter);
        let partition = self.partitions.get(&p).cloned();
        for (b, batch) in req.batches.iter().enumerate() {
            stage_inputs(&self.env, &format!("{input_key}/b{b}"), batch, partition.as_deref());
        }
        self.env.reset_channels();

        // Measurement window starts after offline staging.
        let comm_before = self.env.snapshot();
        let lambda_before = self.platform.lambda_snapshot();
        let samples: usize = req.batches.iter().map(|b| b.width()).sum();
        let widths: Vec<usize> = req.batches.iter().map(|b| b.width()).collect();

        let (root_out, reports, client) = match req.variant {
            Variant::Serial => {
                let (out, report) = self.launch_serial(&input_key, widths.len())?;
                (out, vec![(0u32, report)], ChannelStatsSnapshot::default())
            }
            Variant::Queue => {
                let channel = QueueChannel::setup(self.env.clone(), p, self.cfg.channel);
                let r = self.launch_tree(channel.clone(), p, req.memory_mb, &input_key, &widths)?;
                (r.0, r.1, channel.stats().snapshot())
            }
            Variant::Object => {
                let channel = ObjectChannel::setup(self.env.clone(), p, self.cfg.channel);
                let r = self.launch_tree(channel.clone(), p, req.memory_mb, &input_key, &widths)?;
                (r.0, r.1, channel.stats().snapshot())
            }
        };

        let comm = self.env.snapshot().since(&comm_before);
        let lambda_after = self.platform.lambda_snapshot();
        let lambda = LambdaSnapshot {
            invocations: lambda_after.invocations - lambda_before.invocations,
            mb_ms: lambda_after.mb_ms - lambda_before.mb_ms,
        };
        let per_worker: Vec<WorkerReport> = reports
            .iter()
            .map(|(rank, r)| WorkerReport {
                rank: *rank,
                started: r.started,
                finished: r.finished,
                billed_ms: r.billed_ms,
                peak_mem_bytes: r.peak_mem_bytes,
                memory_mb: r.memory_mb,
            })
            .collect();
        let latency = per_worker
            .iter()
            .map(|w| w.finished)
            .max()
            .unwrap_or(VirtualTime::ZERO);
        let outputs = root_out.final_batches.ok_or_else(|| {
            FaasError::Comm("root worker returned no final output".to_string())
        })?;
        let output = outputs.first().cloned().unwrap_or_else(|| SparseRows::new(0));
        let cost_actual = self.cost.actual(&lambda, &comm);
        let cost_predicted =
            self.cost.predicted(&lambda, &client, root_out.artifact_gets, 0);
        Ok(InferenceReport {
            variant: req.variant,
            workers: p,
            latency,
            per_worker,
            comm,
            lambda,
            client,
            cost_actual,
            cost_predicted,
            output,
            outputs,
            samples,
            work_done: root_out.work_done,
        })
    }

    /// Coordinator (128 MB) + serial worker at the maximum memory.
    fn launch_serial(
        &self,
        input_key: &str,
        n_batches: usize,
    ) -> Result<(WorkerOutput, InvocationReport), FaasError> {
        let spec = *self.dnn.spec();
        let model_key = self.model_key.clone();
        let input_key = input_key.to_string();
        let platform = self.platform.clone();
        let serial_memory = self.cfg.serial_memory_mb;
        let coordinator = self.platform.invoke(
            FunctionConfig::coordinator(),
            VirtualTime::ZERO,
            move |ctx| {
                ctx.charge_work(10_000); // request parsing
                let at = ctx.now();
                let inv = platform.invoke(
                    FunctionConfig::worker("fsd-serial", serial_memory),
                    at,
                    move |worker_ctx| {
                        run_serial(worker_ctx, &model_key, &input_key, &spec, n_batches)
                    },
                );
                inv.join()
            },
        );
        let ((out, report), _coord_report) = coordinator.join()?;
        Ok((out, report))
    }

    /// Coordinator + hierarchical worker tree over a channel.
    fn launch_tree(
        &self,
        channel: Arc<dyn FsiChannel>,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
    ) -> Result<(WorkerOutput, Vec<(u32, InvocationReport)>), FaasError> {
        let params = WorkerParams {
            n_workers: p,
            branching: self.cfg.branching,
            memory_mb,
            model_key: self.model_key.clone(),
            input_key: input_key.to_string(),
            spec: *self.dnn.spec(),
            batch_widths: widths.to_vec(),
        };
        let platform = self.platform.clone();
        let coordinator = self.platform.invoke(
            FunctionConfig::coordinator(),
            VirtualTime::ZERO,
            move |ctx| {
                ctx.charge_work(10_000); // request parsing
                let at = ctx.now();
                let inv = platform.invoke(
                    FunctionConfig::worker("fsd-worker-0", params.memory_mb),
                    at,
                    move |worker_ctx| run_worker(worker_ctx, channel, 0, params),
                );
                inv.join()
            },
        );
        let ((root_out, root_report), _coord) = coordinator.join()?;
        let mut reports = vec![(0u32, root_report)];
        reports.extend(root_out.subtree_reports.iter().copied());
        Ok((root_out, reports))
    }
}
