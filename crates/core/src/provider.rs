//! Channel providers: uniform construction of communication backends.
//!
//! The engine used to hard-match `Variant::Queue`/`Variant::Object` onto
//! concrete channel constructors; adding a transport meant editing the
//! engine. [`ChannelProvider`] inverts that: each backend registers under a
//! name in a [`ChannelRegistry`], the service looks the name up per request
//! and provisions a **request-scoped** channel instance (FMI-style uniform
//! channel interface). Custom transports plug in through
//! `ServiceBuilder::register_channel` without touching the request path.

use crate::channel::FsiChannel;
use crate::direct_channel::DirectChannel;
use crate::engine::Variant;
use crate::hybrid_channel::HybridChannel;
use crate::object_channel::ObjectChannel;
use crate::queue_channel::{ChannelOptions, QueueChannel};
use fsd_comm::CloudEnv;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds request-scoped channel instances for one transport backend.
pub trait ChannelProvider: Send + Sync {
    /// Registry name (`"queue"`, `"object"`, …).
    fn name(&self) -> &'static str;

    /// Creates a channel for one request: `n_workers` ranks, tuned by
    /// `opts`, with every service resource namespaced by `flow`.
    fn provision(
        &self,
        env: &Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<dyn FsiChannel>;
}

/// Provider for the pub-sub/queueing channel (FSI Algorithm 1).
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueChannelProvider;

impl ChannelProvider for QueueChannelProvider {
    fn name(&self) -> &'static str {
        "queue"
    }

    fn provision(
        &self,
        env: &Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<dyn FsiChannel> {
        QueueChannel::setup_scoped(env.clone(), n_workers, opts, flow)
    }
}

/// Provider for the object-storage channel (FSI Algorithm 2).
#[derive(Debug, Default, Clone, Copy)]
pub struct ObjectChannelProvider;

impl ChannelProvider for ObjectChannelProvider {
    fn name(&self) -> &'static str {
        "object"
    }

    fn provision(
        &self,
        env: &Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<dyn FsiChannel> {
        ObjectChannel::setup_scoped(env.clone(), n_workers, opts, flow)
    }
}

/// Provider for the hybrid channel: queue control plane with payloads
/// above [`ChannelOptions::spill_threshold`] spilled to object storage.
#[derive(Debug, Default, Clone, Copy)]
pub struct HybridChannelProvider;

impl ChannelProvider for HybridChannelProvider {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn provision(
        &self,
        env: &Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<dyn FsiChannel> {
        HybridChannel::setup_scoped(env.clone(), n_workers, opts, flow)
    }
}

/// Provider for the FMI-style direct-exchange channel (NAT-punched
/// pairwise connections, zero per-message API cost).
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectChannelProvider;

impl ChannelProvider for DirectChannelProvider {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn provision(
        &self,
        env: &Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<dyn FsiChannel> {
        DirectChannel::setup_scoped(env.clone(), n_workers, opts, flow)
    }
}

/// The provider registry consulted by the service per request.
pub struct ChannelRegistry {
    providers: HashMap<&'static str, Arc<dyn ChannelProvider>>,
}

impl ChannelRegistry {
    /// An empty registry.
    pub fn empty() -> ChannelRegistry {
        ChannelRegistry {
            providers: HashMap::new(),
        }
    }

    /// A registry holding the built-in transports, assembled by iterating
    /// [`Variant::ALL`] with an exhaustive match: a new variant with a
    /// channel fails to compile (and fails the `variant-exhaustive` lint)
    /// right here until its provider is wired in, so the registry list can
    /// never drift from the enum.
    pub fn with_builtins() -> ChannelRegistry {
        let mut r = ChannelRegistry::empty();
        for v in Variant::ALL {
            let provider: Option<Arc<dyn ChannelProvider>> = match v {
                Variant::Serial | Variant::Auto => None,
                Variant::Queue => Some(Arc::new(QueueChannelProvider)),
                Variant::Object => Some(Arc::new(ObjectChannelProvider)),
                Variant::Hybrid => Some(Arc::new(HybridChannelProvider)),
                Variant::Direct => Some(Arc::new(DirectChannelProvider)),
            };
            if let Some(p) = provider {
                debug_assert_eq!(
                    Some(p.name()),
                    v.channel_name(),
                    "provider registered under a name different from its variant's channel_name"
                );
                r.register(p);
            }
        }
        r
    }

    /// Registers (or replaces) a provider under its name.
    pub fn register(&mut self, provider: Arc<dyn ChannelProvider>) {
        self.providers.insert(provider.name(), provider);
    }

    /// Looks a provider up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn ChannelProvider>> {
        self.providers.get(name)
    }

    /// Registered provider names, sorted for stable diagnostics.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.providers.keys().copied().collect();
        names.sort_unstable();
        names
    }
}

impl Default for ChannelRegistry {
    fn default() -> ChannelRegistry {
        ChannelRegistry::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::CloudConfig;

    #[test]
    fn builtins_are_registered() {
        let r = ChannelRegistry::with_builtins();
        assert_eq!(r.names(), vec!["direct", "hybrid", "object", "queue"]);
        assert!(r.get("queue").is_some());
        assert!(r.get("object").is_some());
        assert!(r.get("hybrid").is_some());
        assert!(r.get("direct").is_some());
        assert!(r.get("warp").is_none());
    }

    #[test]
    fn providers_build_scoped_channels() {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let r = ChannelRegistry::with_builtins();
        let q = r
            .get("queue")
            .expect("queue")
            .provision(&env, 3, ChannelOptions::default(), 7);
        // Three queues created for flow 7, each subscribed on every topic.
        assert_eq!(env.queue_count(), 3);
        assert_eq!(env.pubsub().subscription_count(0), 3);
        q.teardown();
        assert_eq!(env.queue_count(), 0);
        assert_eq!(env.pubsub().subscription_count(0), 0);
        let _o = r
            .get("object")
            .expect("object")
            .provision(&env, 3, ChannelOptions::default(), 7);
    }

    #[test]
    fn hybrid_provider_leaks_nothing_on_teardown() {
        // The hybrid channel holds queue-side *and* object-side resources;
        // teardown must release both, leaving the region exactly as found.
        let env = CloudEnv::new(CloudConfig::deterministic(2));
        let r = ChannelRegistry::with_builtins();
        let h = r
            .get("hybrid")
            .expect("hybrid")
            .provision(&env, 4, ChannelOptions::default(), 9);
        assert_eq!(env.queue_count(), 4);
        for t in 0..env.pubsub().n_topics() {
            assert_eq!(env.pubsub().subscription_count(t), 4);
        }
        h.teardown();
        assert_eq!(env.queue_count(), 0, "hybrid queues leaked");
        for t in 0..env.pubsub().n_topics() {
            assert_eq!(
                env.pubsub().subscription_count(t),
                0,
                "hybrid subscriptions leaked on topic {t}"
            );
        }
        for i in 0..env.config().n_buckets {
            assert_eq!(
                env.object_store().object_count(&fsd_comm::bucket_name(i)),
                0,
                "hybrid objects leaked in bucket {i}"
            );
        }
    }

    #[test]
    fn registration_replaces_by_name() {
        let mut r = ChannelRegistry::empty();
        r.register(Arc::new(QueueChannelProvider));
        r.register(Arc::new(QueueChannelProvider));
        assert_eq!(r.names().len(), 1);
    }
}
