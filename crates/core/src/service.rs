//! [`FsdService`]: the thread-safe serving front end.
//!
//! Every request method takes `&self`, so one `Arc<FsdService>` can be
//! driven concurrently from many threads (λScale-style request-level
//! serving). The shared pieces are synchronized explicitly:
//!
//! * partition/staging caches live behind an `RwLock` (staged artifacts are
//!   immutable once written — concurrent requests only ever read them);
//! * the request counter is atomic and doubles as the **flow id** that
//!   namespaces all per-request service resources — input keys, queues,
//!   filter policies and object prefixes — so requests never share mutable
//!   channel state and nothing ever needs the old global
//!   `env.reset_channels()` wipe (which was a shared-state bug under
//!   concurrency);
//! * channels are provisioned per request through the
//!   [`ChannelRegistry`](crate::ChannelRegistry) and torn down when the
//!   request's worker tree has been joined.

use crate::artifacts::{stage_full_model, stage_inputs, stage_partitioned_model, ARTIFACT_BUCKET};
use crate::channel::FsiChannel;
use crate::cost::CostModel;
use crate::engine::{
    BatchedRequest, EngineConfig, InferenceReport, InferenceRequest, LaunchPath, Variant,
    WorkerReport,
};
use crate::error::FsdError;
use crate::health::{HealthBoard, HealthSnapshot};
use crate::pool::{SystemClock, TreePool, WallClock, WarmPoolConfig, WarmPoolStats};
use crate::provider::ChannelRegistry;
use crate::recommend::{self, Recommendation, WorkloadProfile};
use crate::stats::ChannelStatsSnapshot;
use crate::warm::{TreeKey, TreeParams, WorkItem, WorkerTree};
use crate::weight_cache::WeightCache;
use crate::worker::{run_serial, run_worker, WorkerOutput, WorkerParams};
use fsd_comm::{ApiClass, CloudEnv, FaultKind, MeterSnapshot, TargetedFault, VClock, VirtualTime};
use fsd_faas::{launch, FaasError, FaasPlatform, FunctionConfig, InvocationReport, LambdaSnapshot};
use fsd_model::SparseDnn;
use fsd_partition::{partition_model, CommPlan, Partition};
use fsd_sparse::codec;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Offline staging state shared by all requests (read-mostly).
#[derive(Default)]
struct StagedState {
    /// Whether the unpartitioned model artifacts are staged (Serial path).
    full_staged: bool,
    /// Partitions (and their communication plans) staged per worker
    /// count `P`.
    partitions: HashMap<u32, StagedPartition>,
}

/// One staged `P`-way partitioning: the partition plus the communication
/// plan built from it (cached so the recommender never rebuilds it on the
/// request path).
#[derive(Clone)]
struct StagedPartition {
    partition: Arc<Partition>,
    plan: Arc<CommPlan>,
}

/// The serving front end: owns the simulated region, the FaaS platform and
/// the staged model artifacts; accepts concurrent requests through `&self`.
///
/// Build one with [`ServiceBuilder`](crate::ServiceBuilder):
///
/// ```
/// use fsd_core::{InferenceRequest, ServiceBuilder, Variant};
/// use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
/// use std::sync::Arc;
///
/// let spec = DnnSpec { neurons: 64, layers: 3, nnz_per_row: 8,
///                      bias: -0.2, clip: 32.0, seed: 1 };
/// let dnn = Arc::new(generate_dnn(&spec));
/// let inputs = generate_inputs(64, &InputSpec::scaled(8, 1));
/// let expected = dnn.serial_inference(&inputs);
///
/// let service = Arc::new(ServiceBuilder::new(dnn).deterministic(1).build());
/// let report = service
///     .submit(&InferenceRequest { variant: Variant::Queue, workers: 3, memory_mb: 1024, inputs })
///     .unwrap();
/// assert_eq!(report.first_output(), &expected);
/// ```
pub struct FsdService {
    env: Arc<CloudEnv>,
    platform: Arc<FaasPlatform>,
    dnn: Arc<SparseDnn>,
    cfg: EngineConfig,
    cost: CostModel,
    model_key: String,
    registry: ChannelRegistry,
    state: RwLock<StagedState>,
    /// Serializes offline staging so a (model, P) pair is partitioned and
    /// written exactly once; requests that find it staged never take this.
    stage_lock: Mutex<()>,
    /// Request counter; its successor is the request's flow id.
    requests: AtomicU64,
    /// The warm-tree pool (`ServiceBuilder::warm_pool`); `None` keeps the
    /// original launch-per-request behavior. `Arc` so the background
    /// reaper thread can hold the pool without borrowing the service.
    pool: Option<Arc<TreePool>>,
    /// Per-transport error-rate scoreboard + circuit breakers; drives
    /// graceful degradation of [`Variant::Auto`] routing.
    health: HealthBoard,
    /// Whether a pool tree poisoned mid-request is immediately relaunched
    /// and re-parked (`ServiceBuilder::regenerate_poisoned`), billed to the
    /// unattributed flow like a pre-warm.
    regenerate_poisoned: bool,
    /// Process-wide weight-block cache for streamed cold starts
    /// (`EngineConfig::stream_weights`); idle — and never consulted —
    /// otherwise. Invalidated alongside the warm pool.
    weight_cache: Arc<WeightCache>,
    /// Bills accrued by request attempts that *failed* (AWS semantics:
    /// failed calls are billed). `finalize_report` folds each failed
    /// attempt's flow-scoped meters in here when it releases the flow, so
    /// the exact partition `global == Σ successful reports + failed bill`
    /// holds even under retries.
    failed_bill: Mutex<FailedAttemptBill>,
    /// The background wall-clock reaper, if one was requested; held only
    /// for its `Drop` (stop + join).
    _reaper: Option<Reaper>,
}

/// What failed request attempts have been billed service-wide: the comm
/// and Lambda meter totals harvested from failed attempts' flows. Together
/// with the per-request digests of successful reports this partitions the
/// global meters exactly — "failed attempts are billed; retries may add
/// calls but never double-count billing".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FailedAttemptBill {
    /// Comm-service billing harvested from failed attempts' flows.
    pub comm: MeterSnapshot,
    /// Lambda billing harvested from failed attempts' flows.
    pub lambda: LambdaSnapshot,
}

/// A background thread that periodically [`TreePool::reap`]s idle trees
/// by wall-clock TTL. Stopped (condvar-signalled, then joined) when the
/// service drops, so a service never leaks its reaper.
struct Reaper {
    stop: Arc<(Mutex<bool>, parking_lot::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reaper {
    fn spawn(pool: Arc<TreePool>, interval: std::time::Duration) -> Reaper {
        let stop = Arc::new((Mutex::new(false), parking_lot::Condvar::new()));
        let stop_c = stop.clone();
        let handle = std::thread::spawn(move || loop {
            let (lock, cvar) = &*stop_c;
            let mut stopped = lock.lock();
            if !*stopped {
                cvar.wait_for(&mut stopped, interval);
            }
            if *stopped {
                return;
            }
            drop(stopped);
            pool.reap();
        });
        Reaper {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Reaper {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock() = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl FsdService {
    pub(crate) fn assemble(
        dnn: Arc<SparseDnn>,
        cfg: EngineConfig,
        registry: ChannelRegistry,
        warm: Option<WarmPoolConfig>,
        clock: Option<Arc<dyn WallClock>>,
        reap_interval: Option<std::time::Duration>,
        regenerate_poisoned: bool,
    ) -> FsdService {
        let env = CloudEnv::new(cfg.cloud);
        let platform = FaasPlatform::new(env.clone(), cfg.compute);
        let clock = clock.unwrap_or_else(|| Arc::new(SystemClock::new()));
        let pool = warm
            .filter(|w| w.max_trees > 0)
            .map(|w| Arc::new(TreePool::new(w, clock)));
        let reaper = match (&pool, reap_interval) {
            (Some(pool), Some(interval)) => Some(Reaper::spawn(pool.clone(), interval)),
            _ => None,
        };
        FsdService {
            env,
            platform,
            dnn,
            cfg,
            cost: CostModel::default(),
            model_key: "model".to_string(),
            registry,
            state: RwLock::new(StagedState::default()),
            stage_lock: Mutex::new(()),
            requests: AtomicU64::new(0),
            pool,
            health: HealthBoard::new(),
            weight_cache: Arc::new(WeightCache::new()),
            failed_bill: Mutex::new(FailedAttemptBill::default()),
            regenerate_poisoned,
            _reaper: reaper,
        }
    }

    /// The simulated environment (inspection/tests).
    pub fn env(&self) -> &Arc<CloudEnv> {
        &self.env
    }

    /// The FaaS platform this service launches workers on
    /// (inspection/tests: lambda billing meters, flow leak checks).
    pub fn platform(&self) -> &Arc<FaasPlatform> {
        &self.platform
    }

    /// The model being served.
    pub fn dnn(&self) -> &Arc<SparseDnn> {
        &self.dnn
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The channel providers this service can route to.
    pub fn channel_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// Requests accepted so far (diagnostics).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The service-wide weight-block cache streamed cold starts read
    /// through (inspection/tests; empty and idle unless
    /// [`EngineConfig::stream_weights`] is on).
    pub fn weight_cache(&self) -> &Arc<WeightCache> {
        &self.weight_cache
    }

    /// The request-independent launch parameters of a persistent tree of
    /// `n_workers × memory_mb` instances — the single construction point,
    /// so every launch path agrees on streaming mode and shares the one
    /// weight cache.
    fn tree_params(&self, n_workers: u32, memory_mb: u32) -> TreeParams {
        TreeParams {
            n_workers,
            branching: self.cfg.branching,
            memory_mb,
            model_key: self.model_key.clone(),
            spec: *self.dnn.spec(),
            stream: self.cfg.stream_weights,
            cache: self.weight_cache.clone(),
        }
    }

    /// The partition used for `P` workers (staging it if needed). `P ≤ 1`
    /// returns the degenerate 1-way partition.
    pub fn partition(&self, p: u32) -> Arc<Partition> {
        let p = p.max(1);
        self.ensure_partition(p);
        self.state.read().partitions[&p].partition.clone()
    }

    /// Offline step: partition for `P` workers and stage the artifacts.
    /// Idempotent and safe under concurrency; done "a priori, not per
    /// request" (paper §III). `p <= 1` stages the unpartitioned model
    /// (the Serial path).
    pub fn prepare(&self, p: u32) {
        if p <= 1 {
            if self.state.read().full_staged {
                return;
            }
            let _staging = self.stage_lock.lock();
            if self.state.read().full_staged {
                return;
            }
            stage_full_model(&self.env, &self.model_key, &self.dnn);
            self.state.write().full_staged = true;
            return;
        }
        self.ensure_partition(p);
    }

    /// Stages the `P`-way partition (any `P ≥ 1`) — the distributed paths
    /// need per-worker artifacts even for a degenerate one-worker tree.
    fn ensure_partition(&self, p: u32) {
        let p = p.max(1);
        if self.state.read().partitions.contains_key(&p) {
            return;
        }
        let _staging = self.stage_lock.lock();
        if self.state.read().partitions.contains_key(&p) {
            return;
        }
        let part = partition_model(&self.dnn, p as usize, self.cfg.scheme, self.cfg.seed);
        let plan = CommPlan::build(&self.dnn, &part);
        stage_partitioned_model(&self.env, &self.model_key, &self.dnn, &part, &plan);
        self.state.write().partitions.insert(
            p,
            StagedPartition {
                partition: Arc::new(part),
                plan: Arc::new(plan),
            },
        );
    }

    /// Recommends a variant for this model at parallelism `p`, from the
    /// Section IV-C rules: whether the model fits this service's Serial
    /// instance (`EngineConfig::serial_memory_mb`, Lambda's maximum by
    /// default), then estimated per-pair payload volume (plan rows ×
    /// typical row bytes) against the publish-quota bands
    /// (Queue → Hybrid → Object). Models that fit one instance skip the
    /// partitioning step entirely.
    pub fn recommend(&self, p: u32, est_bytes_per_row: usize) -> Recommendation {
        let model_bytes = self.dnn.mem_bytes();
        if p <= 1 || recommend::fits_instance(model_bytes, self.cfg.serial_memory_mb) {
            return Recommendation {
                variant: Variant::Serial,
                profile: WorkloadProfile {
                    model_bytes,
                    workers: p.max(1),
                    bytes_per_pair_layer: 0,
                },
            };
        }
        self.ensure_partition(p);
        let plan = self.state.read().partitions[&p].plan.clone();
        let pairs = plan.total_pairs().max(1);
        let bytes_per_pair_layer =
            (plan.total_row_sends() as usize * est_bytes_per_row) / pairs as usize;
        let profile = WorkloadProfile {
            model_bytes,
            workers: p,
            bytes_per_pair_layer,
        };
        // Serial eligibility was decided above against *this service's*
        // instance size; what remains is the volume-band choice.
        Recommendation {
            variant: recommend::channel_variant(bytes_per_pair_layer),
            profile,
        }
    }

    /// Runs one single-batch inference request end to end.
    pub fn submit(&self, req: &InferenceRequest) -> Result<InferenceReport, FsdError> {
        self.submit_batched(&BatchedRequest {
            variant: req.variant,
            workers: req.workers,
            memory_mb: req.memory_mb,
            batches: vec![req.inputs.clone()],
        })
    }

    /// Runs several successive batches through one worker tree (paper
    /// Fig. 1): the tree is launched once, weights are loaded once, and a
    /// barrier + reduce closes each batch.
    pub fn submit_batched(&self, req: &BatchedRequest) -> Result<InferenceReport, FsdError> {
        if req.batches.is_empty() {
            return Err(FsdError::EmptyRequest);
        }
        let resolved = self.resolve_variant(req);
        let p = if resolved == Variant::Serial {
            1
        } else {
            req.workers.max(1)
        };
        if resolved == Variant::Serial {
            self.prepare(1);
        } else {
            // Distributed paths read per-worker artifacts even when the
            // tree degenerates to one worker, so stage a partition for
            // any P ≥ 1.
            self.ensure_partition(p);
        }

        // The flow id namespaces everything this request touches.
        let flow = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let input_key = format!("inputs/req{flow}");
        let partition = if resolved == Variant::Serial {
            None
        } else {
            Some(self.state.read().partitions[&p].partition.clone())
        };
        for (b, batch) in req.batches.iter().enumerate() {
            stage_inputs(
                &self.env,
                &format!("{input_key}/b{b}"),
                batch,
                partition.as_deref(),
            );
        }

        // Requests arrive at the origin of their own virtual timeline. The
        // billing window is the request's *flow*: every worker launched
        // below carries the flow on its clock, so the service meters bucket
        // this request's events separately from concurrent neighbors'
        // (offline staging uses unbilled writes and never shows up).
        let samples: usize = req.batches.iter().map(|b| b.width()).sum();
        let widths: Vec<usize> = req.batches.iter().map(|b| b.width()).collect();

        let launched = self.execute(resolved, p, req.memory_mb, &input_key, &widths, flow);
        self.finalize_report(resolved, p, samples, &input_key, flow, launched)
    }

    /// The shared request-teardown tail of [`FsdService::submit_batched`]
    /// and [`FsdService::submit_coalesced`]: deletes the request's input
    /// artifacts, harvests and releases its flow-scoped billing windows
    /// (success or not — a long-lived service must not accrete per-flow
    /// buckets), and assembles the [`InferenceReport`].
    fn finalize_report(
        &self,
        resolved: Variant,
        p: u32,
        samples: usize,
        input_key: &str,
        flow: u64,
        launched: ExecuteResult,
    ) -> Result<InferenceReport, FsdError> {
        // Feed the transport scoreboard: a communication failure marks the
        // transport unhealthy; compute-side errors (OOM, timeout, missing
        // output) say nothing about it and are not recorded.
        match &launched {
            Ok(_) => self.health.record(resolved, true),
            Err(FsdError::Comm(_)) => self.health.record(resolved, false),
            Err(_) => {}
        }
        let arrival = VirtualTime::ZERO;
        // Per-request input artifacts are dead after the run (success or
        // not); remove them so a long-lived service does not accrete state.
        self.env
            .object_store()
            .delete_prefix(ARTIFACT_BUCKET, &format!("{input_key}/"));
        // Streamed launches close their flow's weight mailboxes after the
        // last rank joins; repeat here unconditionally so an attempt that
        // died before joining cannot leak parked frames past release.
        self.env.weight_net().close_flow(flow);
        let comm = self.env.release_flow(flow);
        let lambda: LambdaSnapshot = self.platform.lambda_meter().release_flow(flow);
        let (root_out, reports, client, launch_path) = match launched {
            Ok(run) => run,
            Err(e) => {
                // The attempt failed but its calls were made and billed
                // (AWS semantics). Its flow window was just harvested —
                // fold it into the service-wide failed-attempt bill so the
                // global meters stay exactly partitioned between
                // successful reports and this accumulator.
                let mut bill = self.failed_bill.lock();
                bill.comm = bill.comm.plus(&comm);
                bill.lambda.invocations += lambda.invocations;
                bill.lambda.mb_ms += lambda.mb_ms;
                return Err(e);
            }
        };
        let per_worker: Vec<WorkerReport> = reports
            .iter()
            .map(|(rank, r)| WorkerReport {
                rank: *rank,
                started: r.started,
                finished: r.finished,
                billed_ms: r.billed_ms,
                peak_mem_bytes: r.peak_mem_bytes,
                memory_mb: r.memory_mb,
            })
            .collect();
        let last_finish = per_worker
            .iter()
            .map(|w| w.finished)
            .max()
            .ok_or(FsdError::NoWorkerReports)?;
        let latency =
            VirtualTime::from_micros(last_finish.as_micros().saturating_sub(arrival.as_micros()));
        let outputs = root_out.final_batches.ok_or(FsdError::MissingOutput)?;
        if outputs.is_empty() {
            return Err(FsdError::MissingOutput);
        }
        let cost_actual = self.cost.actual(&lambda, &comm);
        let cost_predicted = self
            .cost
            .predicted(&lambda, &client, root_out.artifact_gets, 0);
        #[allow(deprecated)]
        Ok(InferenceReport {
            variant: resolved,
            workers: p,
            launch: launch_path,
            arrival,
            latency,
            per_worker,
            comm,
            lambda,
            client,
            cost_actual,
            cost_predicted,
            output: outputs[0].clone(),
            outputs,
            samples,
            work_done: root_out.work_done,
        })
    }

    /// Runs several *shape-compatible* requests through **one** worker-tree
    /// pass (cross-request continuous batching): the tree is acquired once
    /// — a warm-pool checkout, or a single cold launch billed to the first
    /// member's flow — and every member then runs as its own flow-scoped
    /// work item on the resident tree. Per-member inputs, data channels,
    /// billing windows and reports stay exactly as disjoint as sequential
    /// [`FsdService::submit_batched`] calls (the meters bucket each
    /// member's events under its own flow id), but members after the first
    /// pay one control-plane hop ([`LaunchPath::WarmHit`]) instead of the
    /// launch bill. Results are returned in member order.
    ///
    /// Members must all resolve (via [`FsdService::resolve_variant`]) to
    /// the same `(variant, workers, memory_mb)` channel shape — the
    /// scheduler's coalition formation guarantees this. If any member does
    /// not, or the shared shape is Serial (which runs no tree), the whole
    /// set falls back to sequential `submit_batched` calls. A member
    /// failure mid-pass discards the (possibly poisoned) tree, reports the
    /// error for that member only, and finishes the remaining members on
    /// the sequential path.
    pub fn submit_coalesced(
        &self,
        reqs: &[BatchedRequest],
    ) -> Vec<Result<InferenceReport, FsdError>> {
        if reqs.len() <= 1 {
            return reqs.iter().map(|r| self.submit_batched(r)).collect();
        }
        let shape_of = |r: &BatchedRequest| -> Option<(Variant, u32, u32)> {
            if r.batches.is_empty() {
                return None;
            }
            let v = self.resolve_variant(r);
            v.channel_name().map(|_| (v, r.workers.max(1), r.memory_mb))
        };
        let Some(shared_shape) = shape_of(&reqs[0]) else {
            return reqs.iter().map(|r| self.submit_batched(r)).collect();
        };
        if reqs[1..].iter().any(|r| shape_of(r) != Some(shared_shape)) {
            return reqs.iter().map(|r| self.submit_batched(r)).collect();
        }
        let (routed, p, memory_mb) = shared_shape;
        let name = routed.channel_name().expect("channel shape checked above");
        let Some(provider) = self.registry.get(name) else {
            // No provider registered: every member fails exactly as its
            // sequential submission would.
            return reqs.iter().map(|r| self.submit_batched(r)).collect();
        };
        self.ensure_partition(p);
        let partition = self.state.read().partitions[&p].partition.clone();
        let key = TreeKey {
            variant: routed,
            workers: p,
            memory_mb,
        };

        let mut results: Vec<Result<InferenceReport, FsdError>> = Vec::with_capacity(reqs.len());
        // Acquired lazily on the first member so a cold launch is billed
        // to that member's flow; the `bool` records a warm checkout.
        let mut tree_slot: Option<(WorkerTree, bool)> = None;
        for (i, req) in reqs.iter().enumerate() {
            let flow = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
            let input_key = format!("inputs/req{flow}");
            for (b, batch) in req.batches.iter().enumerate() {
                stage_inputs(
                    &self.env,
                    &format!("{input_key}/b{b}"),
                    batch,
                    Some(&partition),
                );
            }
            let samples: usize = req.batches.iter().map(|b| b.width()).sum();
            let widths: Vec<usize> = req.batches.iter().map(|b| b.width()).collect();
            if tree_slot.is_none() {
                match self.acquire_coalition_tree(key, flow) {
                    Ok(acquired) => tree_slot = Some(acquired),
                    Err(e) => {
                        // The launch failed before any member ran: this
                        // member reports the error, the rest fall back to
                        // sequential execution (each pays its own launch).
                        results.push(self.finalize_report(
                            routed,
                            p,
                            samples,
                            &input_key,
                            flow,
                            Err(e),
                        ));
                        results.extend(reqs[i + 1..].iter().map(|r| self.submit_batched(r)));
                        return results;
                    }
                }
            }
            let (tree, from_warm_checkout) =
                tree_slot.as_mut().expect("coalition tree acquired above");
            // Member 0 of a cold launch pays the launch bill; every other
            // member lands on the already-resident tree: one control-plane
            // hop, billed (begin_request) under its own flow.
            let warm = *from_warm_checkout || i > 0;
            let channel = provider.provision(&self.env, p, self.cfg.channel, flow);
            let dispatch_at = VirtualTime::from_micros(
                self.env.jitter().apply(self.env.latency().lambda_invoke_us),
            );
            let item = WorkItem {
                warm,
                flow,
                input_key: input_key.clone(),
                batch_widths: widths.clone(),
                channel: channel.clone(),
                dispatch_at,
            };
            let ran = tree.run(item);
            // Harvest request-local stats, then release the member's
            // queues/subscriptions/objects — error or not.
            let client = channel.stats().snapshot();
            channel.teardown();
            match ran {
                Ok(out) => {
                    let root_out = WorkerOutput {
                        rank: 0,
                        final_batches: Some(out.final_batches),
                        subtree_reports: Vec::new(),
                        artifact_gets: out.artifact_gets,
                        work_done: out.work_done,
                    };
                    let path = if warm {
                        LaunchPath::WarmHit
                    } else {
                        LaunchPath::ColdStart
                    };
                    results.push(self.finalize_report(
                        routed,
                        p,
                        samples,
                        &input_key,
                        flow,
                        Ok((root_out, out.reports, client, path)),
                    ));
                }
                Err(e) => {
                    // A worker died mid-pass: the tree may be poisoned —
                    // never reuse it. This member reports the error; the
                    // remaining members run sequentially.
                    let (dead, _) = tree_slot.take().expect("coalition tree held");
                    match &self.pool {
                        Some(pool) => pool.discard(dead),
                        None => drop(dead), // Drop shuts the tree down.
                    }
                    results.push(self.finalize_report(
                        routed,
                        p,
                        samples,
                        &input_key,
                        flow,
                        Err(e.into()),
                    ));
                    results.extend(reqs[i + 1..].iter().map(|r| self.submit_batched(r)));
                    return results;
                }
            }
        }
        if let Some((tree, _)) = tree_slot {
            match &self.pool {
                // Checkin at pass teardown: the tree parks for the next
                // matching request (or coalition).
                Some(pool) => pool.checkin(tree),
                None => drop(tree),
            }
        }
        results
    }

    /// Acquires the single tree a coalesced pass runs on: a warm-pool
    /// checkout when a matching tree is parked, otherwise a cold launch of
    /// a persistent tree billed to `flow` (the first member). Returns the
    /// tree and whether it came from a warm checkout.
    fn acquire_coalition_tree(
        &self,
        key: TreeKey,
        flow: u64,
    ) -> Result<(WorkerTree, bool), FsdError> {
        if let Some(tree) = self.pool.as_ref().and_then(|pool| pool.checkout(key)) {
            return Ok((tree, true));
        }
        let params = self.tree_params(key.workers, key.memory_mb);
        let generation = self.pool.as_ref().map_or(0, |pool| pool.generation());
        let tree = WorkerTree::launch(&self.platform, key, generation, params, flow)?;
        if let Some(pool) = &self.pool {
            pool.record_created();
            pool.note_in_use(key);
        }
        Ok((tree, false))
    }

    /// Launches a warm tree for `(variant, workers, memory_mb)` ahead of
    /// traffic and parks it in the pool, so the *first* matching request
    /// is already a [`LaunchPath::WarmHit`]. The launch runs on the
    /// unattributed flow (0), mirroring offline staging.
    ///
    /// # Panics
    /// If the service was built without `warm_pool`, or `variant` is not a
    /// channel variant (`Queue`/`Object`/`Hybrid`) — both are
    /// configuration bugs.
    pub fn prewarm_tree(
        &self,
        variant: Variant,
        workers: u32,
        memory_mb: u32,
    ) -> Result<(), FsdError> {
        assert!(
            variant.channel_name().is_some(),
            "prewarm_tree needs a channel variant (Queue/Object/Hybrid/Direct), got {variant}"
        );
        let pool = self
            .pool
            .as_ref()
            .expect("prewarm_tree requires ServiceBuilder::warm_pool");
        let p = workers.max(1);
        self.ensure_partition(p);
        let key = TreeKey {
            variant,
            workers: p,
            memory_mb,
        };
        let params = self.tree_params(p, memory_mb);
        let tree = WorkerTree::launch(&self.platform, key, pool.generation(), params, 0)?;
        pool.record_created();
        pool.checkin(tree);
        Ok(())
    }

    /// Warm-pool counters, if a pool is configured.
    pub fn warm_pool_stats(&self) -> Option<WarmPoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Invalidates every warm tree (generation bump + eager shutdown).
    /// Call after re-staging model weights: a warm tree keeps its weights
    /// resident and must never serve requests for newer artifacts.
    /// Returns how many parked trees were dropped; 0 without a pool.
    pub fn invalidate_warm_trees(&self) -> usize {
        // The shared weight cache holds blocks of the same staged model the
        // warm trees loaded: a redeploy that obsoletes the trees obsoletes
        // the cached blocks with them.
        self.weight_cache.invalidate();
        self.pool.as_ref().map_or(0, |p| p.invalidate())
    }

    /// Parked warm trees currently matching `(variant, workers, memory)`.
    /// 0 without a pool.
    pub fn warm_idle_trees(&self, variant: Variant, workers: u32, memory_mb: u32) -> usize {
        let key = TreeKey {
            variant,
            workers: workers.max(1),
            memory_mb,
        };
        self.pool.as_ref().map_or(0, |p| p.idle_of(key))
    }

    /// Warm trees of the shape that exist at all — parked *or* currently
    /// serving a request. 0 without a pool. Predictors top a shape up to
    /// its burst target against this count: a burst's own checkouts must
    /// not read as missing capacity, or every in-flight request would
    /// trigger a redundant pre-warm.
    pub fn warm_live_trees(&self, variant: Variant, workers: u32, memory_mb: u32) -> usize {
        let key = TreeKey {
            variant,
            workers: workers.max(1),
            memory_mb,
        };
        self.pool.as_ref().map_or(0, |p| p.live_of(key))
    }

    /// Evicts every parked warm tree of one shape (predictor decisions:
    /// traffic of this shape has gone quiet). Returns how many trees were
    /// dropped; 0 without a pool.
    pub fn evict_warm_trees(&self, variant: Variant, workers: u32, memory_mb: u32) -> usize {
        let key = TreeKey {
            variant,
            workers: workers.max(1),
            memory_mb,
        };
        self.pool.as_ref().map_or(0, |p| p.evict_shape(key))
    }

    /// Runs one wall-clock reaper pass: evicts parked trees whose real
    /// idle time exceeds `WarmPoolConfig::wall_idle_ms`. Returns how many
    /// trees were dropped; 0 without a pool or without a wall TTL. The
    /// background reaper (`ServiceBuilder::background_reaper`) calls this
    /// on an interval; deterministic harnesses inject a
    /// [`crate::ManualClock`] and call it explicitly.
    pub fn reap_warm_trees(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.reap())
    }

    /// Per-transport health scoreboard (error-rate EWMAs and breaker
    /// states) — inspection/tests.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        self.health.snapshot()
    }

    /// What failed request attempts have been billed so far. Failed
    /// attempts are billed (as on AWS); this accumulator plus the digests
    /// of the successful [`InferenceReport`]s partitions the global comm
    /// and Lambda meters exactly — the invariant the chaos gate asserts.
    pub fn failed_attempt_bill(&self) -> FailedAttemptBill {
        *self.failed_bill.lock()
    }

    /// The fault-plane spelling of "kill worker `rank` of a parked warm
    /// tree": a [`TargetedFault`] whose resource predicate
    /// [`FsdService::inject_fault`] recognizes and routes to the pool's
    /// kill switches instead of the comm plane. Build it here, inject it
    /// there — one injection surface for every fault in the system.
    pub fn warm_worker_fault(
        variant: Variant,
        workers: u32,
        memory_mb: u32,
        rank: u32,
    ) -> TargetedFault {
        let name = variant.channel_name().unwrap_or("serial");
        TargetedFault {
            class: ApiClass::InstanceLaunch,
            nth: 1,
            resource_contains: format!("warm:{name}:{}:{memory_mb}:{rank}", workers.max(1)),
            kind: FaultKind::Transient,
        }
    }

    /// Failure injection (tests/chaos), one surface for the whole system:
    /// a `resource_contains` of the form `warm:{variant}:{P}:{mem}:{rank}`
    /// (build it with [`FsdService::warm_worker_fault`]) arms the kill
    /// switch of worker `rank` on one *parked* tree of that shape, so the
    /// next request routed into it loses the instance mid-request; any
    /// other fault is installed on the region's
    /// [`fsd_comm::FaultPlane`] targeted schedule. Returns whether the
    /// fault was armed (a warm target with no matching parked tree, or an
    /// unparseable warm predicate, reports `false`).
    pub fn inject_fault(&self, fault: TargetedFault) -> bool {
        if let Some(spec) = fault.resource_contains.strip_prefix("warm:") {
            let mut parts = spec.split(':');
            let variant = match parts.next() {
                Some("queue") => Variant::Queue,
                Some("object") => Variant::Object,
                Some("hybrid") => Variant::Hybrid,
                Some("direct") => Variant::Direct,
                _ => return false,
            };
            let (Some(workers), Some(memory_mb), Some(rank)) = (
                parts.next().and_then(|s| s.parse::<u32>().ok()),
                parts.next().and_then(|s| s.parse::<u32>().ok()),
                parts.next().and_then(|s| s.parse::<u32>().ok()),
            ) else {
                return false;
            };
            let key = TreeKey {
                variant,
                workers: workers.max(1),
                memory_mb,
            };
            return self
                .pool
                .as_ref()
                .is_some_and(|pool| pool.arm_kill(key, rank));
        }
        self.env.faults().inject(fault);
        true
    }

    /// Failure injection (tests/chaos): arms a kill switch on worker
    /// `rank` of one *parked* tree matching the shape, so the next request
    /// routed into it loses that instance mid-request. Returns whether a
    /// parked tree matched.
    #[deprecated(
        note = "use FsdService::inject_fault(FsdService::warm_worker_fault(..)) — the \
                unified fault-plane surface"
    )]
    pub fn inject_warm_failure(
        &self,
        variant: Variant,
        workers: u32,
        memory_mb: u32,
        rank: u32,
    ) -> bool {
        self.inject_fault(Self::warm_worker_fault(variant, workers, memory_mb, rank))
    }

    /// The single §IV-C resolution point: resolves a (possibly
    /// [`Variant::Auto`]) variant for `workers` ranks and an estimated
    /// wire-bytes-per-row. Explicit variants pass through unchanged. The
    /// execution path ([`FsdService::resolve_variant`]), the scheduler's
    /// admission-cap derivation and its predictor all route through here,
    /// so caps and execution can never disagree on where a request runs.
    pub fn resolve(&self, variant: Variant, workers: u32, est_bytes_per_row: usize) -> Variant {
        match variant {
            // Auto routing consults the circuit breakers: a recommendation
            // whose transport is tripped open degrades to a healthy
            // fallback (direct → hybrid → queue → object; hybrid → queue →
            // object; queue ↔ object). Explicit
            // variants pass through — the caller asked for that transport
            // and gets its errors.
            Variant::Auto => self
                .health
                .degrade(self.recommend(workers.max(1), est_bytes_per_row).variant),
            v @ (Variant::Serial
            | Variant::Queue
            | Variant::Object
            | Variant::Hybrid
            | Variant::Direct) => v,
        }
    }

    /// The a-priori wire-bytes-per-row estimate for this model (each
    /// nonzero costs a column id + value on the wire) — what cap
    /// derivation uses before any request exists. Per-request resolution
    /// refines it with the request's own first batch.
    pub fn est_bytes_per_row(&self) -> usize {
        self.dnn.spec().nnz_per_row.max(1) * 8
    }

    /// Resolves [`Variant::Auto`] into a concrete variant for this request
    /// via [`FsdService::resolve`]; the per-pair volume estimate comes
    /// from the request's own first batch (wire bytes per row as a proxy
    /// for the intermediate activations the layers will exchange). Public
    /// as a planning hook: the scheduler (and tests) can ask where a
    /// request *would* route without executing it.
    pub fn resolve_variant(&self, req: &BatchedRequest) -> Variant {
        match req.variant {
            Variant::Auto => {
                let first = &req.batches[0];
                let est_bytes_per_row = codec::encoded_size(first) / first.n_rows().max(1);
                self.resolve(Variant::Auto, req.workers, est_bytes_per_row)
            }
            v @ (Variant::Serial
            | Variant::Queue
            | Variant::Object
            | Variant::Hybrid
            | Variant::Direct) => v,
        }
    }

    /// Dispatches a resolved request to its execution path.
    fn execute(
        &self,
        variant: Variant,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
        flow: u64,
    ) -> ExecuteResult {
        match variant {
            Variant::Serial => {
                let (out, report) = self.launch_serial(input_key, widths.len(), flow)?;
                Ok((
                    out,
                    vec![(0u32, report)],
                    ChannelStatsSnapshot::default(),
                    LaunchPath::ColdStart,
                ))
            }
            // fsd_lint::allow(no-unwrap): submit_batched resolves Auto via
            // resolve_variant before calling execute; reaching here is a bug.
            Variant::Auto => unreachable!("Auto resolves before execution"),
            routed @ (Variant::Queue | Variant::Object | Variant::Hybrid | Variant::Direct) => {
                let name = routed
                    .channel_name()
                    .expect("routed variants name a channel");
                let provider = self
                    .registry
                    .get(name)
                    .ok_or_else(|| FsdError::UnknownChannel {
                        name: name.to_string(),
                    })?;
                let channel = provider.provision(&self.env, p, self.cfg.channel, flow);
                if let Some(pool) = &self.pool {
                    return self.execute_pooled(
                        pool, routed, channel, p, memory_mb, input_key, widths, flow,
                    );
                }
                let launched =
                    self.launch_tree(channel.clone(), p, memory_mb, input_key, widths, flow);
                // Harvest request-local stats, then release the request's
                // queues/subscriptions/objects — error or not.
                let client = channel.stats().snapshot();
                channel.teardown();
                let (out, reports) = launched?;
                Ok((out, reports, client, LaunchPath::ColdStart))
            }
        }
    }

    /// Runs a routed request through the warm-tree pool: a matching parked
    /// tree is checked out (warm hit — no invocations, no cold starts, no
    /// launch rounds, no weight loads); a miss falls back to a cold launch
    /// of a *persistent* tree that the teardown then checks in. Either way
    /// the data channel is provisioned and torn down per request, so flow
    /// namespacing and billing disjointness are identical to the one-shot
    /// path.
    #[allow(clippy::too_many_arguments)]
    fn execute_pooled(
        &self,
        pool: &TreePool,
        routed: Variant,
        channel: Arc<dyn FsiChannel>,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
        flow: u64,
    ) -> ExecuteResult {
        let key = TreeKey {
            variant: routed,
            workers: p,
            memory_mb,
        };
        let (mut tree, warm) = match pool.checkout(key) {
            Some(tree) => (tree, true),
            None => {
                // Cold fallback. With branching = 1 the "tree" launch
                // degrades to a serial invocation chain of P rounds
                // (documented in `fsd_faas::launch`); assert the documented
                // equivalence so the fallback never silently pays a
                // different launch bill than the model predicts.
                debug_assert!(
                    self.cfg.branching > 1 || launch::launch_rounds(p as usize, 1) == p as usize,
                    "branching=1 launch must degrade to a P-round serial loop"
                );
                let params = self.tree_params(p, memory_mb);
                let tree =
                    WorkerTree::launch(&self.platform, key, pool.generation(), params, flow)?;
                pool.record_created();
                pool.note_in_use(key);
                (tree, false)
            }
        };
        // One control-plane hop routes a request into a live tree.
        let dispatch_at =
            VirtualTime::from_micros(self.env.jitter().apply(self.env.latency().lambda_invoke_us));
        let item = WorkItem {
            warm,
            flow,
            input_key: input_key.to_string(),
            batch_widths: widths.to_vec(),
            channel: channel.clone(),
            dispatch_at,
        };
        let ran = tree.run(item);
        // Harvest request-local stats, then release the request's
        // queues/subscriptions/objects — error or not.
        let client = channel.stats().snapshot();
        channel.teardown();
        match ran {
            Ok(out) => {
                // Checkin at request teardown: the tree parks for the next
                // matching request (or is discarded if the shelf is full).
                pool.checkin(tree);
                let root_out = WorkerOutput {
                    rank: 0,
                    final_batches: Some(out.final_batches),
                    subtree_reports: Vec::new(),
                    artifact_gets: out.artifact_gets,
                    work_done: out.work_done,
                };
                let path = if warm {
                    LaunchPath::WarmHit
                } else {
                    LaunchPath::ColdStart
                };
                Ok((root_out, out.reports, client, path))
            }
            Err(e) => {
                // A worker died mid-request: the tree is evicted, never
                // checked back in, and the error surfaces to the caller
                // (the scheduler releases the slot as for any failure).
                pool.discard(tree);
                if self.regenerate_poisoned {
                    self.regenerate_tree(pool, key);
                }
                Err(e.into())
            }
        }
    }

    /// Relaunches and parks a fresh tree of `key`'s shape after a poisoned
    /// one was discarded (`ServiceBuilder::regenerate_poisoned`). Billed to
    /// the unattributed flow exactly like a pre-warm — the failed request
    /// already paid for its own launch, and the replacement serves whoever
    /// comes next. Best-effort: a failed relaunch (e.g. a persistent
    /// injected launch fault) leaves the shape cold rather than erroring
    /// the request a second time.
    fn regenerate_tree(&self, pool: &TreePool, key: TreeKey) {
        let params = self.tree_params(key.workers, key.memory_mb);
        if let Ok(tree) = WorkerTree::launch(&self.platform, key, pool.generation(), params, 0) {
            pool.record_created();
            pool.record_regenerated();
            pool.checkin(tree);
        }
    }

    /// Coordinator (128 MB) + serial worker at the maximum memory.
    fn launch_serial(
        &self,
        input_key: &str,
        n_batches: usize,
        flow: u64,
    ) -> Result<(WorkerOutput, InvocationReport), FaasError> {
        let spec = *self.dnn.spec();
        let model_key = self.model_key.clone();
        let input_key = input_key.to_string();
        let platform = self.platform.clone();
        let serial_memory = self.cfg.serial_memory_mb;
        let coordinator = self.platform.invoke(
            FunctionConfig::coordinator().for_flow(flow),
            VirtualTime::ZERO,
            move |ctx| {
                ctx.charge_work(10_000); // request parsing
                let at = ctx.now();
                let inv = platform.invoke(
                    FunctionConfig::worker("fsd-serial", serial_memory).for_flow(flow),
                    at,
                    move |worker_ctx| {
                        run_serial(worker_ctx, &model_key, &input_key, &spec, n_batches)
                    },
                );
                inv.join()
            },
        );
        let ((out, report), _coord_report) = coordinator.join()?;
        Ok((out, report))
    }

    /// Coordinator + hierarchical worker tree over a channel.
    fn launch_tree(
        &self,
        channel: Arc<dyn FsiChannel>,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
        flow: u64,
    ) -> Result<(WorkerOutput, Vec<(u32, InvocationReport)>), FaasError> {
        if self.cfg.stream_weights {
            return self.launch_tree_flat(channel, p, memory_mb, input_key, widths, flow);
        }
        let params = WorkerParams {
            n_workers: p,
            branching: self.cfg.branching,
            memory_mb,
            model_key: self.model_key.clone(),
            input_key: input_key.to_string(),
            spec: *self.dnn.spec(),
            batch_widths: widths.to_vec(),
            stream: false,
            cache: self.weight_cache.clone(),
            abort: Arc::new(AtomicBool::new(false)),
        };
        let platform = self.platform.clone();
        let coordinator = self.platform.invoke(
            FunctionConfig::coordinator().for_flow(flow),
            VirtualTime::ZERO,
            move |ctx| {
                ctx.charge_work(10_000); // request parsing
                let at = ctx.now();
                let inv = platform.invoke(
                    FunctionConfig::worker("fsd-worker-0", params.memory_mb).for_flow(flow),
                    at,
                    move |worker_ctx| run_worker(worker_ctx, channel, 0, params),
                );
                inv.join()
            },
        );
        let ((root_out, root_report), _coord) = coordinator.join()?;
        let mut reports = vec![(0u32, root_report)];
        reports.extend(root_out.subtree_reports.iter().copied());
        Ok((root_out, reports))
    }

    /// Streamed cold start: FaaSNet-style flat, controller-driven
    /// provisioning. The always-on control plane (this service — FaaSNet's
    /// "function manager") invokes every rank directly instead of routing
    /// the launch through a coordinator function that must itself cold
    /// start first. Total invocations are `P` (the hierarchical launch
    /// pays `1 + P`), each dispatch costs the controller one sequential
    /// API round trip, and the launch-tree topology is used to multicast
    /// weight blocks instead of invocations.
    fn launch_tree_flat(
        &self,
        channel: Arc<dyn FsiChannel>,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
        flow: u64,
    ) -> Result<(WorkerOutput, Vec<(u32, InvocationReport)>), FaasError> {
        let params = WorkerParams {
            n_workers: p,
            branching: self.cfg.branching,
            memory_mb,
            model_key: self.model_key.clone(),
            input_key: input_key.to_string(),
            spec: *self.dnn.spec(),
            batch_widths: widths.to_vec(),
            stream: true,
            cache: self.weight_cache.clone(),
            abort: Arc::new(AtomicBool::new(false)),
        };
        // The controller's dispatch clock: invokes are issued one API
        // round trip apart (the instance-side invoke latency itself is
        // charged inside `FaasPlatform::invoke`, exactly as on every
        // other path).
        let mut dispatch = VClock::default();
        dispatch.set_flow(flow);
        let mut invocations = Vec::with_capacity(p as usize);
        for rank in 0..p {
            if rank > 0 {
                let lat = self.env.latency().lambda_invoke_us;
                let jittered = self.env.jitter().apply(lat);
                dispatch.advance_micros(jittered);
            }
            let at = dispatch.now();
            let channel_r = channel.clone();
            let params_r = params.clone();
            let inv = self.platform.invoke(
                FunctionConfig::worker(format!("fsd-worker-{rank}"), memory_mb).for_flow(flow),
                at,
                move |worker_ctx| run_worker(worker_ctx, channel_r, rank, params_r),
            );
            if inv.launch_error().is_some() {
                // A refused rank tears the whole request; raise the
                // abort flag so already-running peers unwedge from
                // their stream-drain loops instead of waiting for
                // frames that will never arrive.
                params.abort.store(true, Ordering::Relaxed);
            }
            invocations.push((rank, inv));
        }
        let mut reports = Vec::with_capacity(p as usize);
        let mut root_out = None;
        let mut peer_gets = 0u64;
        let mut peer_work = 0u64;
        let mut first_err = None;
        for (rank, inv) in invocations {
            match inv.join() {
                Ok((out, report)) => {
                    debug_assert_eq!(out.rank, rank);
                    reports.push((rank, report));
                    if rank == 0 {
                        root_out = Some(out);
                    } else {
                        peer_gets += out.artifact_gets;
                        peer_work += out.work_done;
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        // Every rank is joined: any weight frames still parked in this
        // flow's mailboxes belong to torn streams, not to a live reader.
        // Drop them so the residue audit stays clean.
        self.env.weight_net().close_flow(flow);
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut root = root_out.expect("rank 0 joined without error");
        root.artifact_gets += peer_gets;
        root.work_done += peer_work;
        Ok((root, reports))
    }
}

type ExecuteResult = Result<
    (
        WorkerOutput,
        Vec<(u32, InvocationReport)>,
        ChannelStatsSnapshot,
        LaunchPath,
    ),
    FsdError,
>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ServiceBuilder;
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
    use fsd_sparse::SparseRows;

    fn small_service(seed: u64) -> (Arc<FsdService>, SparseRows, SparseRows) {
        let spec = DnnSpec {
            neurons: 64,
            layers: 3,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, seed));
        let expected = dnn.serial_inference(&inputs);
        (
            Arc::new(ServiceBuilder::new(dnn).deterministic(seed).build()),
            inputs,
            expected,
        )
    }

    #[test]
    fn empty_request_is_an_error() {
        let (service, ..) = small_service(1);
        let res = service.submit_batched(&BatchedRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 1769,
            batches: vec![],
        });
        assert_eq!(res.unwrap_err(), FsdError::EmptyRequest);
    }

    #[test]
    fn unknown_channel_is_an_error() {
        let spec = DnnSpec {
            neurons: 48,
            layers: 2,
            nnz_per_row: 6,
            bias: -0.25,
            clip: 32.0,
            seed: 2,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(6, 2));
        let service = ServiceBuilder::new(dnn)
            .deterministic(2)
            .clear_channels()
            .build();
        let res = service.submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 2,
            memory_mb: 1769,
            inputs,
        });
        assert_eq!(
            res.unwrap_err(),
            FsdError::UnknownChannel {
                name: "queue".into()
            }
        );
    }

    #[test]
    fn requests_get_distinct_flows_and_clean_up() {
        let (service, inputs, expected) = small_service(3);
        for variant in [
            Variant::Queue,
            Variant::Object,
            Variant::Hybrid,
            Variant::Direct,
        ] {
            let report = service
                .submit(&InferenceRequest {
                    variant,
                    workers: 3,
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                })
                .expect("runs");
            assert_eq!(report.first_output(), &expected);
        }
        assert_eq!(service.requests_served(), 4);
        // Queue-channel teardown removed the per-request queues and
        // filter policies.
        assert_eq!(service.env().queue_count(), 0);
        assert_eq!(service.env().pubsub().subscription_count(0), 0);
        // Object-channel teardown removed the flow-namespaced objects.
        for i in 0..service.env().config().n_buckets {
            assert_eq!(
                service
                    .env()
                    .object_store()
                    .object_count(&fsd_comm::bucket_name(i)),
                0,
                "bucket {i} still holds intermediate objects"
            );
        }
    }

    #[test]
    fn hybrid_spilling_requests_stay_correct_and_clean() {
        use crate::queue_channel::ChannelOptions;
        let spec = DnnSpec {
            neurons: 64,
            layers: 3,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed: 33,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, 33));
        let expected = dnn.serial_inference(&inputs);
        // A 1-byte threshold forces every layer payload through the spill
        // path: control plane on the queues, data plane on the buckets.
        let service = ServiceBuilder::new(dnn)
            .deterministic(33)
            .channel_options(ChannelOptions {
                spill_threshold: 1,
                ..ChannelOptions::default()
            })
            .build();
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Hybrid,
                workers: 3,
                memory_mb: 1769,
                inputs,
            })
            .expect("hybrid runs");
        assert_eq!(report.first_output(), &expected);
        assert!(report.comm.sns_publish_requests > 0, "pointers publish");
        assert!(report.comm.s3_put_requests > 0, "payloads spill");
        assert!(report.comm.s3_get_requests > 0, "receivers dereference");
        assert_eq!(report.comm.s3_list_requests, 0, "hybrid never LISTs");
        // Predicted vs metered cost agree for the mixed transport too
        // (§VI-F validation extended to the hybrid regime).
        let err = report.cost_actual.relative_error(&report.cost_predicted);
        assert!(err < 0.02, "hybrid cost validation off by {err:.3}");
        // Flow-namespaced cleanup: queues, subscriptions and spilled
        // objects are all gone after teardown.
        assert_eq!(service.env().queue_count(), 0);
        assert_eq!(service.env().pubsub().subscription_count(0), 0);
        for i in 0..service.env().config().n_buckets {
            assert_eq!(
                service
                    .env()
                    .object_store()
                    .object_count(&fsd_comm::bucket_name(i)),
                0,
                "bucket {i} holds residual spilled objects"
            );
        }
    }

    #[test]
    fn auto_routes_small_models_to_serial() {
        let (service, inputs, expected) = small_service(4);
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Auto,
                workers: 4,
                memory_mb: 1769,
                inputs,
            })
            .expect("auto runs");
        assert_eq!(
            report.variant,
            Variant::Serial,
            "tiny model must route to Serial"
        );
        assert_eq!(report.workers, 1);
        assert_eq!(report.first_output(), &expected);
    }

    #[test]
    fn distributed_variants_run_with_a_single_worker() {
        // A degenerate one-worker tree must still work: the service stages
        // a 1-way partition instead of failing on missing per-worker
        // artifacts.
        let (service, inputs, expected) = small_service(6);
        for variant in [Variant::Queue, Variant::Object] {
            let report = service
                .submit(&InferenceRequest {
                    variant,
                    workers: 0, // clamped to 1
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                })
                .unwrap_or_else(|e| panic!("{variant} with one worker: {e}"));
            assert_eq!(report.workers, 1);
            assert_eq!(report.first_output(), &expected);
        }
    }

    #[test]
    fn partition_accessor_handles_degenerate_counts() {
        let (service, ..) = small_service(7);
        // p <= 1 returns the 1-way partition instead of panicking on a
        // missing map entry.
        let one = service.partition(1);
        assert_eq!(one.n_parts(), 1);
        assert!(Arc::ptr_eq(&one, &service.partition(0)));
        let three = service.partition(3);
        assert_eq!(three.n_parts(), 3);
    }

    #[test]
    fn warm_pool_reuses_trees_and_labels_paths() {
        let spec = DnnSpec {
            neurons: 64,
            layers: 3,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed: 21,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, 21));
        let expected = dnn.serial_inference(&inputs);
        let service = ServiceBuilder::new(dnn)
            .deterministic(21)
            .warm_pool(2, u64::MAX)
            .build();
        let req = InferenceRequest {
            variant: Variant::Queue,
            workers: 3,
            memory_mb: 1769,
            inputs,
        };
        let cold = service.submit(&req).expect("cold run");
        assert_eq!(cold.launch, crate::LaunchPath::ColdStart);
        assert_eq!(cold.lambda.invocations, 4, "coordinator + 3 workers");
        assert_eq!(cold.first_output(), &expected);

        let warm = service.submit(&req).expect("warm run");
        assert_eq!(warm.launch, crate::LaunchPath::WarmHit);
        assert_eq!(warm.lambda.invocations, 0, "warm hits invoke nothing");
        assert!(warm.lambda.mb_ms > 0, "execution window still bills");
        assert_eq!(warm.first_output(), &expected);
        assert_eq!(
            warm.outputs, cold.outputs,
            "warm and cold paths must produce identical outputs"
        );
        assert!(
            warm.latency < cold.latency,
            "warm hit must skip launch latency: warm {} vs cold {}",
            warm.latency,
            cold.latency
        );
        let stats = service.warm_pool_stats().expect("pool enabled");
        assert_eq!((stats.hits, stats.misses, stats.created), (1, 1, 1));
        assert_eq!(stats.idle, 1);
        // Flow-scoped channel resources were torn down on both paths.
        assert_eq!(service.env().queue_count(), 0);
        assert_eq!(service.env().meter().tracked_flows(), 0);
        assert_eq!(service.platform().lambda_meter().tracked_flows(), 0);
        // Invalidation drops the parked tree; the next request is cold.
        assert_eq!(service.invalidate_warm_trees(), 1);
        let again = service.submit(&req).expect("post-invalidate run");
        assert_eq!(again.launch, crate::LaunchPath::ColdStart);
        assert_eq!(again.outputs, cold.outputs);
    }

    #[test]
    fn latency_derives_from_arrival() {
        let (service, inputs, _) = small_service(5);
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Object,
                workers: 2,
                memory_mb: 1769,
                inputs,
            })
            .expect("runs");
        assert_eq!(report.arrival, VirtualTime::ZERO);
        let last = report
            .per_worker
            .iter()
            .map(|w| w.finished)
            .max()
            .expect("workers");
        assert_eq!(
            report.latency.as_micros(),
            last.as_micros() - report.arrival.as_micros()
        );
    }
}
