//! [`FsdService`]: the thread-safe serving front end.
//!
//! Every request method takes `&self`, so one `Arc<FsdService>` can be
//! driven concurrently from many threads (λScale-style request-level
//! serving). The shared pieces are synchronized explicitly:
//!
//! * partition/staging caches live behind an `RwLock` (staged artifacts are
//!   immutable once written — concurrent requests only ever read them);
//! * the request counter is atomic and doubles as the **flow id** that
//!   namespaces all per-request service resources — input keys, queues,
//!   filter policies and object prefixes — so requests never share mutable
//!   channel state and nothing ever needs the old global
//!   `env.reset_channels()` wipe (which was a shared-state bug under
//!   concurrency);
//! * channels are provisioned per request through the
//!   [`ChannelRegistry`](crate::ChannelRegistry) and torn down when the
//!   request's worker tree has been joined.

use crate::artifacts::{stage_full_model, stage_inputs, stage_partitioned_model, ARTIFACT_BUCKET};
use crate::channel::FsiChannel;
use crate::cost::CostModel;
use crate::engine::{
    BatchedRequest, EngineConfig, InferenceReport, InferenceRequest, Variant, WorkerReport,
};
use crate::error::FsdError;
use crate::provider::ChannelRegistry;
use crate::recommend::{self, Recommendation, WorkloadProfile};
use crate::stats::ChannelStatsSnapshot;
use crate::worker::{run_serial, run_worker, WorkerOutput, WorkerParams};
use fsd_comm::{CloudEnv, VirtualTime};
use fsd_faas::{FaasError, FaasPlatform, FunctionConfig, InvocationReport, LambdaSnapshot};
use fsd_model::SparseDnn;
use fsd_partition::{partition_model, CommPlan, Partition};
use fsd_sparse::codec;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Offline staging state shared by all requests (read-mostly).
#[derive(Default)]
struct StagedState {
    /// Whether the unpartitioned model artifacts are staged (Serial path).
    full_staged: bool,
    /// Partitions (and their communication plans) staged per worker
    /// count `P`.
    partitions: HashMap<u32, StagedPartition>,
}

/// One staged `P`-way partitioning: the partition plus the communication
/// plan built from it (cached so the recommender never rebuilds it on the
/// request path).
#[derive(Clone)]
struct StagedPartition {
    partition: Arc<Partition>,
    plan: Arc<CommPlan>,
}

/// The serving front end: owns the simulated region, the FaaS platform and
/// the staged model artifacts; accepts concurrent requests through `&self`.
///
/// Build one with [`ServiceBuilder`](crate::ServiceBuilder):
///
/// ```
/// use fsd_core::{InferenceRequest, ServiceBuilder, Variant};
/// use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
/// use std::sync::Arc;
///
/// let spec = DnnSpec { neurons: 64, layers: 3, nnz_per_row: 8,
///                      bias: -0.2, clip: 32.0, seed: 1 };
/// let dnn = Arc::new(generate_dnn(&spec));
/// let inputs = generate_inputs(64, &InputSpec::scaled(8, 1));
/// let expected = dnn.serial_inference(&inputs);
///
/// let service = Arc::new(ServiceBuilder::new(dnn).deterministic(1).build());
/// let report = service
///     .submit(&InferenceRequest { variant: Variant::Queue, workers: 3, memory_mb: 1024, inputs })
///     .unwrap();
/// assert_eq!(report.first_output(), &expected);
/// ```
pub struct FsdService {
    env: Arc<CloudEnv>,
    platform: Arc<FaasPlatform>,
    dnn: Arc<SparseDnn>,
    cfg: EngineConfig,
    cost: CostModel,
    model_key: String,
    registry: ChannelRegistry,
    state: RwLock<StagedState>,
    /// Serializes offline staging so a (model, P) pair is partitioned and
    /// written exactly once; requests that find it staged never take this.
    stage_lock: Mutex<()>,
    /// Request counter; its successor is the request's flow id.
    requests: AtomicU64,
}

impl FsdService {
    pub(crate) fn assemble(
        dnn: Arc<SparseDnn>,
        cfg: EngineConfig,
        registry: ChannelRegistry,
    ) -> FsdService {
        let env = CloudEnv::new(cfg.cloud);
        let platform = FaasPlatform::new(env.clone(), cfg.compute);
        FsdService {
            env,
            platform,
            dnn,
            cfg,
            cost: CostModel::default(),
            model_key: "model".to_string(),
            registry,
            state: RwLock::new(StagedState::default()),
            stage_lock: Mutex::new(()),
            requests: AtomicU64::new(0),
        }
    }

    /// The simulated environment (inspection/tests).
    pub fn env(&self) -> &Arc<CloudEnv> {
        &self.env
    }

    /// The FaaS platform this service launches workers on
    /// (inspection/tests: lambda billing meters, flow leak checks).
    pub fn platform(&self) -> &Arc<FaasPlatform> {
        &self.platform
    }

    /// The model being served.
    pub fn dnn(&self) -> &Arc<SparseDnn> {
        &self.dnn
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The channel providers this service can route to.
    pub fn channel_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// Requests accepted so far (diagnostics).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The partition used for `P` workers (staging it if needed). `P ≤ 1`
    /// returns the degenerate 1-way partition.
    pub fn partition(&self, p: u32) -> Arc<Partition> {
        let p = p.max(1);
        self.ensure_partition(p);
        self.state.read().partitions[&p].partition.clone()
    }

    /// Offline step: partition for `P` workers and stage the artifacts.
    /// Idempotent and safe under concurrency; done "a priori, not per
    /// request" (paper §III). `p <= 1` stages the unpartitioned model
    /// (the Serial path).
    pub fn prepare(&self, p: u32) {
        if p <= 1 {
            if self.state.read().full_staged {
                return;
            }
            let _staging = self.stage_lock.lock();
            if self.state.read().full_staged {
                return;
            }
            stage_full_model(&self.env, &self.model_key, &self.dnn);
            self.state.write().full_staged = true;
            return;
        }
        self.ensure_partition(p);
    }

    /// Stages the `P`-way partition (any `P ≥ 1`) — the distributed paths
    /// need per-worker artifacts even for a degenerate one-worker tree.
    fn ensure_partition(&self, p: u32) {
        let p = p.max(1);
        if self.state.read().partitions.contains_key(&p) {
            return;
        }
        let _staging = self.stage_lock.lock();
        if self.state.read().partitions.contains_key(&p) {
            return;
        }
        let part = partition_model(&self.dnn, p as usize, self.cfg.scheme, self.cfg.seed);
        let plan = CommPlan::build(&self.dnn, &part);
        stage_partitioned_model(&self.env, &self.model_key, &self.dnn, &part, &plan);
        self.state.write().partitions.insert(
            p,
            StagedPartition {
                partition: Arc::new(part),
                plan: Arc::new(plan),
            },
        );
    }

    /// Recommends a variant for this model at parallelism `p`, from the
    /// Section IV-C rules: whether the model fits a single instance, then
    /// estimated per-pair payload volume (plan rows × typical row bytes)
    /// against the publish quota. Models that fit one instance skip the
    /// partitioning step entirely.
    pub fn recommend(&self, p: u32, est_bytes_per_row: usize) -> Recommendation {
        let model_bytes = self.dnn.mem_bytes();
        if p <= 1 || recommend::fits_single_instance(model_bytes) {
            return Recommendation {
                variant: Variant::Serial,
                profile: WorkloadProfile {
                    model_bytes,
                    workers: p.max(1),
                    bytes_per_pair_layer: 0,
                },
            };
        }
        self.ensure_partition(p);
        let plan = self.state.read().partitions[&p].plan.clone();
        let pairs = plan.total_pairs().max(1);
        let bytes_per_pair_layer =
            (plan.total_row_sends() as usize * est_bytes_per_row) / pairs as usize;
        let profile = WorkloadProfile {
            model_bytes,
            workers: p,
            bytes_per_pair_layer,
        };
        Recommendation {
            variant: recommend::recommend_variant(&profile),
            profile,
        }
    }

    /// Runs one single-batch inference request end to end.
    pub fn submit(&self, req: &InferenceRequest) -> Result<InferenceReport, FsdError> {
        self.submit_batched(&BatchedRequest {
            variant: req.variant,
            workers: req.workers,
            memory_mb: req.memory_mb,
            batches: vec![req.inputs.clone()],
        })
    }

    /// Runs several successive batches through one worker tree (paper
    /// Fig. 1): the tree is launched once, weights are loaded once, and a
    /// barrier + reduce closes each batch.
    pub fn submit_batched(&self, req: &BatchedRequest) -> Result<InferenceReport, FsdError> {
        if req.batches.is_empty() {
            return Err(FsdError::EmptyRequest);
        }
        let resolved = self.resolve_variant(req);
        let p = if resolved == Variant::Serial {
            1
        } else {
            req.workers.max(1)
        };
        if resolved == Variant::Serial {
            self.prepare(1);
        } else {
            // Distributed paths read per-worker artifacts even when the
            // tree degenerates to one worker, so stage a partition for
            // any P ≥ 1.
            self.ensure_partition(p);
        }

        // The flow id namespaces everything this request touches.
        let flow = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let input_key = format!("inputs/req{flow}");
        let partition = if resolved == Variant::Serial {
            None
        } else {
            Some(self.state.read().partitions[&p].partition.clone())
        };
        for (b, batch) in req.batches.iter().enumerate() {
            stage_inputs(
                &self.env,
                &format!("{input_key}/b{b}"),
                batch,
                partition.as_deref(),
            );
        }

        // Requests arrive at the origin of their own virtual timeline. The
        // billing window is the request's *flow*: every worker launched
        // below carries the flow on its clock, so the service meters bucket
        // this request's events separately from concurrent neighbors'
        // (offline staging uses unbilled writes and never shows up).
        let arrival = VirtualTime::ZERO;
        let samples: usize = req.batches.iter().map(|b| b.width()).sum();
        let widths: Vec<usize> = req.batches.iter().map(|b| b.width()).collect();

        let launched = self.execute(resolved, p, req.memory_mb, &input_key, &widths, flow);

        // Per-request input artifacts are dead after the run (success or
        // not); remove them so a long-lived service does not accrete state.
        self.env
            .object_store()
            .delete_prefix(ARTIFACT_BUCKET, &format!("{input_key}/"));
        // Harvest-and-release the request-local billing windows (success or
        // not — a long-lived service must not accrete per-flow buckets).
        let comm = self.env.release_flow(flow);
        let lambda: LambdaSnapshot = self.platform.lambda_meter().release_flow(flow);
        let (root_out, reports, client) = launched?;
        let per_worker: Vec<WorkerReport> = reports
            .iter()
            .map(|(rank, r)| WorkerReport {
                rank: *rank,
                started: r.started,
                finished: r.finished,
                billed_ms: r.billed_ms,
                peak_mem_bytes: r.peak_mem_bytes,
                memory_mb: r.memory_mb,
            })
            .collect();
        let last_finish = per_worker
            .iter()
            .map(|w| w.finished)
            .max()
            .ok_or(FsdError::NoWorkerReports)?;
        let latency =
            VirtualTime::from_micros(last_finish.as_micros().saturating_sub(arrival.as_micros()));
        let outputs = root_out.final_batches.ok_or(FsdError::MissingOutput)?;
        if outputs.is_empty() {
            return Err(FsdError::MissingOutput);
        }
        let cost_actual = self.cost.actual(&lambda, &comm);
        let cost_predicted = self
            .cost
            .predicted(&lambda, &client, root_out.artifact_gets, 0);
        #[allow(deprecated)]
        Ok(InferenceReport {
            variant: resolved,
            workers: p,
            arrival,
            latency,
            per_worker,
            comm,
            lambda,
            client,
            cost_actual,
            cost_predicted,
            output: outputs[0].clone(),
            outputs,
            samples,
            work_done: root_out.work_done,
        })
    }

    /// Resolves [`Variant::Auto`] into a concrete variant for this request
    /// using the §IV-C rules; the per-pair volume estimate comes from the
    /// request's own first batch (wire bytes per row as a proxy for the
    /// intermediate activations the layers will exchange). Explicit
    /// variants pass through unchanged. Public as a planning hook: the
    /// scheduler (and tests) can ask where a request *would* route without
    /// executing it.
    pub fn resolve_variant(&self, req: &BatchedRequest) -> Variant {
        match req.variant {
            Variant::Auto => {
                let first = &req.batches[0];
                let est_bytes_per_row = codec::encoded_size(first) / first.n_rows().max(1);
                self.recommend(req.workers.max(1), est_bytes_per_row)
                    .variant
            }
            v => v,
        }
    }

    /// Dispatches a resolved request to its execution path.
    fn execute(
        &self,
        variant: Variant,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
        flow: u64,
    ) -> ExecuteResult {
        match variant {
            Variant::Serial => {
                let (out, report) = self.launch_serial(input_key, widths.len(), flow)?;
                Ok((out, vec![(0u32, report)], ChannelStatsSnapshot::default()))
            }
            Variant::Auto => unreachable!("Auto resolves before execution"),
            routed => {
                let name = routed
                    .channel_name()
                    .expect("routed variants name a channel");
                let provider = self
                    .registry
                    .get(name)
                    .ok_or_else(|| FsdError::UnknownChannel {
                        name: name.to_string(),
                    })?;
                let channel = provider.provision(&self.env, p, self.cfg.channel, flow);
                let launched =
                    self.launch_tree(channel.clone(), p, memory_mb, input_key, widths, flow);
                // Harvest request-local stats, then release the request's
                // queues/subscriptions/objects — error or not.
                let client = channel.stats().snapshot();
                channel.teardown();
                let (out, reports) = launched?;
                Ok((out, reports, client))
            }
        }
    }

    /// Coordinator (128 MB) + serial worker at the maximum memory.
    fn launch_serial(
        &self,
        input_key: &str,
        n_batches: usize,
        flow: u64,
    ) -> Result<(WorkerOutput, InvocationReport), FaasError> {
        let spec = *self.dnn.spec();
        let model_key = self.model_key.clone();
        let input_key = input_key.to_string();
        let platform = self.platform.clone();
        let serial_memory = self.cfg.serial_memory_mb;
        let coordinator = self.platform.invoke(
            FunctionConfig::coordinator().for_flow(flow),
            VirtualTime::ZERO,
            move |ctx| {
                ctx.charge_work(10_000); // request parsing
                let at = ctx.now();
                let inv = platform.invoke(
                    FunctionConfig::worker("fsd-serial", serial_memory).for_flow(flow),
                    at,
                    move |worker_ctx| {
                        run_serial(worker_ctx, &model_key, &input_key, &spec, n_batches)
                    },
                );
                inv.join()
            },
        );
        let ((out, report), _coord_report) = coordinator.join()?;
        Ok((out, report))
    }

    /// Coordinator + hierarchical worker tree over a channel.
    fn launch_tree(
        &self,
        channel: Arc<dyn FsiChannel>,
        p: u32,
        memory_mb: u32,
        input_key: &str,
        widths: &[usize],
        flow: u64,
    ) -> Result<(WorkerOutput, Vec<(u32, InvocationReport)>), FaasError> {
        let params = WorkerParams {
            n_workers: p,
            branching: self.cfg.branching,
            memory_mb,
            model_key: self.model_key.clone(),
            input_key: input_key.to_string(),
            spec: *self.dnn.spec(),
            batch_widths: widths.to_vec(),
        };
        let platform = self.platform.clone();
        let coordinator = self.platform.invoke(
            FunctionConfig::coordinator().for_flow(flow),
            VirtualTime::ZERO,
            move |ctx| {
                ctx.charge_work(10_000); // request parsing
                let at = ctx.now();
                let inv = platform.invoke(
                    FunctionConfig::worker("fsd-worker-0", params.memory_mb).for_flow(flow),
                    at,
                    move |worker_ctx| run_worker(worker_ctx, channel, 0, params),
                );
                inv.join()
            },
        );
        let ((root_out, root_report), _coord) = coordinator.join()?;
        let mut reports = vec![(0u32, root_report)];
        reports.extend(root_out.subtree_reports.iter().copied());
        Ok((root_out, reports))
    }
}

type ExecuteResult = Result<
    (
        WorkerOutput,
        Vec<(u32, InvocationReport)>,
        ChannelStatsSnapshot,
    ),
    FsdError,
>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ServiceBuilder;
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
    use fsd_sparse::SparseRows;

    fn small_service(seed: u64) -> (Arc<FsdService>, SparseRows, SparseRows) {
        let spec = DnnSpec {
            neurons: 64,
            layers: 3,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, seed));
        let expected = dnn.serial_inference(&inputs);
        (
            Arc::new(ServiceBuilder::new(dnn).deterministic(seed).build()),
            inputs,
            expected,
        )
    }

    #[test]
    fn empty_request_is_an_error() {
        let (service, ..) = small_service(1);
        let res = service.submit_batched(&BatchedRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 1769,
            batches: vec![],
        });
        assert_eq!(res.unwrap_err(), FsdError::EmptyRequest);
    }

    #[test]
    fn unknown_channel_is_an_error() {
        let spec = DnnSpec {
            neurons: 48,
            layers: 2,
            nnz_per_row: 6,
            bias: -0.25,
            clip: 32.0,
            seed: 2,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(6, 2));
        let service = ServiceBuilder::new(dnn)
            .deterministic(2)
            .clear_channels()
            .build();
        let res = service.submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 2,
            memory_mb: 1769,
            inputs,
        });
        assert_eq!(
            res.unwrap_err(),
            FsdError::UnknownChannel {
                name: "queue".into()
            }
        );
    }

    #[test]
    fn requests_get_distinct_flows_and_clean_up() {
        let (service, inputs, expected) = small_service(3);
        for variant in [Variant::Queue, Variant::Object] {
            let report = service
                .submit(&InferenceRequest {
                    variant,
                    workers: 3,
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                })
                .expect("runs");
            assert_eq!(report.first_output(), &expected);
        }
        assert_eq!(service.requests_served(), 2);
        // Queue-channel teardown removed the per-request queues and
        // filter policies.
        assert_eq!(service.env().queue_count(), 0);
        assert_eq!(service.env().pubsub().subscription_count(0), 0);
        // Object-channel teardown removed the flow-namespaced objects.
        for i in 0..service.env().config().n_buckets {
            assert_eq!(
                service
                    .env()
                    .object_store()
                    .object_count(&fsd_comm::bucket_name(i)),
                0,
                "bucket {i} still holds intermediate objects"
            );
        }
    }

    #[test]
    fn auto_routes_small_models_to_serial() {
        let (service, inputs, expected) = small_service(4);
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Auto,
                workers: 4,
                memory_mb: 1769,
                inputs,
            })
            .expect("auto runs");
        assert_eq!(
            report.variant,
            Variant::Serial,
            "tiny model must route to Serial"
        );
        assert_eq!(report.workers, 1);
        assert_eq!(report.first_output(), &expected);
    }

    #[test]
    fn distributed_variants_run_with_a_single_worker() {
        // A degenerate one-worker tree must still work: the service stages
        // a 1-way partition instead of failing on missing per-worker
        // artifacts.
        let (service, inputs, expected) = small_service(6);
        for variant in [Variant::Queue, Variant::Object] {
            let report = service
                .submit(&InferenceRequest {
                    variant,
                    workers: 0, // clamped to 1
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                })
                .unwrap_or_else(|e| panic!("{variant} with one worker: {e}"));
            assert_eq!(report.workers, 1);
            assert_eq!(report.first_output(), &expected);
        }
    }

    #[test]
    fn partition_accessor_handles_degenerate_counts() {
        let (service, ..) = small_service(7);
        // p <= 1 returns the 1-way partition instead of panicking on a
        // missing map entry.
        let one = service.partition(1);
        assert_eq!(one.n_parts(), 1);
        assert!(Arc::ptr_eq(&one, &service.partition(0)));
        let three = service.partition(3);
        assert_eq!(three.n_parts(), 3);
    }

    #[test]
    fn latency_derives_from_arrival() {
        let (service, inputs, _) = small_service(5);
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Object,
                workers: 2,
                memory_mb: 1769,
                inputs,
            })
            .expect("runs");
        assert_eq!(report.arrival, VirtualTime::ZERO);
        let last = report
            .per_worker
            .iter()
            .map(|w| w.finished)
            .max()
            .expect("workers");
        assert_eq!(
            report.latency.as_micros(),
            last.as_micros() - report.arrival.as_micros()
        );
    }
}
