//! The unified, structured error type of the public serving API.
//!
//! Everything a request can die of is enumerated here: the two FaaS limits
//! the paper designs against, structured communication failures (wrapping
//! [`CommFailure`] rather than a formatted string), and the service-level
//! conditions (empty request, unknown channel, missing output). Deep engine
//! plumbing keeps using [`fsd_faas::FaasError`] — function bodies run under
//! the FaaS platform and must speak its error type — and the service maps
//! it at the boundary via `From`.

use fsd_comm::VirtualTime;
use fsd_faas::{CommFailure, FaasError};

/// Errors returned by the `FsdService` request path.
#[derive(Debug, Clone, PartialEq)]
pub enum FsdError {
    /// A worker's resident data exceeded its configured memory.
    OutOfMemory {
        /// Bytes resident when the limit tripped.
        used_bytes: usize,
        /// The instance's configured limit.
        limit_bytes: usize,
    },
    /// A worker exceeded the platform's maximum runtime.
    Timeout {
        /// Virtual runtime at the kill.
        elapsed: VirtualTime,
        /// The configured limit.
        limit: VirtualTime,
    },
    /// A communication or codec operation failed.
    Comm(CommFailure),
    /// The request carried no batches.
    EmptyRequest,
    /// The requested variant has no registered channel provider.
    UnknownChannel {
        /// The provider name the variant resolved to.
        name: String,
    },
    /// The run completed but the root worker produced no final output
    /// (an engine invariant violation, surfaced instead of masked).
    MissingOutput,
    /// The run completed but produced no worker reports, so latency and
    /// billing attribution would be meaningless (an engine invariant
    /// violation, previously masked as a zero latency).
    NoWorkerReports,
    /// The scheduler's admission queue for the request's priority class is
    /// full: explicit backpressure instead of unbounded buffering. The
    /// caller should retry after `retry_after` (virtual time, estimated
    /// from the current backlog and observed service latency).
    Overloaded {
        /// Suggested virtual-time backoff before retrying.
        retry_after: VirtualTime,
    },
    /// The scheduler is draining for shutdown and accepts no new requests.
    ShuttingDown,
    /// The scheduler has no model registered under this name.
    UnknownModel {
        /// The name the request addressed.
        name: String,
    },
}

impl std::fmt::Display for FsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsdError::OutOfMemory {
                used_bytes,
                limit_bytes,
            } => {
                write!(
                    f,
                    "out of memory: {used_bytes} bytes used, limit {limit_bytes}"
                )
            }
            FsdError::Timeout { elapsed, limit } => {
                write!(f, "worker timed out: ran {elapsed}, limit {limit}")
            }
            FsdError::Comm(failure) => write!(f, "communication failure: {failure}"),
            FsdError::EmptyRequest => write!(f, "request carried no batches"),
            FsdError::UnknownChannel { name } => {
                write!(f, "no channel provider registered under {name:?}")
            }
            FsdError::MissingOutput => write!(f, "root worker returned no final output"),
            FsdError::NoWorkerReports => write!(f, "run produced no worker reports"),
            FsdError::Overloaded { retry_after } => {
                write!(f, "scheduler overloaded: retry after {retry_after}")
            }
            FsdError::ShuttingDown => write!(f, "scheduler is shutting down"),
            FsdError::UnknownModel { name } => {
                write!(f, "no model registered under {name:?}")
            }
        }
    }
}

impl std::error::Error for FsdError {}

impl From<FaasError> for FsdError {
    fn from(e: FaasError) -> FsdError {
        match e {
            FaasError::OutOfMemory {
                used_bytes,
                limit_bytes,
            } => FsdError::OutOfMemory {
                used_bytes,
                limit_bytes,
            },
            FaasError::Timeout { elapsed, limit } => FsdError::Timeout { elapsed, limit },
            FaasError::Comm(failure) => FsdError::Comm(failure),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faas_errors_map_structurally() {
        let oom = FaasError::OutOfMemory {
            used_bytes: 10,
            limit_bytes: 5,
        };
        assert_eq!(
            FsdError::from(oom),
            FsdError::OutOfMemory {
                used_bytes: 10,
                limit_bytes: 5
            }
        );
        let to = FaasError::Timeout {
            elapsed: VirtualTime::from_micros(9),
            limit: VirtualTime::from_micros(3),
        };
        assert!(matches!(FsdError::from(to), FsdError::Timeout { .. }));
        let comm = FaasError::comm("get", "bucket/key", "no such key");
        match FsdError::from(comm) {
            FsdError::Comm(failure) => {
                assert_eq!(failure.op, "get");
                assert_eq!(failure.resource, "bucket/key");
            }
            other => panic!("expected Comm, got {other:?}"),
        }
    }

    #[test]
    fn scheduler_errors_display() {
        let overloaded = FsdError::Overloaded {
            retry_after: VirtualTime::from_secs_f64(1.5),
        };
        assert!(overloaded.to_string().contains("retry after"));
        assert!(FsdError::ShuttingDown.to_string().contains("shutting down"));
    }

    #[test]
    fn displays_are_informative() {
        assert!(FsdError::EmptyRequest.to_string().contains("no batches"));
        assert!(FsdError::UnknownChannel {
            name: "warp".into()
        }
        .to_string()
        .contains("warp"));
        assert!(FsdError::MissingOutput
            .to_string()
            .contains("no final output"));
        assert!(FsdError::NoWorkerReports
            .to_string()
            .contains("no worker reports"));
    }
}
