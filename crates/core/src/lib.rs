//! # fsd-core — FSD-Inference: fully serverless distributed inference
//!
//! The paper's primary contribution, faithfully reproduced:
//!
//! * **FSI Algorithms 1 & 2** ([`worker`] + the two channels): intra-layer
//!   model parallelism over disconnected FaaS instances, with communication
//!   overlapped against the local sparse product;
//! * **[`QueueChannel`]** — pub-sub + per-worker queues, byte-string
//!   chunking by NNZ heuristic, ≤10-message/≤256 KiB publish batching,
//!   service-side filter fan-out, long polling;
//! * **[`ObjectChannel`]** — one object per (source, target) pair, multiple
//!   buckets, `.nul` markers, redundant-read avoidance;
//! * **[`HybridChannel`]** — queue control plane with payloads above
//!   [`ChannelOptions::spill_threshold`] spilled to object storage behind
//!   in-queue pointer records (the paper's deployed mixed regime);
//! * **[`DirectChannel`]** — FMI-style NAT-punched direct exchange, zero
//!   per-message API cost after the pairwise handshake;
//! * **hierarchical launch** — `worker_invoke_children` b-ary tree;
//! * **multicast weight streaming** — [`EngineConfig::stream_weights`]:
//!   λScale-style cold starts where rank 0 fetches each weight block once
//!   and multicasts it down the launch-tree topology, with per-layer lazy
//!   decode and a process-wide [`WeightCache`];
//! * **collectives** — [`channel::barrier`] / [`channel::reduce`] built on
//!   the same serverless primitives;
//! * **cost model** (Section IV) — [`cost::CostModel`] with actual
//!   (service-metered) vs predicted (client-metered) breakdowns;
//! * **design recommendations** (Section IV-C) — [`recommend_variant`],
//!   applied per request by [`Variant::Auto`].
//!
//! Entry point: [`ServiceBuilder`] → [`FsdService`]. The service's request
//! path takes `&self`, so one `Arc<FsdService>` serves concurrent requests
//! from many threads; per-request state (input keys, channels, queues,
//! object prefixes) is namespaced by a flow id and torn down after each
//! run. Channel backends plug in through [`ChannelProvider`] /
//! [`ChannelRegistry`]. Errors are the structured [`FsdError`].
//!
//! With [`ServiceBuilder::warm_pool`], launched worker trees stay parked
//! between requests of the same `(variant, P, memory)` shape and matching
//! requests are routed into them — skipping cold start, launch rounds and
//! weight loads ([`LaunchPath::WarmHit`] in the report); see [`TreeKey`]
//! and [`WarmPoolStats`].
//!
//! ```
//! use fsd_core::{InferenceRequest, ServiceBuilder, Variant};
//! use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
//! use std::sync::Arc;
//!
//! let spec = DnnSpec { neurons: 64, layers: 3, nnz_per_row: 8,
//!                      bias: -0.2, clip: 32.0, seed: 1 };
//! let dnn = Arc::new(generate_dnn(&spec));
//! let inputs = generate_inputs(64, &InputSpec::scaled(8, 1));
//! let expected = dnn.serial_inference(&inputs);
//!
//! let service = Arc::new(ServiceBuilder::new(dnn).deterministic(1).build());
//! let report = service
//!     .submit(&InferenceRequest { variant: Variant::Queue, workers: 3, memory_mb: 1024, inputs })
//!     .unwrap();
//! assert_eq!(report.first_output(), &expected);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod artifacts;
mod builder;
pub mod channel;
pub mod cost;
mod direct_channel;
mod engine;
mod error;
mod health;
mod hybrid_channel;
mod object_channel;
mod pool;
mod provider;
mod queue_channel;
mod recommend;
mod retry;
mod service;
mod stats;
mod warm;
mod weight_cache;
mod weight_stream;
pub mod wire;
pub mod worker;

pub use artifacts::{
    load_full_model, load_input_share, load_worker_artifacts, stage_full_model, stage_inputs,
    stage_partitioned_model, LayerSlot, WorkerArtifacts, ARTIFACT_BUCKET,
};
pub use builder::ServiceBuilder;
pub use channel::{barrier, reduce, FsiChannel, RecvTracker, Tag};
pub use direct_channel::DirectChannel;
pub use engine::{
    BatchedRequest, EngineConfig, InferenceReport, InferenceRequest, LaunchPath, Variant,
    WorkerReport,
};
pub use error::FsdError;
pub use health::{BreakerState, HealthSnapshot, TransportHealthSnapshot};
pub use hybrid_channel::HybridChannel;
pub use object_channel::ObjectChannel;
pub use pool::{ManualClock, SystemClock, WallClock, WarmPoolConfig, WarmPoolStats};
pub use provider::{
    ChannelProvider, ChannelRegistry, DirectChannelProvider, HybridChannelProvider,
    ObjectChannelProvider, QueueChannelProvider,
};
pub use queue_channel::{ChannelOptions, QueueChannel};
pub use retry::RetryPolicy;

pub use recommend::{
    channel_variant, fits_instance, fits_single_instance, recommend_variant, Recommendation,
    WorkloadProfile,
};
pub use service::{FailedAttemptBill, FsdService};
pub use stats::{ChannelStats, ChannelStatsSnapshot};
pub use warm::TreeKey;
pub use weight_cache::{WeightCache, WeightCacheStats};
