//! λScale-style multicast weight loading for streamed cold starts.
//!
//! With [`crate::EngineConfig::stream_weights`] on, a cold tree launch
//! stops loading weights independently per worker. Rank 0 becomes the
//! *multicast source*: it fetches every partition's artifact objects from
//! object storage exactly once (through the service-wide
//! [`crate::WeightCache`], so repeat launches skip even that) and pushes
//! the encoded blocks down the launch tree over the
//! [`fsd_comm::WeightNet`] fabric. Interior ranks keep their own blocks
//! and relay the rest toward their destinations on their own lane clocks;
//! layer blocks stay encoded until compute first touches them
//! ([`crate::artifacts::WorkerArtifacts::ensure_layer`]) — λScale's
//! execute-while-load.
//!
//! # Timing model
//!
//! The source pipelines its GETs over [`FETCH_SLOTS`] concurrent
//! connections (each a forked [`VClock`]) and serializes outbound
//! transfers on a single forward-lane clock, observing each block's fetch
//! completion before sending it. Sends are asynchronous to the source's
//! own compute — wire time rides on the frame stamps that receivers (and
//! the source's own lazy decodes) observe, and forwarded bytes are billed
//! to the forwarding flow by the fabric itself. The manifest is ordered
//! maps-first (every rank can assemble early), then *layer-major* across
//! ranks, so every rank's layer 0 arrives before any rank's layer 1 and
//! first-layer compute overlaps later-layer transfer tree-wide.
//!
//! # Failure semantics
//!
//! Control frames are never faulted, so the stream's outcome always
//! reaches the subtree. A faulted block send aborts the sender's whole
//! subtree ([`WeightPayload::Abort`]); aborted receivers fall back to a
//! cache-assisted independent load. Because the source inserts every
//! fetched block into the shared cache *before* sending it, fallback
//! loads miss only blocks the source never fetched — each owned by
//! exactly one receiver — so every artifact object is GET'd at most once
//! globally, fault or no fault, and the run's total GET count equals the
//! non-streaming path's.

use crate::artifacts::{
    assemble_streamed, fetch_encoded, worker_layer_key, worker_owned_key, worker_recv_key,
    worker_send_key, StreamedArtifacts, StreamedPart, WorkerArtifacts, ARTIFACT_DECODE_BPS,
};
use crate::weight_cache::WeightCache;
use crate::wire;
use fsd_comm::{VClock, VirtualTime, WeightPayload};
use fsd_faas::launch::{children_of, hop_toward};
use fsd_faas::{FaasError, WorkerCtx};
use fsd_sparse::ColMajorBlock;
use std::collections::HashMap;
use std::sync::Arc;

/// Concurrent GET connections the multicast source pipelines its
/// artifact fetches over (each is an independently-advancing clock; a
/// fetch lands on the earliest-free one).
const FETCH_SLOTS: usize = 8;

/// Which artifact object of one worker a key denotes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Part {
    Owned,
    Send,
    Recv,
    Layer(usize),
}

/// Accumulates one worker's streamed parts as frames arrive.
struct Stash {
    owned: Option<StreamedPart>,
    send: Option<StreamedPart>,
    recv: Option<StreamedPart>,
    layers: Vec<Option<StreamedPart>>,
    bytes: usize,
}

impl Stash {
    fn new(n_layers: usize) -> Stash {
        Stash {
            owned: None,
            send: None,
            recv: None,
            layers: (0..n_layers).map(|_| None).collect(),
            bytes: 0,
        }
    }

    fn put(&mut self, part: Part, body: Arc<[u8]>, available_at: VirtualTime) {
        self.bytes += body.len();
        let slot = StreamedPart { body, available_at };
        match part {
            Part::Owned => self.owned = Some(slot),
            Part::Send => self.send = Some(slot),
            Part::Recv => self.recv = Some(slot),
            Part::Layer(k) => self.layers[k] = Some(slot),
        }
    }

    /// Converts to assembly input if every part arrived.
    fn complete(self, n_gets: u64) -> Option<StreamedArtifacts> {
        let layers: Option<Vec<StreamedPart>> = self.layers.into_iter().collect();
        Some(StreamedArtifacts {
            owned: self.owned?,
            send: self.send?,
            recv: self.recv?,
            layers: layers?,
            n_gets,
        })
    }
}

/// The per-worker entry point of a streamed cold launch: rank 0 runs the
/// multicast source, every other rank drains (and relays) its stream.
/// Returns artifacts whose layer slots decode lazily; outputs are
/// bit-identical to [`crate::artifacts::load_worker_artifacts`].
pub(crate) fn stream_load(
    ctx: &mut WorkerCtx,
    cache: &WeightCache,
    model_key: &str,
    rank: u32,
    p: u32,
    n_layers: usize,
    branching: usize,
) -> Result<WorkerArtifacts, FaasError> {
    if rank == 0 {
        source_load(ctx, cache, model_key, p, n_layers, branching)
    } else {
        receive_load(ctx, cache, model_key, rank, p, n_layers, branching)
    }
}

/// Rank 0: fetch every rank's artifacts once (cache-first), multicast the
/// foreign ones down the launch tree, keep its own for lazy decode.
fn source_load(
    ctx: &mut WorkerCtx,
    cache: &WeightCache,
    model_key: &str,
    p: u32,
    n_layers: usize,
    branching: usize,
) -> Result<WorkerArtifacts, FaasError> {
    let env = ctx.env().clone();
    let net = env.weight_net();
    let generation = cache.generation();
    let children = children_of(0, branching, p as usize);

    // Maps first (rank-major) so every receiver can assemble as soon as
    // its maps land; then layers layer-major so layer-0 compute overlaps
    // layer-1+ transfer tree-wide.
    let mut manifest: Vec<(String, u32, Part)> = Vec::with_capacity(p as usize * (3 + n_layers));
    for m in 0..p {
        manifest.push((worker_owned_key(model_key, p, m), m, Part::Owned));
        manifest.push((worker_send_key(model_key, p, m), m, Part::Send));
        manifest.push((worker_recv_key(model_key, p, m), m, Part::Recv));
    }
    for k in 0..n_layers {
        for m in 0..p {
            manifest.push((worker_layer_key(model_key, p, m, k), m, Part::Layer(k)));
        }
    }

    let base = *ctx.clock_mut();
    let mut slots: Vec<VClock> = vec![base; FETCH_SLOTS];
    let mut fwd = base;
    let mut own = Stash::new(n_layers);
    let mut n_gets = 0u64;
    let mut relaying = true;

    for (key, dst, part) in manifest {
        if dst != 0 && !relaying {
            continue; // a dead subtree loads for itself; don't fetch for it
        }
        let (body, available_at) = match cache.lookup(&key) {
            // Resident process memory: no GET, no transfer, no wait.
            Some(body) => (body, VirtualTime::ZERO),
            None => {
                let slot = slots
                    .iter_mut()
                    .enumerate()
                    .min_by_key(|(i, c)| (c.now(), *i))
                    .map(|(_, c)| c)
                    .expect("FETCH_SLOTS > 0");
                let body = match fetch_encoded(&env, slot, &key) {
                    Ok(body) => body,
                    Err(e) => {
                        // The source itself is dead; its descendants must
                        // not wait on a stream that will never finish.
                        for &child in &children {
                            net.send_abort(&mut fwd, child);
                        }
                        return Err(e);
                    }
                };
                n_gets += 1;
                cache.insert_block(&key, body.clone(), generation);
                (body, slot.now())
            }
        };
        if dst == 0 {
            ctx.track_alloc(body.len());
            own.put(part, body, available_at);
        } else {
            // A block cannot leave before it has arrived; the forward lane
            // then serializes the outbound transfer.
            fwd.observe(available_at);
            let hop = hop_toward(0, dst as usize, branching);
            if net
                .send_block(&mut fwd, hop, dst as usize, &key, body)
                .is_err()
            {
                // The fabric below is suspect: abort the whole multicast
                // and let every receiver fall back to the shared cache.
                relaying = false;
                for &child in &children {
                    net.send_abort(&mut fwd, child);
                }
            }
        }
    }
    if relaying {
        for &child in &children {
            net.send_end(&mut fwd, child);
        }
    }
    let parts = own
        .complete(n_gets)
        .expect("source manifest covers every own part");
    assemble_streamed(ctx, parts)
}

/// Rank > 0: drain the stream, keeping own blocks and relaying the rest
/// toward their destinations; on abort (or a torn stream) fall back to a
/// cache-assisted independent load.
fn receive_load(
    ctx: &mut WorkerCtx,
    cache: &WeightCache,
    model_key: &str,
    rank: u32,
    p: u32,
    n_layers: usize,
    branching: usize,
) -> Result<WorkerArtifacts, FaasError> {
    let env = ctx.env().clone();
    let flow = ctx.config().flow;
    let drained = drain_stream(ctx, model_key, rank, p, n_layers, branching);
    // This hop's mailbox has exactly one receiver — this worker — so it is
    // dead weight from here on, whatever the outcome.
    env.weight_net().close_hop(flow, rank as usize);
    match drained? {
        Some(parts) => assemble_streamed(ctx, parts),
        None => cached_fallback_load(ctx, cache, model_key, p, rank, n_layers),
    }
}

/// The receive loop proper. `Ok(None)` means the stream aborted (or ended
/// torn) and the caller must fall back.
fn drain_stream(
    ctx: &mut WorkerCtx,
    model_key: &str,
    rank: u32,
    p: u32,
    n_layers: usize,
    branching: usize,
) -> Result<Option<StreamedArtifacts>, FaasError> {
    let env = ctx.env().clone();
    let net = env.weight_net();
    let flow = ctx.config().flow;
    let children = children_of(rank as usize, branching, p as usize);

    let mut expect: HashMap<String, Part> = HashMap::with_capacity(3 + n_layers);
    expect.insert(worker_owned_key(model_key, p, rank), Part::Owned);
    expect.insert(worker_send_key(model_key, p, rank), Part::Send);
    expect.insert(worker_recv_key(model_key, p, rank), Part::Recv);
    for k in 0..n_layers {
        expect.insert(worker_layer_key(model_key, p, rank, k), Part::Layer(k));
    }

    let mut stash = Stash::new(n_layers);
    // Relaying rides its own lane: forwarding a late block must never
    // stall this worker's compute, and vice versa.
    let mut relay = *ctx.clock_mut();
    let mut relaying = true;
    let mut known = 0usize;
    let ended = 'drain: loop {
        // A poisoned launch (peer death, coordinator teardown) must
        // unwedge this loop — the source may never send another frame.
        ctx.check_limits()?;
        let frames = net.fetch(flow, rank as usize, known);
        if frames.len() <= known {
            continue; // real-time grace expired; re-check limits and wait on
        }
        let fresh = frames[known..].to_vec();
        known = frames.len();
        for frame in fresh {
            match frame.payload {
                WeightPayload::Block { key, body } => {
                    if frame.dst == rank as usize {
                        if let Some(&part) = expect.get(key.as_str()) {
                            ctx.track_alloc(body.len());
                            stash.put(part, body, frame.available_at);
                        }
                    } else if relaying {
                        relay.observe(frame.available_at);
                        let hop = hop_toward(rank as usize, frame.dst, branching);
                        if net
                            .send_block(&mut relay, hop, frame.dst, &key, body)
                            .is_err()
                        {
                            // Everything below this hop is cut off; tell the
                            // subtree now and keep collecting own frames.
                            relaying = false;
                            for &child in &children {
                                net.send_abort(&mut relay, child);
                            }
                        }
                    }
                }
                WeightPayload::End => {
                    if relaying {
                        for &child in &children {
                            net.send_end(&mut relay, child);
                        }
                    }
                    break 'drain true;
                }
                WeightPayload::Abort => {
                    if relaying {
                        for &child in &children {
                            net.send_abort(&mut relay, child);
                        }
                    }
                    break 'drain false;
                }
            }
        }
    };
    let bytes = stash.bytes;
    if ended {
        // A receiver issued zero GETs — everything came over the fabric.
        if let Some(parts) = stash.complete(0) {
            return Ok(Some(parts));
        }
        // End arrived but parts are missing — a torn stream; fall back.
        ctx.track_free(bytes);
        return Ok(None);
    }
    // Aborted: the raw frames collected so far are discarded (the shared
    // cache still holds everything the source fetched, so the fallback
    // re-reads them for free).
    ctx.track_free(bytes);
    Ok(None)
}

/// Independent load used when the stream dies: identical decode/work/memory
/// charges to [`crate::artifacts::load_worker_artifacts`], but each object
/// is read through the shared cache first — blocks the dead stream's source
/// already fetched cost no GET and no transfer wait.
fn cached_fallback_load(
    ctx: &mut WorkerCtx,
    cache: &WeightCache,
    model_key: &str,
    p: u32,
    m: u32,
    n_layers: usize,
) -> Result<WorkerArtifacts, FaasError> {
    let mut n_gets = 0u64;
    let owned_body = cached_fetch(ctx, cache, &worker_owned_key(model_key, p, m), &mut n_gets)?;
    let owned =
        wire::decode_ids(&owned_body).map_err(|e| FaasError::comm("decode", "owned ids", e))?;
    let local_ids: Vec<u32> = (0..owned.len() as u32).collect();
    let mut weights = Vec::with_capacity(n_layers);
    let mut mem = owned.len() * 4;
    for k in 0..n_layers {
        let body = cached_fetch(
            ctx,
            cache,
            &worker_layer_key(model_key, p, m, k),
            &mut n_gets,
        )?;
        let sub = wire::decode_csr(&body)
            .map_err(|e| FaasError::comm("decode", format!("layer {k}"), e))?;
        let block = ColMajorBlock::from_layer(&sub, &local_ids);
        ctx.charge_work(block.nnz() as u64 * 2); // transpose construction
        mem += block.mem_bytes();
        weights.push(crate::artifacts::LayerSlot::Ready(block));
    }
    let send_body = cached_fetch(ctx, cache, &worker_send_key(model_key, p, m), &mut n_gets)?;
    let send =
        wire::decode_maps(&send_body).map_err(|e| FaasError::comm("decode", "send maps", e))?;
    let recv_body = cached_fetch(ctx, cache, &worker_recv_key(model_key, p, m), &mut n_gets)?;
    let recv =
        wire::decode_maps(&recv_body).map_err(|e| FaasError::comm("decode", "recv maps", e))?;
    mem += send
        .iter()
        .chain(recv.iter())
        .flatten()
        .map(|(_, r)| 8 + r.len() * 4)
        .sum::<usize>();
    ctx.track_alloc(mem);
    ctx.check_limits()?;
    Ok(WorkerArtifacts {
        owned,
        weights,
        send,
        recv,
        n_gets,
        mem_bytes: mem,
    })
}

/// Cache-first artifact read for the fallback path: a hit is resident
/// memory (no GET, no transfer — only the decode the caller charges); a
/// miss GETs on the worker's own clock and populates the cache, keeping
/// the global exactly-once-GET invariant.
fn cached_fetch(
    ctx: &mut WorkerCtx,
    cache: &WeightCache,
    key: &str,
    n_gets: &mut u64,
) -> Result<Arc<[u8]>, FaasError> {
    if let Some(body) = cache.lookup(key) {
        ctx.charge_bytes(body.len() as u64, ARTIFACT_DECODE_BPS);
        return Ok(body);
    }
    let env = ctx.env().clone();
    let generation = cache.generation();
    let body = fetch_encoded(&env, ctx.clock_mut(), key)?;
    *n_gets += 1;
    cache.insert_block(key, body.clone(), generation);
    ctx.charge_bytes(body.len() as u64, ARTIFACT_DECODE_BPS);
    Ok(body)
}
