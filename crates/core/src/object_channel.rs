//! FSD-Inf-Object: the object-storage channel (FSI Algorithm 2).
//!
//! Send path: exactly one object per (source, target) pair per tag —
//! `bucket-{n % B}/r/{tag}/{n}/{m}_{n}.dat` for data, or a 0-byte
//! `….nul` marker when the source has nothing to ship (so targets never
//! read empty files). Puts are issued over a modeled thread pool.
//!
//! Receive path: each worker scans only its own bucket/prefix with LIST,
//! skips `.nul` markers and files from already-completed sources (the
//! paper's redundant-read optimization), and GETs the rest.

use crate::channel::{FsiChannel, RecvTracker, Tag};
use crate::queue_channel::{decode_payload, encode_payload, ChannelOptions};
use crate::stats::ChannelStats;
use fsd_comm::{bucket_name, CloudEnv, VClock, VirtualTime};
use fsd_faas::{FaasError, WorkerCtx};
use fsd_sparse::SparseRows;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-`(receiver, tag)` scan state: keys already surfaced and the files
/// awaiting the tag's completion. Raw scans land here with no billing and
/// no clock movement; when the receiver's tracker completes, the billed
/// continuous-rescan sequence is reconstructed from the availability
/// stamps ([`fsd_comm::ObjectStore::settle_scans`]) and the `.dat` files
/// are fetched in deterministic stamp order — per-request timing and
/// billing never depend on which real-time scan surfaced which file.
#[derive(Default)]
struct ScanInbox {
    seen: HashSet<String>,
    /// `(stamp, key, source, is_nul)`.
    files: Vec<(VirtualTime, String, u32, bool)>,
}

/// The object-storage channel. One instance serves one request flow: every
/// key lives under a `f{flow}/` namespace, so concurrent requests share the
/// region's buckets without LIST scans ever surfacing each other's files.
pub struct ObjectChannel {
    env: Arc<CloudEnv>,
    n_workers: u32,
    n_buckets: usize,
    flow: u64,
    opts: ChannelOptions,
    stats: ChannelStats,
    /// Deferred scan state: `(receiver, tag) → inbox`.
    inboxes: Mutex<HashMap<(u32, u32), ScanInbox>>,
}

impl ObjectChannel {
    /// Binds a channel in the default flow (0) — single-request and test
    /// use. Serving code goes through [`ObjectChannel::setup_scoped`].
    pub fn setup(env: Arc<CloudEnv>, n_workers: u32, opts: ChannelOptions) -> Arc<ObjectChannel> {
        ObjectChannel::setup_scoped(env, n_workers, opts, 0)
    }

    /// Binds the channel to the environment's pre-created buckets, scoping
    /// every key under the request's flow namespace.
    pub fn setup_scoped(
        env: Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<ObjectChannel> {
        let n_buckets = env.config().n_buckets.max(1);
        Arc::new(ObjectChannel {
            env,
            n_workers,
            n_buckets,
            flow,
            opts,
            stats: ChannelStats::new(),
            inboxes: Mutex::new(HashMap::new()),
        })
    }

    /// Client-side statistics (cost-model inputs).
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Worker count this channel was set up for.
    pub fn n_workers(&self) -> u32 {
        self.n_workers
    }

    /// The request flow this channel is scoped to.
    pub fn flow(&self) -> u64 {
        self.flow
    }

    /// Bucket for a target worker: `bucket-{n % B}` (k-fold API limit).
    fn bucket_for(&self, target: u32) -> String {
        bucket_name(target as usize % self.n_buckets)
    }

    /// Prefix a target scans for a tag: `f{flow}/{tag}/{target}/`.
    fn prefix_for(&self, tag: Tag, target: u32) -> String {
        format!("f{}/{}/{}/", self.flow, tag.key_segment(), target)
    }
}

/// Parses `{src}_{target}.(dat|nul)` file names; returns `(src, is_nul)`.
fn parse_handle(key: &str) -> Option<(u32, bool)> {
    let name = key.rsplit('/').next()?;
    let (stem, ext) = name.rsplit_once('.')?;
    let is_nul = match ext {
        "nul" => true,
        "dat" => false,
        _ => return None,
    };
    let (src, _target) = stem.split_once('_')?;
    Some((src.parse().ok()?, is_nul))
}

impl FsiChannel for ObjectChannel {
    fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Deletes this flow's namespaced intermediate objects from every
    /// bucket (offline housekeeping; deletes are free on the billing model,
    /// as on S3).
    fn teardown(&self) {
        for i in 0..self.n_buckets {
            self.env
                .object_store()
                .delete_prefix(&bucket_name(i), &format!("f{}/", self.flow));
        }
    }

    fn send_layer(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        src: u32,
        sends: &[(u32, SparseRows)],
    ) -> Result<(), FaasError> {
        if sends.is_empty() {
            return Ok(());
        }
        // Build bodies first (single-threaded CPU work)…
        let mut puts: Vec<(String, String, Vec<u8>)> = Vec::with_capacity(sends.len());
        for (target, rows) in sends {
            let bucket = self.bucket_for(*target);
            let prefix = self.prefix_for(tag, *target);
            if rows.is_empty() && self.opts.nul_markers {
                // Algorithm 2 line 5: a 0-byte marker instead of data.
                puts.push((bucket, format!("{prefix}{src}_{target}.nul"), Vec::new()));
            } else {
                let body = encode_payload(ctx, &self.stats, rows, self.opts.compression);
                puts.push((bucket, format!("{prefix}{src}_{target}.dat"), body));
            }
        }
        // …then issue the PUTs over the modeled thread pool. Lane clocks
        // inherit the worker's flow so the PUTs bill to the request.
        let lanes = self.opts.send_threads.max(1);
        let lane0 = VClock::starting_at(ctx.now()).with_flow(ctx.clock_mut().flow());
        let mut lane_clocks: Vec<VClock> = vec![lane0; lanes];
        for (i, (bucket, key, body)) in puts.into_iter().enumerate() {
            let lane = &mut lane_clocks[i % lanes];
            let bytes = body.len() as u64;
            // A faulted PUT bills but stores nothing; re-PUT of the same
            // key/body is idempotent.
            let (res, retries) = self.opts.retry.run(lane, |lane| {
                self.env
                    .object_store()
                    .put(&bucket, &key, body.clone(), lane)
            });
            self.stats.add(&self.stats.retries, retries);
            res.map_err(|e| FaasError::comm("put", &key, e))?;
            self.stats.add(&self.stats.s3_puts, 1);
            self.stats.add(&self.stats.s3_bytes_put, bytes);
        }
        let slowest = lane_clocks.iter().map(|c| c.now()).max().expect("≥1 lane");
        ctx.clock_mut().observe(slowest);
        Ok(())
    }

    fn receive_round(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        me: u32,
        tracker: &mut RecvTracker,
    ) -> Result<Vec<(u32, SparseRows)>, FaasError> {
        let bucket = self.bucket_for(me);
        let prefix = self.prefix_for(tag, me);
        let want = tag.encode();
        if !tracker.done() {
            // Raw scan: name parsing only — every virtual effect (LIST
            // billing, GET fetches, decode charges, clock joins) is
            // deferred to the tag's completion. A source is complete when
            // its single `.dat`/`.nul` file has *surfaced by name*; the
            // data is fetched at completion in stamp order.
            let known = self
                .inboxes
                .lock()
                .get(&(me, want))
                .map_or(0, |inbox| inbox.seen.len());
            let found = self
                .env
                .object_store()
                .scan_keys(&bucket, &prefix, known)
                .map_err(|e| FaasError::comm("list", &prefix, e))?;
            let mut inboxes = self.inboxes.lock();
            let inbox = inboxes.entry((me, want)).or_default();
            let mut surfaced_new = false;
            for (key, stamp) in found {
                if !inbox.seen.insert(key.clone()) {
                    continue;
                }
                surfaced_new = true;
                let Some((src, is_nul)) = parse_handle(&key) else {
                    continue;
                };
                // Redundant-read optimization: completed sources are
                // skipped — their files are never fetched.
                if !tracker.is_pending(src) {
                    continue;
                }
                tracker.complete(src);
                inbox.files.push((stamp, key, src, is_nul));
            }
            drop(inboxes);
            if !surfaced_new && !tracker.done() {
                // Genuine producer drought beyond the real-time grace:
                // bill one unproductive LIST so the caller's limit checks
                // keep walking toward the virtual timeout.
                self.env.object_store().empty_scan(ctx.clock_mut());
                self.stats.add(&self.stats.s3_lists, 1);
                return Ok(Vec::new());
            }
        }
        if !tracker.done() {
            return Ok(Vec::new());
        }
        // Tag complete: settle the billed scan sequence from the stamp
        // set, then fetch the `.dat` files in deterministic stamp order.
        let inbox = self.inboxes.lock().remove(&(me, want)).unwrap_or_default();
        let mut files = inbox.files;
        files.sort_unstable_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let stamps: Vec<VirtualTime> = files.iter().map(|(stamp, ..)| *stamp).collect();
        let scans = self
            .env
            .object_store()
            .settle_scans(ctx.clock_mut(), None, &stamps);
        self.stats.add(&self.stats.s3_lists, scans);
        let mut out = Vec::new();
        for (_, key, src, is_nul) in files {
            if is_nul {
                continue;
            }
            // GET is a pure read — safe to retry on transients.
            let (res, retries) = self.opts.retry.run(ctx.clock_mut(), |clock| {
                self.env.object_store().get(&bucket, &key, clock)
            });
            self.stats.add(&self.stats.retries, retries);
            let body = res.map_err(|e| FaasError::comm("get", &key, e))?;
            self.stats.add(&self.stats.s3_gets, 1);
            let rows = decode_payload(ctx, &body, self.opts.compression)?;
            if !rows.is_empty() {
                out.push((src, rows));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::{CloudConfig, VirtualTime};
    use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};

    fn with_ctx<T: Send + 'static>(
        env: Arc<CloudEnv>,
        body: impl FnOnce(&mut WorkerCtx) -> Result<T, FaasError> + Send + 'static,
    ) -> T {
        let platform = FaasPlatform::new(env, ComputeModel::default());
        platform
            .invoke(FunctionConfig::worker("t", 2048), VirtualTime::ZERO, body)
            .join()
            .expect("test body ok")
            .0
    }

    fn rows(ids: &[u32]) -> SparseRows {
        SparseRows::from_rows(
            4,
            ids.iter().map(|&i| (i, vec![1u32, 3], vec![0.5f32, 2.5])),
        )
    }

    #[test]
    fn parse_handles() {
        assert_eq!(parse_handle("L3/5/2_5.dat"), Some((2, false)));
        assert_eq!(parse_handle("L3/5/12_5.nul"), Some((12, true)));
        assert_eq!(parse_handle("L3/5/garbage"), None);
        assert_eq!(parse_handle("L3/5/x_5.tmp"), None);
    }

    #[test]
    fn send_receive_roundtrip() {
        let env = CloudEnv::new(CloudConfig::deterministic(11));
        let ch = ObjectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        let sent = rows(&[0, 9]);
        let sent2 = sent.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(2), 0, &[(1, sent2)])
        });
        let got = with_ctx(env, move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(2), 1, &mut tracker)
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, sent);
    }

    #[test]
    fn nul_marker_completes_without_get() {
        let env = CloudEnv::new(CloudConfig::deterministic(12));
        let ch = ObjectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, SparseRows::new(4))])
        });
        let before_gets = env.snapshot().s3_get_requests;
        let got = with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        assert!(got.is_empty());
        assert_eq!(
            env.snapshot().s3_get_requests,
            before_gets,
            ".nul file was GET-read"
        );
    }

    #[test]
    fn one_put_per_target_per_layer() {
        let env = CloudEnv::new(CloudConfig::deterministic(13));
        let ch = ObjectChannel::setup(env.clone(), 4, ChannelOptions::default());
        let ch2 = ch.clone();
        let sends: Vec<(u32, SparseRows)> =
            vec![(1, rows(&[0])), (2, rows(&[1, 2])), (3, SparseRows::new(4))];
        with_ctx(env, move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &sends)
        });
        let snap = ch.stats().snapshot();
        assert_eq!(
            snap.s3_puts, 3,
            "object channel must put exactly one file per target"
        );
    }

    #[test]
    fn completed_sources_not_reread() {
        let env = CloudEnv::new(CloudConfig::deterministic(14));
        let ch = ObjectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch_send = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch_send.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[5]))])
        });
        let ch_recv = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch_recv.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)?;
            // Second round on a fresh tracker that does NOT expect source 0:
            // the .dat file is still listed, but must not be fetched again.
            let gets_before = ch_recv.stats().snapshot().s3_gets;
            let mut empty_tracker = RecvTracker::expecting([]);
            ch_recv.receive_round(ctx, Tag::Layer(0), 1, &mut empty_tracker)?;
            assert_eq!(ch_recv.stats().snapshot().s3_gets, gets_before);
            Ok(())
        });
    }

    #[test]
    fn different_targets_use_disjoint_prefixes() {
        let env = CloudEnv::new(CloudConfig::deterministic(15));
        // 2 workers share bucket count 10 → different buckets; force the
        // collision case with 12 workers: 1 and 11 share bucket-1.
        let ch = ObjectChannel::setup(env.clone(), 12, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[1])), (11, rows(&[2]))])
        });
        let ch_recv = ch.clone();
        let got1 = with_ctx(env.clone(), move |ctx| {
            let mut t = RecvTracker::expecting([0u32]);
            ch_recv.receive_all(ctx, Tag::Layer(0), 1, &mut t)
        });
        assert_eq!(got1[0].1.ids(), &[1]);
        let got11 = with_ctx(env, move |ctx| {
            let mut t = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 11, &mut t)
        });
        assert_eq!(got11[0].1.ids(), &[2]);
    }

    #[test]
    fn barrier_and_reduce_work_over_objects() {
        use crate::channel::{barrier, reduce};
        let env = CloudEnv::new(CloudConfig::deterministic(16));
        let ch = ObjectChannel::setup(env.clone(), 3, ChannelOptions::default());
        let platform = FaasPlatform::new(env, ComputeModel::default());
        let mut handles = Vec::new();
        for m in 0..3u32 {
            let ch = ch.clone();
            handles.push(platform.invoke(
                FunctionConfig::worker(format!("w{m}"), 2048),
                VirtualTime::ZERO,
                move |ctx| {
                    barrier(ch.as_ref(), ctx, m, 3, 0)?;
                    let mine = rows(&[m * 10]);
                    reduce(ch.as_ref(), ctx, m, 3, mine, 0)
                },
            ));
        }
        let outs: Vec<Option<SparseRows>> = handles
            .into_iter()
            .map(|h| h.join().expect("worker ok").0)
            .collect();
        let root = outs.iter().flatten().next().expect("root produced output");
        assert_eq!(root.ids(), &[0, 10, 20]);
        assert_eq!(outs.iter().filter(|o| o.is_some()).count(), 1);
    }
}
