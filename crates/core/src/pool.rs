//! The warm-tree pool: checkout/checkin of parked [`WorkerTree`]s.
//!
//! Trees are shelved by [`TreeKey`] `(variant, P, memory)`. A request of a
//! matching shape checks the most-recently-parked tree out (LIFO keeps the
//! hottest tree in use), runs, and checks it back in at teardown; a miss
//! falls back to a cold launch that creates the tree the checkin then
//! parks. The shelf is bounded (`max_trees`) — a checkin that would
//! overflow it shuts the tree down instead — and parked trees age out
//! after `idle_ttl` pool ticks.
//!
//! **Time base.** Requests run on private virtual timelines, so there is
//! no global virtual "now" to age idle trees against. The pool instead
//! counts **ticks**: every checkout attempt advances the pool clock by
//! one. `idle_ttl` is therefore "evict a tree that sat out this many
//! subsequent *distributed* requests" — Serial requests run no tree,
//! never reach the pool, and do not age the shelf. Tick counting is
//! deterministic under a deterministic request sequence — the property
//! every load-replay test relies on.
//!
//! **Invalidation.** [`TreePool::invalidate`] bumps the pool generation;
//! parked trees from older generations are shut down lazily at the next
//! pool operation (and eagerly by `invalidate` itself). Call it when the
//! model's staged artifacts change — a warm tree keeps its weights
//! resident, so it must never serve a request for newer weights.

use crate::warm::{TreeKey, WorkerTree};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Builder-facing pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct WarmPoolConfig {
    /// Maximum parked (idle) trees across all shapes; `0` disables the
    /// pool entirely.
    pub max_trees: usize,
    /// Idle ticks (subsequent checkout attempts) after which a parked tree
    /// is evicted. `u64::MAX` never evicts.
    pub idle_ttl: u64,
}

/// Point-in-time pool counters (all monotonic except `idle`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPoolStats {
    /// Checkouts that found a matching parked tree.
    pub hits: u64,
    /// Checkouts that found none (the request cold-launches).
    pub misses: u64,
    /// Trees created (cold launches + pre-warms) and offered to the pool.
    pub created: u64,
    /// Parked trees evicted by the idle TTL.
    pub evicted_ttl: u64,
    /// Parked trees dropped by a generation bump.
    pub evicted_stale: u64,
    /// Checkins discarded because the shelf was full.
    pub discarded_full: u64,
    /// Poisoned trees discarded at checkin (a worker died).
    pub discarded_poisoned: u64,
    /// Currently parked trees.
    pub idle: usize,
}

struct Parked {
    tree: WorkerTree,
    parked_at_tick: u64,
}

#[derive(Default)]
struct Counters {
    hits: u64,
    misses: u64,
    created: u64,
    evicted_ttl: u64,
    evicted_stale: u64,
    discarded_full: u64,
    discarded_poisoned: u64,
}

/// The pool itself; owned by the service, shared by all request threads.
pub(crate) struct TreePool {
    cfg: WarmPoolConfig,
    tick: AtomicU64,
    generation: AtomicU64,
    shelf: Mutex<Vec<Parked>>,
    counters: Mutex<Counters>,
}

impl TreePool {
    pub(crate) fn new(cfg: WarmPoolConfig) -> TreePool {
        TreePool {
            cfg,
            tick: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            shelf: Mutex::new(Vec::new()),
            counters: Mutex::new(Counters::default()),
        }
    }

    /// The current pool generation (new trees must carry it).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Checks a matching tree out (most recently parked first). Returns
    /// `None` on a miss — the caller cold-launches and later checks the
    /// new tree in.
    pub(crate) fn checkout(&self, key: TreeKey) -> Option<WorkerTree> {
        let now_tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let generation = self.generation();
        let mut expired: Vec<WorkerTree> = Vec::new();
        let picked = {
            let mut shelf = self.shelf.lock();
            let mut counters = self.counters.lock();
            // Age out stale / expired trees first, keeping the survivors.
            let mut survivors: Vec<Parked> = Vec::with_capacity(shelf.len());
            for parked in shelf.drain(..) {
                if parked.tree.generation() != generation {
                    counters.evicted_stale += 1;
                    expired.push(parked.tree);
                } else if now_tick.saturating_sub(parked.parked_at_tick) > self.cfg.idle_ttl {
                    counters.evicted_ttl += 1;
                    expired.push(parked.tree);
                } else {
                    survivors.push(parked);
                }
            }
            *shelf = survivors;
            let found = shelf.iter().rposition(|p| p.tree.key() == key);
            match found {
                Some(i) => {
                    counters.hits += 1;
                    Some(shelf.remove(i).tree)
                }
                None => {
                    counters.misses += 1;
                    None
                }
            }
        };
        for mut tree in expired {
            tree.shutdown();
        }
        picked
    }

    /// Records a newly created tree (cold launch or pre-warm).
    pub(crate) fn record_created(&self) {
        self.counters.lock().created += 1;
    }

    /// Returns a tree to the shelf — or shuts it down if it is poisoned,
    /// stale, or the shelf is full.
    pub(crate) fn checkin(&self, mut tree: WorkerTree) {
        if tree.is_poisoned() {
            self.counters.lock().discarded_poisoned += 1;
            tree.shutdown();
            return;
        }
        if tree.generation() != self.generation() {
            self.counters.lock().evicted_stale += 1;
            tree.shutdown();
            return;
        }
        let parked_at_tick = self.tick.load(Ordering::Relaxed);
        {
            let mut shelf = self.shelf.lock();
            if shelf.len() < self.cfg.max_trees {
                shelf.push(Parked {
                    tree,
                    parked_at_tick,
                });
                return;
            }
        }
        // Shelf full: the tree is discarded (outside the lock).
        self.counters.lock().discarded_full += 1;
        tree.shutdown();
    }

    /// Discards a tree without parking it (failed request teardown).
    pub(crate) fn discard(&self, mut tree: WorkerTree) {
        if tree.is_poisoned() {
            self.counters.lock().discarded_poisoned += 1;
        }
        tree.shutdown();
    }

    /// Bumps the generation and eagerly shuts every parked tree down.
    /// Returns how many trees were dropped.
    pub(crate) fn invalidate(&self) -> usize {
        self.generation.fetch_add(1, Ordering::Relaxed);
        let drained: Vec<Parked> = std::mem::take(&mut *self.shelf.lock());
        let n = drained.len();
        self.counters.lock().evicted_stale += n as u64;
        for mut parked in drained {
            parked.tree.shutdown();
        }
        n
    }

    /// Arms the kill switch of `rank` on one parked tree of shape `key`
    /// (failure injection / chaos hook). Returns whether a tree matched.
    pub(crate) fn arm_kill(&self, key: TreeKey, rank: u32) -> bool {
        let shelf = self.shelf.lock();
        match shelf.iter().rev().find(|p| p.tree.key() == key) {
            Some(parked) => {
                parked.tree.kill_worker(rank);
                true
            }
            None => false,
        }
    }

    /// Point-in-time counters.
    pub(crate) fn stats(&self) -> WarmPoolStats {
        // Lock order: shelf before counters, matching `checkout`.
        let idle = self.shelf.lock().len();
        let counters = self.counters.lock();
        WarmPoolStats {
            hits: counters.hits,
            misses: counters.misses,
            created: counters.created,
            evicted_ttl: counters.evicted_ttl,
            evicted_stale: counters.evicted_stale,
            discarded_full: counters.discarded_full,
            discarded_poisoned: counters.discarded_poisoned,
            idle,
        }
    }
}

impl Drop for TreePool {
    fn drop(&mut self) {
        let drained: Vec<Parked> = std::mem::take(&mut *self.shelf.lock());
        for parked in drained {
            // WorkerTree::drop shuts the instances down.
            drop(parked);
        }
    }
}
