//! The warm-tree pool: checkout/checkin of parked [`WorkerTree`]s.
//!
//! Trees are shelved by [`TreeKey`] `(variant, P, memory)`. A request of a
//! matching shape checks the most-recently-parked tree out (LIFO keeps the
//! hottest tree in use), runs, and checks it back in at teardown; a miss
//! falls back to a cold launch that creates the tree the checkin then
//! parks. The shelf is bounded (`max_trees`) — a checkin that would
//! overflow it evicts a parked tree of the **least-recently-used shape**
//! to make room (the incoming tree is always the hottest, so it parks) —
//! and parked trees age out after `idle_ttl` pool ticks.
//!
//! **Time base.** Requests run on private virtual timelines, so there is
//! no global virtual "now" to age idle trees against. The pool instead
//! counts **ticks**: every checkout attempt advances the pool clock by
//! one. `idle_ttl` is therefore "evict a tree that sat out this many
//! subsequent *distributed* requests" — Serial requests run no tree,
//! never reach the pool, and do not age the shelf. Tick counting is
//! deterministic under a deterministic request sequence — the property
//! every load-replay test relies on.
//!
//! **Wall-clock elasticity.** Long-lived deployments also want trees to
//! age out by *real* idle time, independent of traffic: a tree parked for
//! an hour is waste even if no distributed request ever ticked the pool.
//! [`WarmPoolConfig::wall_idle_ms`] enables a second, wall-clock TTL
//! enforced by [`TreePool::reap`] against an injectable [`WallClock`] —
//! production uses [`SystemClock`] (and typically a background reaper
//! thread, see `ServiceBuilder::background_reaper`), while deterministic
//! harnesses inject a [`ManualClock`] and drive `reap` explicitly, keeping
//! replays bit-identical.
//!
//! **Invalidation.** [`TreePool::invalidate`] bumps the pool generation;
//! parked trees from older generations are shut down lazily at the next
//! pool operation (and eagerly by `invalidate` itself). Call it when the
//! model's staged artifacts change — a warm tree keeps its weights
//! resident, so it must never serve a request for newer weights.

use crate::warm::{TreeKey, WorkerTree};
use fsd_faas::lockorder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock the pool ages parked trees against.
///
/// Production uses [`SystemClock`]; deterministic harnesses inject a
/// [`ManualClock`] and advance it explicitly, so wall-TTL eviction becomes
/// a pure function of the test script.
pub trait WallClock: Send + Sync {
    /// Milliseconds since an arbitrary (per-clock) origin; must never
    /// decrease.
    fn now_ms(&self) -> u64;
}

/// The real monotonic clock ([`Instant`]-based).
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl WallClock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A test clock that only moves when told to.
#[derive(Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock at origin zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::Relaxed);
    }
}

impl WallClock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Relaxed)
    }
}

/// Builder-facing pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct WarmPoolConfig {
    /// Maximum parked (idle) trees across all shapes; `0` disables the
    /// pool entirely.
    pub max_trees: usize,
    /// Idle ticks (subsequent checkout attempts) after which a parked tree
    /// is evicted. `u64::MAX` never evicts.
    pub idle_ttl: u64,
    /// Wall-clock idle milliseconds after which a reaper pass
    /// (`FsdService::reap_warm_trees`) evicts a parked tree; `None`
    /// disables the wall-clock path.
    pub wall_idle_ms: Option<u64>,
}

impl WarmPoolConfig {
    /// A tick-TTL-only configuration (the PR-3 shape).
    pub fn new(max_trees: usize, idle_ttl: u64) -> WarmPoolConfig {
        WarmPoolConfig {
            max_trees,
            idle_ttl,
            wall_idle_ms: None,
        }
    }

    /// Sizes a pool for a predicted workload of `shapes` distinct request
    /// shapes bursting up to `burst_depth` requests deep: the shelf holds
    /// one full burst of every shape simultaneously, and the tick TTL
    /// spans four shelf turnovers so a shape survives the other shapes'
    /// bursts between its own. This is the sizing
    /// `ServiceBuilder::auto_warm_pool` and the `sched` predictor share.
    pub fn auto(shapes: usize, burst_depth: usize) -> WarmPoolConfig {
        let max_trees = (shapes * burst_depth).max(1);
        WarmPoolConfig {
            max_trees,
            idle_ttl: 4 * max_trees as u64,
            wall_idle_ms: None,
        }
    }
}

/// Point-in-time pool counters (all monotonic except `idle`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPoolStats {
    /// Checkouts that found a matching parked tree.
    pub hits: u64,
    /// Checkouts that found none (the request cold-launches).
    pub misses: u64,
    /// Trees created (cold launches + pre-warms) and offered to the pool.
    pub created: u64,
    /// Parked trees evicted by the idle tick-TTL.
    pub evicted_ttl: u64,
    /// Parked trees evicted by the wall-clock reaper.
    pub evicted_wall: u64,
    /// Parked trees of the least-recently-used shape evicted to make room
    /// for a checkin on a full shelf.
    pub evicted_lru: u64,
    /// Parked trees evicted by an explicit per-shape eviction (predictor
    /// decisions, `FsdService::evict_warm_trees`).
    pub evicted_shape: u64,
    /// Parked trees dropped by a generation bump.
    pub evicted_stale: u64,
    /// Poisoned trees discarded at checkin (a worker died).
    pub discarded_poisoned: u64,
    /// Replacement trees launched and parked after a poisoned discard
    /// (`ServiceBuilder::regenerate_poisoned`).
    pub regenerated: u64,
    /// Currently parked trees.
    pub idle: usize,
}

struct Parked {
    tree: WorkerTree,
    parked_at_tick: u64,
    parked_at_ms: u64,
}

#[derive(Default)]
struct Counters {
    hits: u64,
    misses: u64,
    created: u64,
    evicted_ttl: u64,
    evicted_wall: u64,
    evicted_lru: u64,
    evicted_shape: u64,
    evicted_stale: u64,
    discarded_poisoned: u64,
    regenerated: u64,
}

/// The pool itself; owned by the service, shared by all request threads.
pub(crate) struct TreePool {
    cfg: WarmPoolConfig,
    clock: std::sync::Arc<dyn WallClock>,
    tick: AtomicU64,
    generation: AtomicU64,
    shelf: Mutex<Vec<Parked>>,
    /// Trees currently checked out (or cold-launched for a request),
    /// per shape — the predictor counts these toward a shape's standing
    /// so a burst's own checkouts don't trigger redundant pre-warms.
    in_use: Mutex<HashMap<TreeKey, usize>>,
    counters: Mutex<Counters>,
}

impl TreePool {
    pub(crate) fn new(cfg: WarmPoolConfig, clock: std::sync::Arc<dyn WallClock>) -> TreePool {
        TreePool {
            cfg,
            clock,
            tick: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            shelf: Mutex::new(Vec::new()),
            in_use: Mutex::new(HashMap::new()),
            counters: Mutex::new(Counters::default()),
        }
    }

    /// The current pool generation (new trees must carry it).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Checks a matching tree out (most recently parked first). Returns
    /// `None` on a miss — the caller cold-launches and later checks the
    /// new tree in.
    pub(crate) fn checkout(&self, key: TreeKey) -> Option<WorkerTree> {
        let now_tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let generation = self.generation();
        let mut expired: Vec<WorkerTree> = Vec::new();
        let picked = {
            let _shelf_ord = lockorder::acquire(lockorder::rank::POOL_SHELF, "pool.shelf");
            let mut shelf = self.shelf.lock();
            let _counters_ord = lockorder::acquire(lockorder::rank::POOL_COUNTERS, "pool.counters");
            let mut counters = self.counters.lock();
            // Age out stale / expired trees first, keeping the survivors.
            let mut survivors: Vec<Parked> = Vec::with_capacity(shelf.len());
            for parked in shelf.drain(..) {
                if parked.tree.generation() != generation {
                    counters.evicted_stale += 1;
                    expired.push(parked.tree);
                } else if now_tick.saturating_sub(parked.parked_at_tick) > self.cfg.idle_ttl {
                    counters.evicted_ttl += 1;
                    expired.push(parked.tree);
                } else {
                    survivors.push(parked);
                }
            }
            *shelf = survivors;
            let found = shelf.iter().rposition(|p| p.tree.key() == key);
            match found {
                Some(i) => {
                    counters.hits += 1;
                    Some(shelf.remove(i).tree)
                }
                None => {
                    counters.misses += 1;
                    None
                }
            }
        };
        for mut tree in expired {
            tree.shutdown();
        }
        if picked.is_some() {
            *self.in_use.lock().entry(key).or_insert(0) += 1;
        }
        picked
    }

    /// Records a newly created tree (cold launch or pre-warm).
    pub(crate) fn record_created(&self) {
        self.counters.lock().created += 1;
    }

    /// Records a replacement launch after a poisoned discard.
    pub(crate) fn record_regenerated(&self) {
        self.counters.lock().regenerated += 1;
    }

    /// Marks a cold-launched request tree as in service for its shape
    /// (checked-out trees are marked by `checkout` itself).
    pub(crate) fn note_in_use(&self, key: TreeKey) {
        *self.in_use.lock().entry(key).or_insert(0) += 1;
    }

    /// Drops one in-service mark for `key` (checkin or discard).
    /// Saturating: a build-time pre-warm's checkin has no matching mark.
    fn release_in_use(&self, key: TreeKey) {
        let mut in_use = self.in_use.lock();
        if let Some(n) = in_use.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                in_use.remove(&key);
            }
        }
    }

    /// Returns a tree to the shelf — or shuts it down if it is poisoned or
    /// stale. A full shelf no longer rejects the newcomer: a parked tree
    /// of the least-recently-used *shape* is evicted to make room, because
    /// the tree being checked in just served traffic and is therefore the
    /// hottest tree of its shape.
    pub(crate) fn checkin(&self, mut tree: WorkerTree) {
        self.release_in_use(tree.key());
        if tree.is_poisoned() {
            self.counters.lock().discarded_poisoned += 1;
            tree.shutdown();
            return;
        }
        if tree.generation() != self.generation() {
            let _counters_ord = lockorder::acquire(lockorder::rank::POOL_COUNTERS, "pool.counters");
            self.counters.lock().evicted_stale += 1;
            tree.shutdown();
            return;
        }
        let parked_at_tick = self.tick.load(Ordering::Relaxed);
        let parked_at_ms = self.clock.now_ms();
        let victim = {
            let _shelf_ord = lockorder::acquire(lockorder::rank::POOL_SHELF, "pool.shelf");
            let mut shelf = self.shelf.lock();
            let victim = if shelf.len() >= self.cfg.max_trees {
                let i = Self::lru_shape_victim(&shelf);
                let _counters_ord =
                    lockorder::acquire(lockorder::rank::POOL_COUNTERS, "pool.counters");
                self.counters.lock().evicted_lru += 1;
                Some(shelf.remove(i).tree)
            } else {
                None
            };
            shelf.push(Parked {
                tree,
                parked_at_tick,
                parked_at_ms,
            });
            victim
        };
        if let Some(mut victim) = victim {
            victim.shutdown();
        }
    }

    /// Index of the oldest parked tree of the least-recently-used shape.
    ///
    /// The shelf is ordered by checkin time, so a shape's *last* index is
    /// its most recent use; the shape whose last use is earliest is the
    /// LRU shape, and its first (oldest) tree is the victim.
    fn lru_shape_victim(shelf: &[Parked]) -> usize {
        let victim_key = shelf
            .iter()
            .map(|p| p.tree.key())
            .min_by_key(|&key| {
                shelf
                    .iter()
                    .rposition(|p| p.tree.key() == key)
                    .expect("key taken from the shelf")
            })
            .expect("checkin on a full shelf implies max_trees >= 1");
        shelf
            .iter()
            .position(|p| p.tree.key() == victim_key)
            .expect("victim shape is on the shelf")
    }

    /// Discards a tree without parking it (failed request teardown).
    pub(crate) fn discard(&self, mut tree: WorkerTree) {
        self.release_in_use(tree.key());
        if tree.is_poisoned() {
            self.counters.lock().discarded_poisoned += 1;
        }
        tree.shutdown();
    }

    /// Parked trees currently matching `key` (predictor sizing input).
    pub(crate) fn idle_of(&self, key: TreeKey) -> usize {
        let generation = self.generation();
        self.shelf
            .lock()
            .iter()
            .filter(|p| p.tree.key() == key && p.tree.generation() == generation)
            .count()
    }

    /// Trees of shape `key` that exist at all — parked or serving a
    /// request right now. The predictor tops a shape up to its burst
    /// target against *this* count, so checkouts by the burst's own
    /// requests don't look like missing capacity.
    pub(crate) fn live_of(&self, key: TreeKey) -> usize {
        self.idle_of(key) + self.in_use.lock().get(&key).copied().unwrap_or(0)
    }

    /// Evicts every parked tree of shape `key` (predictor decisions).
    /// Returns how many trees were dropped.
    pub(crate) fn evict_shape(&self, key: TreeKey) -> usize {
        let drained: Vec<WorkerTree> = {
            let _shelf_ord = lockorder::acquire(lockorder::rank::POOL_SHELF, "pool.shelf");
            let mut shelf = self.shelf.lock();
            let mut kept = Vec::with_capacity(shelf.len());
            let mut evicted = Vec::new();
            for parked in shelf.drain(..) {
                if parked.tree.key() == key {
                    evicted.push(parked.tree);
                } else {
                    kept.push(parked);
                }
            }
            *shelf = kept;
            let _counters_ord = lockorder::acquire(lockorder::rank::POOL_COUNTERS, "pool.counters");
            self.counters.lock().evicted_shape += evicted.len() as u64;
            evicted
        };
        let n = drained.len();
        for mut tree in drained {
            tree.shutdown();
        }
        n
    }

    /// Evicts parked trees whose wall-clock idle time exceeds
    /// `wall_idle_ms` (no-op when the wall TTL is disabled). Returns how
    /// many trees were dropped. Driven by the service's background reaper
    /// thread in production, or explicitly by harnesses holding a
    /// [`ManualClock`].
    pub(crate) fn reap(&self) -> usize {
        let Some(ttl_ms) = self.cfg.wall_idle_ms else {
            return 0;
        };
        let now_ms = self.clock.now_ms();
        let drained: Vec<WorkerTree> = {
            let _shelf_ord = lockorder::acquire(lockorder::rank::POOL_SHELF, "pool.shelf");
            let mut shelf = self.shelf.lock();
            let mut kept = Vec::with_capacity(shelf.len());
            let mut evicted = Vec::new();
            for parked in shelf.drain(..) {
                if now_ms.saturating_sub(parked.parked_at_ms) > ttl_ms {
                    evicted.push(parked.tree);
                } else {
                    kept.push(parked);
                }
            }
            *shelf = kept;
            let _counters_ord = lockorder::acquire(lockorder::rank::POOL_COUNTERS, "pool.counters");
            self.counters.lock().evicted_wall += evicted.len() as u64;
            evicted
        };
        let n = drained.len();
        for mut tree in drained {
            tree.shutdown();
        }
        n
    }

    /// Bumps the generation and eagerly shuts every parked tree down.
    /// Returns how many trees were dropped.
    pub(crate) fn invalidate(&self) -> usize {
        self.generation.fetch_add(1, Ordering::Relaxed);
        let drained: Vec<Parked> = std::mem::take(&mut *self.shelf.lock());
        let n = drained.len();
        self.counters.lock().evicted_stale += n as u64;
        for mut parked in drained {
            parked.tree.shutdown();
        }
        n
    }

    /// Arms the kill switch of `rank` on one parked tree of shape `key`
    /// (failure injection / chaos hook). Returns whether a tree matched.
    pub(crate) fn arm_kill(&self, key: TreeKey, rank: u32) -> bool {
        let shelf = self.shelf.lock();
        match shelf.iter().rev().find(|p| p.tree.key() == key) {
            Some(parked) => {
                parked.tree.kill_worker(rank);
                true
            }
            None => false,
        }
    }

    /// Point-in-time counters.
    pub(crate) fn stats(&self) -> WarmPoolStats {
        // Lock order: shelf before counters, matching `checkout` — enforced
        // by the debug-assertions lockorder registry.
        let idle = {
            let _shelf_ord = lockorder::acquire(lockorder::rank::POOL_SHELF, "pool.shelf");
            self.shelf.lock().len()
        };
        let _counters_ord = lockorder::acquire(lockorder::rank::POOL_COUNTERS, "pool.counters");
        let counters = self.counters.lock();
        WarmPoolStats {
            hits: counters.hits,
            misses: counters.misses,
            created: counters.created,
            evicted_ttl: counters.evicted_ttl,
            evicted_wall: counters.evicted_wall,
            evicted_lru: counters.evicted_lru,
            evicted_shape: counters.evicted_shape,
            evicted_stale: counters.evicted_stale,
            discarded_poisoned: counters.discarded_poisoned,
            regenerated: counters.regenerated,
            idle,
        }
    }
}

impl Drop for TreePool {
    fn drop(&mut self) {
        let drained: Vec<Parked> = std::mem::take(&mut *self.shelf.lock());
        for parked in drained {
            // WorkerTree::drop shuts the instances down.
            drop(parked);
        }
    }
}
