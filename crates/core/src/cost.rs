//! The FSD-Inference cost model (paper Section IV).
//!
//! `C_Queue = C_λ + C_SNS + C_SQS`, `C_Object = C_λ + C_S3`,
//! `C_Serial = C_λ` — with `C_λ = P·C_inv + P·T̄·M·C_run`.
//!
//! Two derivations are kept deliberately separate, mirroring §VI-F:
//! * **actual** — from the service-side billing meters (the simulation's
//!   "AWS Cost & Usage report");
//! * **predicted** — from the application's own client-side statistics.

use crate::stats::ChannelStatsSnapshot;
use fsd_comm::MeterSnapshot;
use fsd_faas::LambdaSnapshot;

/// Public AWS price points (us-east-1, late 2023 — the paper's era).
#[derive(Debug, Clone, Copy)]
pub struct PriceBook {
    /// Per Lambda invocation request ($0.20 / 1M).
    pub lambda_invoke: f64,
    /// Per MB-millisecond of Lambda runtime ($0.0000166667 / GB-s).
    pub lambda_mb_ms: f64,
    /// Per billed SNS publish request, 64 KiB granularity ($0.50 / 1M).
    pub sns_publish: f64,
    /// Per byte transferred SNS → SQS ($0.09 / GB).
    pub sns_byte: f64,
    /// Per SQS API call ($0.40 / 1M).
    pub sqs_api: f64,
    /// Per S3 PUT request ($0.005 / 1k).
    pub s3_put: f64,
    /// Per S3 GET request ($0.0004 / 1k).
    pub s3_get: f64,
    /// Per S3 LIST request ($0.005 / 1k).
    pub s3_list: f64,
}

impl Default for PriceBook {
    fn default() -> Self {
        PriceBook {
            lambda_invoke: 0.20 / 1e6,
            lambda_mb_ms: 0.000_016_666_7 / 1024.0 / 1000.0,
            sns_publish: 0.50 / 1e6,
            sns_byte: 0.09 / 1e9,
            sqs_api: 0.40 / 1e6,
            s3_put: 0.005 / 1e3,
            s3_get: 0.0004 / 1e3,
            s3_list: 0.005 / 1e3,
        }
    }
}

/// A cost split into the model's two terms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// `C_λ`: invocations + MB-ms.
    pub compute: f64,
    /// Communication services (SNS+SQS or S3, plus artifact GETs).
    pub comms: f64,
}

impl CostBreakdown {
    /// Total dollars.
    pub fn total(&self) -> f64 {
        self.compute + self.comms
    }

    /// Relative difference of totals (validation metric).
    pub fn relative_error(&self, other: &CostBreakdown) -> f64 {
        let a = self.total();
        let b = other.total();
        if a == 0.0 && b == 0.0 {
            return 0.0;
        }
        (a - b).abs() / a.abs().max(b.abs())
    }
}

/// The cost calculator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    /// Price points in force.
    pub prices: PriceBook,
}

impl CostModel {
    /// `C_λ` from billing counters.
    pub fn lambda_cost(&self, snap: &LambdaSnapshot) -> f64 {
        snap.invocations as f64 * self.prices.lambda_invoke
            + snap.mb_ms as f64 * self.prices.lambda_mb_ms
    }

    /// `C_λ` from the closed form `P·C_inv + P·T̄·M·C_run` (Eq. 4).
    pub fn lambda_cost_closed_form(&self, p: u64, avg_runtime_s: f64, memory_mb: u32) -> f64 {
        p as f64 * self.prices.lambda_invoke
            + p as f64 * avg_runtime_s * 1000.0 * memory_mb as f64 * self.prices.lambda_mb_ms
    }

    /// `C_SNS + C_SQS` (Eqs. 5–6).
    pub fn queue_comms(&self, s: u64, z: u64, q: u64) -> f64 {
        s as f64 * self.prices.sns_publish
            + z as f64 * self.prices.sns_byte
            + q as f64 * self.prices.sqs_api
    }

    /// `C_S3` (Eq. 7).
    pub fn object_comms(&self, v: u64, r: u64, l: u64) -> f64 {
        v as f64 * self.prices.s3_put
            + r as f64 * self.prices.s3_get
            + l as f64 * self.prices.s3_list
    }

    /// **Actual** cost from the service-side meters.
    pub fn actual(&self, lambda: &LambdaSnapshot, comm: &MeterSnapshot) -> CostBreakdown {
        CostBreakdown {
            compute: self.lambda_cost(lambda),
            comms: self.queue_comms(
                comm.sns_publish_requests,
                comm.sns_delivered_bytes,
                comm.sqs_api_calls,
            ) + self.object_comms(
                comm.s3_put_requests,
                comm.s3_get_requests,
                comm.s3_list_requests,
            ),
        }
    }

    /// **Predicted** cost from client-side channel statistics plus the
    /// engine's own accounting of invocations and artifact reads.
    pub fn predicted(
        &self,
        lambda: &LambdaSnapshot,
        client: &ChannelStatsSnapshot,
        artifact_gets: u64,
        input_staging_puts: u64,
    ) -> CostBreakdown {
        CostBreakdown {
            compute: self.lambda_cost(lambda),
            comms: self.queue_comms(client.sns_billed, client.bytes_sent, client.sqs_calls)
                + self.object_comms(
                    client.s3_puts + input_staging_puts,
                    client.s3_gets + artifact_gets,
                    client.s3_lists,
                ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_price_sanity() {
        let p = PriceBook::default();
        // SNS/SQS API ≈ 1 OOM cheaper than S3 PUT/LIST (Section IV-C).
        assert!(p.s3_put / p.sns_publish >= 9.0);
        assert!(p.s3_list / p.sqs_api >= 9.0);
        // GB-s of Lambda: $0.0000166667.
        let gbs = p.lambda_mb_ms * 1024.0 * 1000.0;
        assert!((gbs - 0.000_016_666_7).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_meter_form() {
        let m = CostModel::default();
        // 10 workers, 2.5 s average, 2048 MB.
        let closed = m.lambda_cost_closed_form(10, 2.5, 2048);
        let snap = LambdaSnapshot {
            invocations: 10,
            mb_ms: 10 * 2500 * 2048,
        };
        let metered = m.lambda_cost(&snap);
        assert!(
            (closed - metered).abs() < 1e-9,
            "closed {closed} vs metered {metered}"
        );
    }

    #[test]
    fn queue_cost_example_from_paper_shape() {
        let m = CostModel::default();
        // 256 KiB published as one batch = 4 billed requests; cost is
        // byte-transfer dominated but still sub-millidollar.
        let c = m.queue_comms(4, 256 * 1024, 2);
        assert!(c > 0.0 && c < 0.001);
        // For small request-dominated exchanges (1 KiB), the queue path is
        // ~1 OOM cheaper than the S3 request trio (§IV-C).
        let small_q = m.queue_comms(1, 1024, 2);
        let small_o = m.object_comms(1, 1, 1);
        assert!(
            small_o > 5.0 * small_q,
            "object {small_o} should dwarf queue {small_q} at small payloads"
        );
    }

    #[test]
    fn breakdown_total_and_error() {
        let a = CostBreakdown {
            compute: 0.10,
            comms: 0.25,
        };
        let b = CostBreakdown {
            compute: 0.10,
            comms: 0.26,
        };
        assert!((a.total() - 0.35).abs() < 1e-12);
        assert!(a.relative_error(&b) < 0.03);
        assert_eq!(a.relative_error(&a), 0.0);
        let zero = CostBreakdown::default();
        assert_eq!(zero.relative_error(&zero), 0.0);
    }

    #[test]
    fn actual_splits_services() {
        let m = CostModel::default();
        let lambda = LambdaSnapshot {
            invocations: 5,
            mb_ms: 1000,
        };
        let comm = MeterSnapshot {
            sns_publish_requests: 100,
            sns_delivered_bytes: 1_000_000,
            sqs_api_calls: 500,
            s3_put_requests: 10,
            s3_get_requests: 20,
            s3_list_requests: 30,
            ..MeterSnapshot::default()
        };
        let c = m.actual(&lambda, &comm);
        assert!(c.compute > 0.0);
        let manual = m.queue_comms(100, 1_000_000, 500) + m.object_comms(10, 20, 30);
        assert!((c.comms - manual).abs() < 1e-12);
    }
}
