//! [`ServiceBuilder`]: typed construction of an [`FsdService`].
//!
//! The builder replaces the old `FsdInference::new(dnn, EngineConfig)`
//! two-argument constructor with named, composable configuration — cloud
//! region, compute model, channel tuning, partition scheme, custom channel
//! providers, and a pre-warm list of worker counts whose artifacts are
//! partitioned and staged at build time (so first requests skip the offline
//! step, exactly the "a priori, not per request" discipline of §III).

use crate::engine::{EngineConfig, Variant};
use crate::pool::{WallClock, WarmPoolConfig};
use crate::provider::{ChannelProvider, ChannelRegistry};
use crate::queue_channel::ChannelOptions;
use crate::service::FsdService;
use fsd_comm::CloudConfig;
use fsd_faas::ComputeModel;
use fsd_model::SparseDnn;
use fsd_partition::PartitionScheme;
use std::sync::Arc;

/// Builds an [`FsdService`] over a model.
pub struct ServiceBuilder {
    dnn: Arc<SparseDnn>,
    cfg: EngineConfig,
    registry: ChannelRegistry,
    prewarm: Vec<u32>,
    warm_pool: Option<WarmPoolConfig>,
    prewarm_trees: Vec<(Variant, u32, u32)>,
    wall_clock: Option<Arc<dyn WallClock>>,
    reap_interval: Option<std::time::Duration>,
    regenerate_poisoned: bool,
}

impl ServiceBuilder {
    /// Starts a builder for `dnn` with default configuration and the
    /// built-in queue/object channel providers.
    pub fn new(dnn: Arc<SparseDnn>) -> ServiceBuilder {
        ServiceBuilder {
            dnn,
            cfg: EngineConfig::default(),
            registry: ChannelRegistry::with_builtins(),
            prewarm: Vec::new(),
            warm_pool: None,
            prewarm_trees: Vec::new(),
            wall_clock: None,
            reap_interval: None,
            regenerate_poisoned: false,
        }
    }

    /// Replaces the whole raw configuration (migration aid for callers
    /// holding an [`EngineConfig`]).
    pub fn config(mut self, cfg: EngineConfig) -> ServiceBuilder {
        self.cfg = cfg;
        self
    }

    /// Sets the simulated cloud region parameters.
    pub fn cloud(mut self, cloud: CloudConfig) -> ServiceBuilder {
        self.cfg.cloud = cloud;
        self
    }

    /// Sets the FaaS compute-time model.
    pub fn compute(mut self, compute: ComputeModel) -> ServiceBuilder {
        self.cfg.compute = compute;
        self
    }

    /// Sets the channel tuning knobs.
    pub fn channel_options(mut self, channel: ChannelOptions) -> ServiceBuilder {
        self.cfg.channel = channel;
        self
    }

    /// Sets the launch-tree branching factor.
    pub fn branching(mut self, branching: usize) -> ServiceBuilder {
        self.cfg.branching = branching;
        self
    }

    /// Sets the partitioning scheme for distributed variants.
    pub fn partition_scheme(mut self, scheme: PartitionScheme) -> ServiceBuilder {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the partitioning seed.
    pub fn seed(mut self, seed: u64) -> ServiceBuilder {
        self.cfg.seed = seed;
        self
    }

    /// Sets the FSD-Inf-Serial instance memory (tests lower it to exercise
    /// OOM paths; the paper uses Lambda's maximum).
    pub fn serial_memory_mb(mut self, memory_mb: u32) -> ServiceBuilder {
        self.cfg.serial_memory_mb = memory_mb;
        self
    }

    /// Enables λScale-style cold-start weight streaming
    /// ([`EngineConfig::stream_weights`]): cold tree launches provision
    /// instances flat straight from the control plane (no coordinator
    /// function cold-starts ahead of the workers), rank 0 multicasts
    /// weight blocks down the launch tree, and fetched blocks populate
    /// the service-wide [`crate::WeightCache`]. Off by default.
    pub fn weight_streaming(mut self, enabled: bool) -> ServiceBuilder {
        self.cfg.stream_weights = enabled;
        self
    }

    /// Convenience: jitter-free region and partitioning seeded with `seed`
    /// (the deterministic setup every test and validation run uses).
    pub fn deterministic(mut self, seed: u64) -> ServiceBuilder {
        self.cfg.cloud = CloudConfig::deterministic(seed);
        self.cfg.seed = seed;
        self
    }

    /// Registers a custom channel provider (replacing any provider already
    /// registered under the same name).
    pub fn register_channel(mut self, provider: Arc<dyn ChannelProvider>) -> ServiceBuilder {
        self.registry.register(provider);
        self
    }

    /// Drops all registered channel providers (test hook for exercising
    /// the unknown-channel path; a real deployment keeps the builtins).
    pub fn clear_channels(mut self) -> ServiceBuilder {
        self.registry = ChannelRegistry::empty();
        self
    }

    /// Adds a worker count whose partition/artifacts are staged at build
    /// time. May be called repeatedly; duplicates are fine (staging is
    /// idempotent).
    pub fn prewarm(mut self, workers: u32) -> ServiceBuilder {
        self.prewarm.push(workers);
        self
    }

    /// Enables the warm-tree pool: up to `max_trees` launched worker trees
    /// stay parked between requests of the same `(variant, P, memory)`
    /// shape, so matching requests skip cold start, launch rounds and
    /// weight loads entirely ([`crate::LaunchPath::WarmHit`]). A parked
    /// tree that sits out `idle_ttl` subsequent *distributed* requests is
    /// evicted — the pool clock ticks once per Queue/Object checkout;
    /// Serial requests run no tree and do not age the shelf (`u64::MAX`
    /// never evicts). `max_trees = 0` disables the pool.
    pub fn warm_pool(mut self, max_trees: usize, idle_ttl: u64) -> ServiceBuilder {
        self.warm_pool = Some(WarmPoolConfig {
            max_trees,
            idle_ttl,
            wall_idle_ms: self.warm_pool.and_then(|w| w.wall_idle_ms),
        });
        self
    }

    /// Enables a predictor-sized warm pool: shelf and tick TTL derived
    /// from the expected workload shape via [`WarmPoolConfig::auto`] —
    /// room for `shapes` distinct `(variant, P, memory)` request shapes
    /// bursting up to `burst_depth` deep, with a tick TTL spanning four
    /// shelf turnovers. This is the sizing the `fsd-sched` predictor's
    /// burst targets are designed against; use it instead of hand-tuning
    /// `warm_pool(max, ttl)` when a predictive scheduler fronts the
    /// service.
    pub fn auto_warm_pool(mut self, shapes: usize, burst_depth: usize) -> ServiceBuilder {
        let wall_idle_ms = self.warm_pool.and_then(|w| w.wall_idle_ms);
        self.warm_pool = Some(WarmPoolConfig {
            wall_idle_ms,
            ..WarmPoolConfig::auto(shapes, burst_depth)
        });
        self
    }

    /// Adds a **wall-clock** idle TTL to the warm pool: a parked tree that
    /// sits idle for `wall_idle_ms` real milliseconds is evicted by the
    /// next reaper pass (`FsdService::reap_warm_trees`, or the background
    /// reaper). Complements the tick TTL, which only advances with
    /// distributed traffic — a long-lived deployment wants idle trees
    /// gone even when no traffic ticks the pool. Call after
    /// [`ServiceBuilder::warm_pool`] / [`ServiceBuilder::auto_warm_pool`].
    ///
    /// # Panics
    /// At [`ServiceBuilder::build`] if no warm pool was configured.
    pub fn warm_pool_wall_ttl(mut self, wall_idle_ms: u64) -> ServiceBuilder {
        let mut cfg = self.warm_pool.unwrap_or(WarmPoolConfig::new(0, u64::MAX));
        cfg.wall_idle_ms = Some(wall_idle_ms);
        self.warm_pool = Some(cfg);
        self
    }

    /// Injects the clock the wall-clock TTL ages trees against.
    /// Production keeps the default [`crate::SystemClock`]; deterministic
    /// harnesses inject a [`crate::ManualClock`] and advance it
    /// explicitly, so wall-TTL eviction replays bit-identically.
    pub fn warm_pool_clock(mut self, clock: Arc<dyn WallClock>) -> ServiceBuilder {
        self.wall_clock = Some(clock);
        self
    }

    /// Auto-heals the warm pool after a mid-request worker crash: when a
    /// checked-out tree comes back poisoned and is discarded, a fresh tree
    /// of the same shape is immediately relaunched and parked, billed to
    /// the unattributed flow exactly like a pre-warm. Off by default —
    /// failure-injection harnesses usually want to observe the cold-start
    /// recovery, and an idle shape should not be relaunched speculatively
    /// unless the deployment opts in. Requires an enabled warm pool to
    /// have any effect.
    pub fn regenerate_poisoned(mut self) -> ServiceBuilder {
        self.regenerate_poisoned = true;
        self
    }

    /// Spawns a background reaper thread that calls
    /// `FsdService::reap_warm_trees` every `interval`. The thread is
    /// stopped and joined when the service drops. Only meaningful
    /// together with [`ServiceBuilder::warm_pool_wall_ttl`].
    pub fn background_reaper(mut self, interval: std::time::Duration) -> ServiceBuilder {
        self.reap_interval = Some(interval);
        self
    }

    /// Launches and parks a warm tree for this shape at build time, so the
    /// very first matching request is already a warm hit. Requires
    /// [`ServiceBuilder::warm_pool`]; may be called repeatedly (each call
    /// parks one more tree).
    pub fn prewarm_tree(
        mut self,
        variant: Variant,
        workers: u32,
        memory_mb: u32,
    ) -> ServiceBuilder {
        self.prewarm_trees.push((variant, workers, memory_mb));
        self
    }

    /// Assembles the service, staging artifacts for every pre-warmed
    /// worker count and launching every pre-warmed tree.
    ///
    /// # Panics
    /// If `prewarm_tree` was used without an *enabled* `warm_pool`
    /// (`max_trees ≥ 1`), or a pre-warm launch fails (a build-time
    /// configuration bug, not a request error).
    pub fn build(self) -> FsdService {
        assert!(
            self.prewarm_trees.is_empty() || self.warm_pool.is_some_and(|w| w.max_trees > 0),
            "prewarm_tree requires an enabled warm_pool (max_trees >= 1)"
        );
        assert!(
            self.warm_pool
                .is_none_or(|w| w.wall_idle_ms.is_none() || w.max_trees > 0),
            "warm_pool_wall_ttl requires an enabled warm_pool (max_trees >= 1)"
        );
        let service = FsdService::assemble(
            self.dnn,
            self.cfg,
            self.registry,
            self.warm_pool,
            self.wall_clock,
            self.reap_interval,
            self.regenerate_poisoned,
        );
        for p in self.prewarm {
            service.prepare(p);
        }
        for (variant, workers, memory_mb) in self.prewarm_trees {
            service
                .prewarm_tree(variant, workers, memory_mb)
                .expect("pre-warm tree launch failed at build time");
        }
        service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::ARTIFACT_BUCKET;
    use fsd_model::{generate_dnn, DnnSpec};

    fn dnn(seed: u64) -> Arc<SparseDnn> {
        Arc::new(generate_dnn(&DnnSpec {
            neurons: 48,
            layers: 2,
            nnz_per_row: 6,
            bias: -0.25,
            clip: 32.0,
            seed,
        }))
    }

    #[test]
    fn builder_threads_config_through() {
        let service = ServiceBuilder::new(dnn(1))
            .deterministic(9)
            .branching(2)
            .partition_scheme(PartitionScheme::Block)
            .serial_memory_mb(512)
            .build();
        assert_eq!(service.config().branching, 2);
        assert_eq!(service.config().seed, 9);
        assert_eq!(service.config().scheme, PartitionScheme::Block);
        assert_eq!(service.config().serial_memory_mb, 512);
        assert_eq!(
            service.channel_names(),
            vec!["direct", "hybrid", "object", "queue"]
        );
    }

    #[test]
    fn prewarm_stages_artifacts_at_build_time() {
        let service = ServiceBuilder::new(dnn(2))
            .deterministic(2)
            .prewarm(3)
            .prewarm(1)
            .build();
        // Partitioned artifacts for P=3 and the full model are already in
        // the artifact bucket; no request has run.
        assert_eq!(service.requests_served(), 0);
        let staged = service.env().object_store().object_count(ARTIFACT_BUCKET);
        assert!(staged > 0, "prewarm must stage artifacts");
        // Preparing again is a no-op.
        service.prepare(3);
        assert_eq!(
            service.env().object_store().object_count(ARTIFACT_BUCKET),
            staged
        );
    }
}
