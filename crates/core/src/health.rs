//! Per-transport health scoreboard and circuit breaker.
//!
//! The service keeps a rolling error-rate EWMA per *concrete* transport
//! (queue / object / hybrid / direct). When a transport's error rate trips
//! the breaker, [`Variant::Auto`] routing degrades gracefully — direct
//! falls back to hybrid (same payload band, managed services in the path),
//! hybrid falls back to a pure transport, queue and object fall back to
//! each other — until a half-open probe phase observes enough consecutive
//! successes to close the breaker again. Explicitly requested variants are
//! never rerouted: the caller asked for that transport and gets its errors.

use crate::engine::Variant;
use parking_lot::Mutex;

/// EWMA smoothing factor for the per-transport error rate.
const EWMA_ALPHA: f64 = 0.2;
/// Error-rate level that trips a closed breaker.
const TRIP_THRESHOLD: f64 = 0.5;
/// Number of routing consults an open breaker waits before probing.
const OPEN_COOLDOWN: u32 = 4;
/// Consecutive half-open successes required to close the breaker.
const PROBE_SUCCESSES: u32 = 2;

/// Circuit-breaker state of one transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests route normally.
    Closed,
    /// Tripped: `Auto` routing avoids this transport while the cooldown
    /// drains (one tick per routing consult).
    Open,
    /// Probing: traffic is admitted again; enough consecutive successes
    /// close the breaker, any failure re-opens it.
    HalfOpen,
}

#[derive(Debug)]
struct TransportHealth {
    error_rate: f64,
    state: BreakerState,
    /// Remaining consults before an open breaker half-opens.
    cooldown: u32,
    /// Consecutive successes observed while half-open.
    probes: u32,
}

impl Default for TransportHealth {
    fn default() -> Self {
        TransportHealth {
            error_rate: 0.0,
            state: BreakerState::Closed,
            cooldown: 0,
            probes: 0,
        }
    }
}

/// Health snapshot of one transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportHealthSnapshot {
    /// Rolling error-rate EWMA in `[0, 1]`.
    pub error_rate: f64,
    /// Current breaker state.
    pub state: BreakerState,
}

/// Health snapshot of all four concrete transports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// Pub-sub/queueing transport.
    pub queue: TransportHealthSnapshot,
    /// Object-storage transport.
    pub object: TransportHealthSnapshot,
    /// Hybrid transport.
    pub hybrid: TransportHealthSnapshot,
    /// Direct-exchange transport.
    pub direct: TransportHealthSnapshot,
}

impl HealthSnapshot {
    /// The snapshot for `variant`, or `None` for Serial/Auto, which carry
    /// no transport health.
    pub fn for_variant(&self, variant: Variant) -> Option<TransportHealthSnapshot> {
        match variant {
            Variant::Queue => Some(self.queue),
            Variant::Object => Some(self.object),
            Variant::Hybrid => Some(self.hybrid),
            Variant::Direct => Some(self.direct),
            Variant::Serial | Variant::Auto => None,
        }
    }
}

/// The service's per-transport scoreboard. Outcome recording and routing
/// consults are cheap (one short mutex each); the board is shared by all
/// requests of a service instance.
#[derive(Debug, Default)]
pub struct HealthBoard {
    slots: [Mutex<TransportHealth>; 4],
}

fn slot_index(variant: Variant) -> Option<usize> {
    match variant {
        Variant::Queue => Some(0),
        Variant::Object => Some(1),
        Variant::Hybrid => Some(2),
        Variant::Direct => Some(3),
        Variant::Serial | Variant::Auto => None,
    }
}

impl HealthBoard {
    /// Fresh board: everything closed and healthy.
    pub fn new() -> HealthBoard {
        HealthBoard::default()
    }

    /// Records the outcome of one request executed over `variant`.
    /// Serial/Auto (no transport) are ignored. `ok = false` means a
    /// communication-layer failure — compute-side errors (OOM, timeout)
    /// say nothing about transport health and must not be recorded.
    pub fn record(&self, variant: Variant, ok: bool) {
        let Some(i) = slot_index(variant) else {
            return;
        };
        let mut h = self.slots[i].lock();
        let err = if ok { 0.0 } else { 1.0 };
        h.error_rate = EWMA_ALPHA * err + (1.0 - EWMA_ALPHA) * h.error_rate;
        match h.state {
            BreakerState::Closed => {
                if h.error_rate > TRIP_THRESHOLD {
                    h.state = BreakerState::Open;
                    h.cooldown = OPEN_COOLDOWN;
                    h.probes = 0;
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    h.probes += 1;
                    if h.probes >= PROBE_SUCCESSES {
                        h.state = BreakerState::Closed;
                        // Forgive the tripping history so one stray error
                        // after recovery does not immediately re-trip.
                        h.error_rate = 0.0;
                    }
                } else {
                    h.state = BreakerState::Open;
                    h.cooldown = OPEN_COOLDOWN;
                    h.probes = 0;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// One routing consult for `variant`: drains an open breaker's cooldown
    /// (transitioning to half-open at zero) and returns the state the
    /// router should act on. Serial/Auto always read as closed.
    pub fn consult(&self, variant: Variant) -> BreakerState {
        let Some(i) = slot_index(variant) else {
            return BreakerState::Closed;
        };
        let mut h = self.slots[i].lock();
        if h.state == BreakerState::Open {
            h.cooldown = h.cooldown.saturating_sub(1);
            if h.cooldown == 0 {
                h.state = BreakerState::HalfOpen;
                h.probes = 0;
            }
        }
        h.state
    }

    /// Applies graceful degradation to an `Auto`-recommended `variant`:
    /// if its breaker is open, reroute — direct prefers hybrid (the
    /// nearest managed-service band) then the pure transports, hybrid
    /// prefers queue then object, queue and object fall back to each
    /// other. When every fallback is open too, the original
    /// recommendation stands (failing over to an equally broken transport
    /// buys nothing). Serial is never rerouted.
    pub fn degrade(&self, variant: Variant) -> Variant {
        if slot_index(variant).is_none() || self.consult(variant) != BreakerState::Open {
            return variant;
        }
        let fallbacks: &[Variant] = match variant {
            Variant::Direct => &[Variant::Hybrid, Variant::Queue, Variant::Object],
            Variant::Hybrid => &[Variant::Queue, Variant::Object],
            Variant::Queue => &[Variant::Object],
            Variant::Object => &[Variant::Queue],
            Variant::Serial | Variant::Auto => &[],
        };
        for &fb in fallbacks {
            if self.consult(fb) != BreakerState::Open {
                return fb;
            }
        }
        variant
    }

    /// Copies the scoreboard.
    pub fn snapshot(&self) -> HealthSnapshot {
        let snap = |i: usize| {
            let h = self.slots[i].lock();
            TransportHealthSnapshot {
                error_rate: h.error_rate,
                state: h.state,
            }
        };
        HealthSnapshot {
            queue: snap(0),
            object: snap(1),
            hybrid: snap(2),
            direct: snap(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip(board: &HealthBoard, v: Variant) {
        for _ in 0..8 {
            board.record(v, false);
        }
        let snap = board.snapshot().for_variant(v).expect("transport variant");
        assert_eq!(snap.state, BreakerState::Open);
    }

    #[test]
    fn healthy_board_changes_nothing() {
        let b = HealthBoard::new();
        for v in [
            Variant::Queue,
            Variant::Object,
            Variant::Hybrid,
            Variant::Direct,
        ] {
            b.record(v, true);
            assert_eq!(b.degrade(v), v);
        }
    }

    #[test]
    fn open_direct_degrades_to_hybrid() {
        let b = HealthBoard::new();
        trip(&b, Variant::Direct);
        assert_eq!(b.degrade(Variant::Direct), Variant::Hybrid);
        trip(&b, Variant::Hybrid);
        trip(&b, Variant::Direct); // re-trip: degrade consults drained it
        assert_eq!(b.degrade(Variant::Direct), Variant::Queue);
    }

    #[test]
    fn repeated_failures_trip_the_breaker() {
        let b = HealthBoard::new();
        b.record(Variant::Queue, false);
        assert_eq!(
            b.snapshot().queue.state,
            BreakerState::Closed,
            "one failure must not trip (EWMA smoothing)"
        );
        trip(&b, Variant::Queue);
    }

    #[test]
    fn open_hybrid_degrades_to_queue_then_object() {
        let b = HealthBoard::new();
        trip(&b, Variant::Hybrid);
        assert_eq!(b.degrade(Variant::Hybrid), Variant::Queue);
        trip(&b, Variant::Queue);
        trip(&b, Variant::Hybrid); // re-trip: degrade consults drained it
        assert_eq!(b.degrade(Variant::Hybrid), Variant::Object);
    }

    #[test]
    fn all_open_keeps_the_original_recommendation() {
        let b = HealthBoard::new();
        trip(&b, Variant::Queue);
        trip(&b, Variant::Object);
        assert_eq!(b.degrade(Variant::Queue), Variant::Queue);
    }

    #[test]
    fn cooldown_half_opens_then_successes_close() {
        let b = HealthBoard::new();
        trip(&b, Variant::Object);
        // Drain the cooldown with routing consults.
        let mut state = b.consult(Variant::Object);
        for _ in 0..OPEN_COOLDOWN {
            state = b.consult(Variant::Object);
        }
        assert_eq!(state, BreakerState::HalfOpen);
        b.record(Variant::Object, true);
        assert_eq!(b.snapshot().object.state, BreakerState::HalfOpen);
        b.record(Variant::Object, true);
        assert_eq!(
            b.snapshot().object.state,
            BreakerState::Closed,
            "enough probe successes close the breaker"
        );
        assert_eq!(b.snapshot().object.error_rate, 0.0);
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = HealthBoard::new();
        trip(&b, Variant::Hybrid);
        for _ in 0..=OPEN_COOLDOWN {
            b.consult(Variant::Hybrid);
        }
        assert_eq!(b.snapshot().hybrid.state, BreakerState::HalfOpen);
        b.record(Variant::Hybrid, false);
        assert_eq!(b.snapshot().hybrid.state, BreakerState::Open);
    }

    #[test]
    fn serial_and_auto_are_ignored() {
        let b = HealthBoard::new();
        for _ in 0..20 {
            b.record(Variant::Serial, false);
            b.record(Variant::Auto, false);
        }
        assert_eq!(b.consult(Variant::Serial), BreakerState::Closed);
        assert_eq!(b.degrade(Variant::Serial), Variant::Serial);
    }
}
