//! FSD-Inf-Direct: the FMI-style direct-exchange channel.
//!
//! Send path: exactly one frame per (source, target) pair per tag, shipped
//! over NAT-punched connections ([`fsd_comm::DirectNet`]). The first send
//! in a direction pays the hole-punching handshake — the only
//! step that can fail (and the one the fault plane intercepts as
//! [`fsd_comm::ApiClass::DirectPunch`]); after that, frames move at TCP
//! latency with **zero per-message API cost**, which is the whole economic
//! argument for the transport (FMI, PAPERS.md).
//!
//! Receive path: each worker drains its own `(flow, rank, tag)` mailbox.
//! Like the object channel, raw fetches are free and deferred — when the
//! tag completes, the receiver's clock is settled against the frame
//! stamps in deterministic order, so timing never depends on real-thread
//! scheduling. An empty send still ships a 0-byte frame (the direct
//! analogue of the `.nul` marker) so receivers never block on silent
//! sources.

use crate::channel::{FsiChannel, RecvTracker, Tag};
use crate::queue_channel::{decode_payload, encode_payload, ChannelOptions};
use crate::stats::ChannelStats;
use fsd_comm::{CloudEnv, VClock, VirtualTime};
use fsd_faas::{FaasError, WorkerCtx};
use fsd_sparse::SparseRows;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-`(receiver, tag)` mailbox state: how many frames have surfaced and
/// the frames awaiting the tag's completion. Mailboxes on the fabric are
/// append-only until flow teardown, so a plain count stands in for the
/// object channel's seen-key set.
#[derive(Default)]
struct RecvInbox {
    known: usize,
    /// `(stamp, source, body)`.
    frames: Vec<(VirtualTime, u32, Arc<[u8]>)>,
}

/// The direct-exchange channel. One instance serves one request flow: all
/// connections and mailboxes live under the flow, so concurrent requests
/// punch and drain disjoint fabrics.
pub struct DirectChannel {
    env: Arc<CloudEnv>,
    n_workers: u32,
    flow: u64,
    opts: ChannelOptions,
    stats: ChannelStats,
    /// Deferred receive state: `(receiver, tag) → inbox`.
    inboxes: Mutex<HashMap<(u32, u32), RecvInbox>>,
}

impl DirectChannel {
    /// Binds a channel in the default flow (0) — single-request and test
    /// use. Serving code goes through [`DirectChannel::setup_scoped`].
    pub fn setup(env: Arc<CloudEnv>, n_workers: u32, opts: ChannelOptions) -> Arc<DirectChannel> {
        DirectChannel::setup_scoped(env, n_workers, opts, 0)
    }

    /// Binds the channel to the region's direct-exchange fabric, scoping
    /// every connection and mailbox under the request's flow.
    pub fn setup_scoped(
        env: Arc<CloudEnv>,
        n_workers: u32,
        opts: ChannelOptions,
        flow: u64,
    ) -> Arc<DirectChannel> {
        Arc::new(DirectChannel {
            env,
            n_workers,
            flow,
            opts,
            stats: ChannelStats::new(),
            inboxes: Mutex::new(HashMap::new()),
        })
    }

    /// Client-side statistics (cost-model inputs).
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Worker count this channel was set up for.
    pub fn n_workers(&self) -> u32 {
        self.n_workers
    }

    /// The request flow this channel is scoped to.
    pub fn flow(&self) -> u64 {
        self.flow
    }
}

impl FsiChannel for DirectChannel {
    fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Drops the flow's punched connections and undrained mailboxes —
    /// closing sockets is free.
    fn teardown(&self) {
        self.env.direct().close_flow(self.flow);
    }

    fn send_layer(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        src: u32,
        sends: &[(u32, SparseRows)],
    ) -> Result<(), FaasError> {
        if sends.is_empty() {
            return Ok(());
        }
        let tag_key = tag.key_segment();
        // Build bodies first (single-threaded CPU work)…
        let mut frames: Vec<(u32, Vec<u8>)> = Vec::with_capacity(sends.len());
        for (target, rows) in sends {
            if rows.is_empty() {
                // 0-byte frame: the direct analogue of the `.nul` marker.
                frames.push((*target, Vec::new()));
            } else {
                let body = encode_payload(ctx, &self.stats, rows, self.opts.compression);
                frames.push((*target, body));
            }
        }
        // …then ship them over the modeled thread pool. Lane clocks
        // inherit the worker's flow, so punches and frames land on the
        // request's fabric and billing window. The punch is the only
        // fallible step; a retried send re-attempts it.
        let lanes = self.opts.send_threads.max(1);
        let lane0 = VClock::starting_at(ctx.now()).with_flow(ctx.clock_mut().flow());
        let mut lane_clocks: Vec<VClock> = vec![lane0; lanes];
        for (i, (target, body)) in frames.into_iter().enumerate() {
            let lane = &mut lane_clocks[i % lanes];
            let bytes = body.len() as u64;
            let punched_before =
                self.env
                    .direct()
                    .is_connected(self.flow, src as usize, target as usize);
            let (res, retries) = self.opts.retry.run(lane, |lane| {
                self.env
                    .direct()
                    .send(lane, src as usize, target as usize, &tag_key, body.clone())
            });
            self.stats.add(&self.stats.retries, retries);
            res.map_err(|e| {
                FaasError::comm("direct-send", format!("f{}/{tag_key}", self.flow), e)
            })?;
            if !punched_before {
                self.stats.add(&self.stats.direct_punches, 1);
            }
            self.stats.add(&self.stats.direct_msgs, 1);
            self.stats.add(&self.stats.direct_bytes, bytes);
        }
        let slowest = lane_clocks.iter().map(|c| c.now()).max().expect("≥1 lane");
        ctx.clock_mut().observe(slowest);
        Ok(())
    }

    fn receive_round(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        me: u32,
        tracker: &mut RecvTracker,
    ) -> Result<Vec<(u32, SparseRows)>, FaasError> {
        let tag_key = tag.key_segment();
        let want = tag.encode();
        if !tracker.done() {
            // Raw fetch: every virtual effect (clock joins, decode
            // charges) is deferred to the tag's completion.
            let known = self
                .inboxes
                .lock()
                .get(&(me, want))
                .map_or(0, |inbox| inbox.known);
            let found = self
                .env
                .direct()
                .fetch(self.flow, me as usize, &tag_key, known);
            let mut inboxes = self.inboxes.lock();
            let inbox = inboxes.entry((me, want)).or_default();
            let mut surfaced_new = false;
            // Mailboxes are append-only: everything past `known` is new.
            for frame in found.into_iter().skip(inbox.known) {
                inbox.known += 1;
                surfaced_new = true;
                let src = frame.src as u32;
                if !tracker.is_pending(src) {
                    continue;
                }
                tracker.complete(src);
                inbox.frames.push((frame.available_at, src, frame.body));
            }
            drop(inboxes);
            if !surfaced_new && !tracker.done() {
                // Genuine producer drought beyond the real-time grace: one
                // blocking-receive timeout slice elapses so the caller's
                // limit checks keep walking toward the virtual timeout.
                self.env.direct().idle_wait(ctx.clock_mut());
                return Ok(Vec::new());
            }
        }
        if !tracker.done() {
            return Ok(Vec::new());
        }
        // Tag complete: settle the receiver's clock against the stamps,
        // then decode the bodies in deterministic stamp order.
        let inbox = self.inboxes.lock().remove(&(me, want)).unwrap_or_default();
        let mut frames = inbox.frames;
        frames.sort_unstable_by_key(|a| (a.0, a.1));
        let stamps: Vec<VirtualTime> = frames.iter().map(|(stamp, ..)| *stamp).collect();
        self.env.direct().settle_recv(ctx.clock_mut(), &stamps);
        let mut out = Vec::new();
        for (_, src, body) in frames {
            if body.is_empty() {
                continue;
            }
            let rows = decode_payload(ctx, &body, self.opts.compression)?;
            if !rows.is_empty() {
                out.push((src, rows));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::{ApiClass, CloudConfig, TargetedFault, VirtualTime};
    use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};

    fn with_ctx<T: Send + 'static>(
        env: Arc<CloudEnv>,
        body: impl FnOnce(&mut WorkerCtx) -> Result<T, FaasError> + Send + 'static,
    ) -> T {
        let platform = FaasPlatform::new(env, ComputeModel::default());
        platform
            .invoke(FunctionConfig::worker("t", 2048), VirtualTime::ZERO, body)
            .join()
            .expect("test body ok")
            .0
    }

    fn rows(ids: &[u32]) -> SparseRows {
        SparseRows::from_rows(
            4,
            ids.iter().map(|&i| (i, vec![1u32, 3], vec![0.5f32, 2.5])),
        )
    }

    #[test]
    fn send_receive_roundtrip() {
        let env = CloudEnv::new(CloudConfig::deterministic(21));
        let ch = DirectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        let sent = rows(&[0, 9]);
        let sent2 = sent.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(2), 0, &[(1, sent2)])
        });
        let got = with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(2), 1, &mut tracker)
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, sent);
        assert_eq!(env.snapshot().direct_punches, 1);
        assert_eq!(env.snapshot().direct_messages, 1);
    }

    #[test]
    fn empty_send_completes_without_decode() {
        let env = CloudEnv::new(CloudConfig::deterministic(22));
        let ch = DirectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, SparseRows::new(4))])
        });
        let got = with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        assert!(got.is_empty());
        assert_eq!(env.snapshot().direct_bytes, 0, "0-byte marker frame");
    }

    #[test]
    fn punch_paid_once_per_direction() {
        let env = CloudEnv::new(CloudConfig::deterministic(23));
        let ch = DirectChannel::setup(env.clone(), 4, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[0])), (2, rows(&[1]))])?;
            // Second layer over the same pairs: no further handshakes.
            ch2.send_layer(ctx, Tag::Layer(1), 0, &[(1, rows(&[2])), (2, rows(&[3]))])
        });
        assert_eq!(env.snapshot().direct_punches, 2);
        assert_eq!(ch.stats().snapshot().direct_punches, 2);
        assert_eq!(ch.stats().snapshot().direct_msgs, 4);
    }

    #[test]
    fn transient_punch_fault_is_retried() {
        let env = CloudEnv::new(CloudConfig::deterministic(24));
        env.faults()
            .inject(TargetedFault::first(ApiClass::DirectPunch, ""));
        let ch = DirectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[5]))])
        });
        let snap = env.snapshot();
        assert_eq!(snap.direct_punch_failures, 1);
        assert_eq!(snap.direct_punches, 1);
        assert!(ch.stats().snapshot().retries >= 1);
    }

    #[test]
    fn permanent_punch_fault_errors_cleanly() {
        let env = CloudEnv::new(CloudConfig::deterministic(25));
        env.faults()
            .inject(TargetedFault::first(ApiClass::DirectPunch, "").permanent());
        let ch = DirectChannel::setup(env.clone(), 2, ChannelOptions::default());
        let err = with_ctx(env.clone(), move |ctx| {
            Ok(ch.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[5]))]))
        })
        .expect_err("permanent punch failure must surface");
        assert!(matches!(err, FaasError::Comm { .. }), "got {err:?}");
    }

    #[test]
    fn teardown_leaves_no_residue() {
        let env = CloudEnv::new(CloudConfig::deterministic(26));
        let ch = DirectChannel::setup(env.clone(), 3, ChannelOptions::default());
        let ch2 = ch.clone();
        with_ctx(env.clone(), move |ctx| {
            ch2.send_layer(ctx, Tag::Layer(0), 0, &[(1, rows(&[0])), (2, rows(&[1]))])
        });
        assert!(env.direct().connection_count() > 0);
        ch.teardown();
        // Flow 0's billing is global-only, so the meter holds no bucket.
        env.assert_no_residue();
    }

    #[test]
    fn barrier_and_reduce_work_over_direct() {
        use crate::channel::{barrier, reduce};
        let env = CloudEnv::new(CloudConfig::deterministic(27));
        let ch = DirectChannel::setup(env.clone(), 3, ChannelOptions::default());
        let platform = FaasPlatform::new(env, ComputeModel::default());
        let mut handles = Vec::new();
        for m in 0..3u32 {
            let ch = ch.clone();
            handles.push(platform.invoke(
                FunctionConfig::worker(format!("w{m}"), 2048),
                VirtualTime::ZERO,
                move |ctx| {
                    barrier(ch.as_ref(), ctx, m, 3, 0)?;
                    let mine = rows(&[m * 10]);
                    reduce(ch.as_ref(), ctx, m, 3, mine, 0)
                },
            ));
        }
        let outs: Vec<Option<SparseRows>> = handles
            .into_iter()
            .map(|h| h.join().expect("worker ok").0)
            .collect();
        let root = outs.iter().flatten().next().expect("root produced output");
        assert_eq!(root.ids(), &[0, 10, 20]);
        assert_eq!(outs.iter().filter(|o| o.is_some()).count(), 1);
    }
}
