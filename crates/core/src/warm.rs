//! Warm worker trees: keep-alive instances that serve many requests.
//!
//! The one-shot path pays the full launch bill on every request —
//! coordinator invoke + cold start, `launch_rounds(P, b)` hierarchical
//! tree-invocation rounds, per-worker weight loads, then teardown. A
//! [`WorkerTree`] pays that bill **once**: the same hierarchical launch
//! brings up `P` keep-alive instances ([`FunctionConfig::keep_alive`]),
//! each of which loads its weight/map artifacts and then parks in a serve
//! loop on a long-lived control channel. Successive requests are routed
//! into the parked tree as [`WorkItem`]s — each carrying its own flow id,
//! input prefix and a freshly provisioned (flow-namespaced) data channel —
//! so a warm hit skips the invoke round trips, the cold starts, the launch
//! rounds *and* the weight loads, paying only one control-plane hop
//! (λScale-style request routing into model-loaded instances).
//!
//! Billing stays per-flow disjoint across reuse: every work item opens its
//! own metering window on the instance ([`WorkerCtx::begin_request`] /
//! [`WorkerCtx::finish_request`]), and the per-request data channel
//! namespaces all service traffic by the request's flow exactly as on the
//! cold path. Parked (idle) time is never billed, mirroring the fact that
//! idle provisioned instances bill differently from execution and keeping
//! the cost model's request windows comparable between paths.
//!
//! Failure containment: if any instance dies mid-request it raises the
//! tree's poison flag; peers observe it at their next limit check and fail
//! fast, the collector surfaces the first error, and the pool evicts the
//! tree instead of checking it back in.

use crate::artifacts::load_worker_artifacts;
use crate::channel::FsiChannel;
use crate::engine::Variant;
use crate::weight_cache::WeightCache;
use crate::worker::run_batches;
use fsd_comm::{CloudEnv, VClock, VirtualTime};
use fsd_faas::{launch, FaasError, FaasPlatform, FunctionConfig, Invocation, InvocationReport};
use fsd_model::DnnSpec;
use fsd_sparse::SparseRows;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel as mpsc_channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// The shape a warm tree can serve: requests match on the resolved
/// variant, worker count and per-worker memory. `Ord` gives predictors and
/// pool policies a canonical shape order for deterministic iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeKey {
    /// Resolved channel variant (never `Serial`/`Auto` — Serial runs no
    /// tree and Auto resolves before the pool is consulted).
    pub variant: Variant,
    /// Worker count `P`.
    pub workers: u32,
    /// Per-worker memory (MB).
    pub memory_mb: u32,
}

/// Launch-time parameters of a persistent tree (the request-independent
/// subset of the old `WorkerParams`).
#[derive(Clone)]
pub(crate) struct TreeParams {
    pub n_workers: u32,
    pub branching: usize,
    pub memory_mb: u32,
    pub model_key: String,
    pub spec: DnnSpec,
    /// λScale-style streamed cold launch: instances are provisioned flat
    /// by the coordinator and weights arrive multicast from rank 0.
    pub stream: bool,
    /// The service-wide weight-block cache streamed loads read through.
    pub cache: Arc<WeightCache>,
}

/// One request routed into a parked tree.
#[derive(Clone)]
pub(crate) struct WorkItem {
    /// `false` for the creating request of an on-demand tree: the workers
    /// continue on their launch timeline (so the creating request pays —
    /// and measures — the full cold-start bill), `true` for every routed
    /// (warm-hit) request.
    pub warm: bool,
    /// The request's flow id (billing + channel namespacing).
    pub flow: u64,
    /// Staged input prefix (batch `b` under `{input_key}/b{b}`).
    pub input_key: String,
    /// Width of each successive batch.
    pub batch_widths: Vec<usize>,
    /// The request-scoped data channel (provisioned for `flow`).
    pub channel: Arc<dyn FsiChannel>,
    /// Virtual instant (on the request's own timeline) at which the parked
    /// workers receive the item — one control-plane hop after arrival.
    pub dispatch_at: VirtualTime,
}

/// What one worker reports back per work item.
pub(crate) struct WarmWorkerOut {
    pub report: InvocationReport,
    pub artifact_gets: u64,
    pub work_done: u64,
    pub final_batches: Option<Vec<SparseRows>>,
}

type WorkResult = (u32, Result<WarmWorkerOut, FaasError>);

/// Everything the service needs to assemble an `InferenceReport` from one
/// tree run.
pub(crate) struct TreeRunOutput {
    pub final_batches: Vec<SparseRows>,
    /// `(rank, report)` sorted by rank.
    pub reports: Vec<(u32, InvocationReport)>,
    pub artifact_gets: u64,
    pub work_done: u64,
}

/// Shared plumbing cloned into every serve-loop instance.
#[derive(Clone)]
struct ServeShared {
    params: TreeParams,
    /// Flow the hierarchical launch bills to (the creating request, or 0
    /// for build-time pre-warmed trees).
    launch_flow: u64,
    /// Per-rank control receivers, taken exactly once by their rank.
    controls: Arc<Mutex<Vec<Option<Receiver<WorkItem>>>>>,
    results: Sender<WorkResult>,
    handles: Sender<Invocation<()>>,
    /// Per-rank kill switches (failure injection / chaos hooks).
    kills: Arc<Vec<Arc<AtomicBool>>>,
    /// Tree-wide poison flag; raised by the first dying instance.
    poison: Arc<AtomicBool>,
}

/// The keep-alive serve loop run by every instance of a warm tree.
fn serve_worker(
    ctx: &mut fsd_faas::WorkerCtx,
    rank: u32,
    shared: ServeShared,
) -> Result<(), FaasError> {
    let p = shared.params.n_workers;
    // --- hierarchical launch, exactly as the one-shot path (streamed
    // launches are provisioned flat by the coordinator: the tree carries
    // weight state, not invocations) --------------------------------------
    let children = if shared.params.stream {
        Vec::new()
    } else {
        launch::children_of(rank as usize, shared.params.branching, p as usize)
    };
    for child in children {
        let lat = ctx.env().latency().lambda_invoke_us;
        let jittered = ctx.env().jitter().apply(lat);
        ctx.clock_mut().advance_micros(jittered);
        let cfg = FunctionConfig::worker(format!("fsd-warm-{child}"), shared.params.memory_mb)
            .for_flow(shared.launch_flow)
            .keep_alive();
        let shared_c = shared.clone();
        let at = ctx.now();
        let inv = ctx.platform().clone().invoke(cfg, at, move |child_ctx| {
            serve_worker(child_ctx, child as u32, shared_c)
        });
        // A refused launch (injected Invoke fault) is known synchronously:
        // poison the tree and report the dead rank so peers unwedge instead
        // of polling collectives for an instance that never existed.
        if let Some(e) = inv.launch_error() {
            shared.poison.store(true, Ordering::Relaxed);
            let _ = shared.results.send((child as u32, Err(e)));
        }
        // Hand the join handle to the tree owner for shutdown.
        let _ = shared.handles.send(inv);
    }
    // A dying peer must be able to unwedge this instance mid-poll.
    ctx.set_abort(shared.poison.clone());

    let control = shared
        .controls
        .lock()
        .expect("control slots lock")
        .get_mut(rank as usize)
        .and_then(Option::take)
        .expect("each rank takes its control receiver exactly once");

    // --- load weights and maps once; they stay resident while parked -----
    let loaded = if shared.params.stream {
        crate::weight_stream::stream_load(
            ctx,
            &shared.params.cache,
            &shared.params.model_key,
            rank,
            p,
            shared.params.spec.layers,
            shared.params.branching,
        )
    } else {
        load_worker_artifacts(
            ctx,
            &shared.params.model_key,
            p,
            rank,
            shared.params.spec.layers,
        )
    };
    let mut art = match loaded {
        Ok(art) => art,
        Err(e) => {
            shared.poison.store(true, Ordering::Relaxed);
            let _ = shared.results.send((rank, Err(e.clone())));
            return Err(e);
        }
    };
    let launch_gets = art.n_gets;

    // --- the serve loop: park until the control channel closes -----------
    while let Ok(item) = control.recv() {
        if shared.kills[rank as usize].load(Ordering::Relaxed) {
            let e = FaasError::comm(
                "instance",
                format!("fsd-warm-{rank}"),
                "keep-alive instance terminated",
            );
            shared.poison.store(true, Ordering::Relaxed);
            let _ = shared.results.send((rank, Err(e.clone())));
            return Err(e);
        }
        if item.warm {
            // A routed request: jump onto its timeline, one control hop in.
            ctx.begin_request(item.flow, item.dispatch_at);
        }
        match run_batches(
            ctx,
            &item.channel,
            rank,
            p,
            &shared.params.spec,
            &mut art,
            &item.input_key,
            &item.batch_widths,
        ) {
            Ok(out) => {
                let report = ctx.finish_request();
                // The creating (cold) request also pays the launch-time
                // artifact GETs, exactly like the one-shot path.
                let artifact_gets = out.artifact_gets + if item.warm { 0 } else { launch_gets };
                let _ = shared.results.send((
                    rank,
                    Ok(WarmWorkerOut {
                        report,
                        artifact_gets,
                        work_done: out.work_done,
                        final_batches: out.final_batches,
                    }),
                ));
            }
            Err(e) => {
                shared.poison.store(true, Ordering::Relaxed);
                let _ = shared.results.send((rank, Err(e.clone())));
                return Err(e);
            }
        }
    }
    Ok(())
}

/// A persistent coordinator + `P`-worker tree parked in serve loops.
///
/// Created by the pool's cold path (or a build-time pre-warm), driven with
/// [`WorkerTree::run`], and eventually [`WorkerTree::shutdown`] — also
/// invoked on drop, so an evicted or discarded tree never leaks its
/// instance threads.
pub(crate) struct WorkerTree {
    key: TreeKey,
    generation: u64,
    controls: Vec<Sender<WorkItem>>,
    kills: Vec<Arc<AtomicBool>>,
    poison: Arc<AtomicBool>,
    results: Receiver<WorkResult>,
    handles: Receiver<Invocation<()>>,
    joined: bool,
    /// Region handle + launch flow for stream-mode teardown: once every
    /// instance has joined, any weight frames still parked in the launch
    /// flow's mailboxes (e.g. after an abort) have no receiver left.
    env: Arc<CloudEnv>,
    launch_flow: u64,
    stream: bool,
}

impl WorkerTree {
    /// Launches a persistent tree: coordinator invoke (billed to `flow`),
    /// hierarchical `worker_invoke_children` launch of `P` keep-alive
    /// instances, each loading its artifacts before parking. Returns as
    /// soon as the coordinator has seeded the launch — workers still
    /// booting simply pick queued work items up when they are ready.
    pub(crate) fn launch(
        platform: &Arc<FaasPlatform>,
        key: TreeKey,
        generation: u64,
        params: TreeParams,
        flow: u64,
    ) -> Result<WorkerTree, FaasError> {
        let p = params.n_workers;
        let (result_tx, result_rx) = mpsc_channel();
        let (handle_tx, handle_rx) = mpsc_channel();
        let mut control_txs = Vec::with_capacity(p as usize);
        let mut control_rxs = Vec::with_capacity(p as usize);
        for _ in 0..p {
            let (tx, rx) = mpsc_channel();
            control_txs.push(tx);
            control_rxs.push(Some(rx));
        }
        let kills: Vec<Arc<AtomicBool>> =
            (0..p).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let shared = ServeShared {
            params: params.clone(),
            launch_flow: flow,
            controls: Arc::new(Mutex::new(control_rxs)),
            results: result_tx,
            handles: handle_tx.clone(),
            kills: Arc::new(kills.clone()),
            poison: Arc::new(AtomicBool::new(false)),
        };
        let poison = shared.poison.clone();
        let memory_mb = params.memory_mb;
        let stream = params.stream;
        if stream {
            // FaaSNet-style flat, controller-driven provisioning: the
            // always-on control plane (FaaSNet's "function manager")
            // dispatches every rank directly — no coordinator function to
            // cold-start first, so the tree costs `P` invocations where
            // the cascade pays `1 + P` — and the tree topology is used to
            // multicast weights instead of invocations.
            let env = platform.env();
            let mut dispatch = VClock::default();
            dispatch.set_flow(flow);
            let mut refused_root = None;
            for rank in 0..p {
                if rank > 0 {
                    // Each async Invoke call costs the controller one
                    // sequential API round trip, as it costs a parent on
                    // the hierarchical path.
                    let lat = env.latency().lambda_invoke_us;
                    let jittered = env.jitter().apply(lat);
                    dispatch.advance_micros(jittered);
                }
                let cfg = FunctionConfig::worker(format!("fsd-warm-{rank}"), memory_mb)
                    .for_flow(flow)
                    .keep_alive();
                let shared_r = shared.clone();
                let at = dispatch.now();
                let inv = platform.clone().invoke(cfg, at, move |worker_ctx| {
                    serve_worker(worker_ctx, rank, shared_r)
                });
                if let Some(e) = inv.launch_error() {
                    if rank == 0 {
                        // No multicast source: the build fails.
                        refused_root.get_or_insert(e);
                    } else {
                        // A refused non-root rank poisons the tree;
                        // peers unwedge through their limit checks.
                        shared.poison.store(true, Ordering::Relaxed);
                        let _ = shared.results.send((rank, Err(e)));
                    }
                }
                let _ = handle_tx.send(inv);
            }
            if let Some(e) = refused_root {
                return Err(e);
            }
        } else {
            let platform_c = platform.clone();
            let shared_c = shared.clone();
            let coordinator = platform.invoke(
                FunctionConfig::coordinator().for_flow(flow),
                VirtualTime::ZERO,
                move |ctx| {
                    ctx.charge_work(10_000); // request parsing
                    let at = ctx.now();
                    let cfg = FunctionConfig::worker("fsd-warm-0", memory_mb)
                        .for_flow(flow)
                        .keep_alive();
                    let inv = platform_c.invoke(cfg, at, move |worker_ctx| {
                        serve_worker(worker_ctx, 0, shared_c)
                    });
                    // Surface a refused rank-0 launch as a failed tree build
                    // (the handle still goes to the owner for cleanup).
                    let refused = inv.launch_error();
                    let _ = handle_tx.send(inv);
                    match refused {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                },
            );
            coordinator.join()?;
        }
        Ok(WorkerTree {
            key,
            generation,
            controls: control_txs,
            kills,
            poison,
            results: result_rx,
            handles: handle_rx,
            joined: false,
            env: platform.env().clone(),
            launch_flow: flow,
            stream,
        })
    }

    /// The shape this tree serves.
    pub(crate) fn key(&self) -> TreeKey {
        self.key
    }

    /// The pool generation this tree was created under.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether an instance of this tree has died (the tree must not be
    /// checked back in).
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Relaxed)
    }

    /// Arms the kill switch of one rank: the instance terminates at its
    /// next work item, poisoning the tree (failure injection / chaos hook).
    pub(crate) fn kill_worker(&self, rank: u32) {
        if let Some(flag) = self.kills.get(rank as usize) {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Routes one request into the parked tree and collects every worker's
    /// result. The first worker error poisons the tree and is returned
    /// immediately (peers unwedge through the poison flag).
    pub(crate) fn run(&mut self, item: WorkItem) -> Result<TreeRunOutput, FaasError> {
        for control in &self.controls {
            if control.send(item.clone()).is_err() {
                self.poison.store(true, Ordering::Relaxed);
                return Err(FaasError::comm(
                    "tree",
                    format!("fsd-warm-tree-p{}", self.key.workers),
                    "a keep-alive instance hung up its control channel",
                ));
            }
        }
        let mut reports: Vec<(u32, InvocationReport)> = Vec::with_capacity(self.controls.len());
        let mut final_batches = None;
        let mut artifact_gets = 0u64;
        let mut work_done = 0u64;
        for _ in 0..self.controls.len() {
            match self.results.recv() {
                Ok((rank, Ok(out))) => {
                    reports.push((rank, out.report));
                    artifact_gets += out.artifact_gets;
                    work_done += out.work_done;
                    if rank == 0 {
                        final_batches = out.final_batches;
                    }
                }
                Ok((_rank, Err(e))) => {
                    self.poison.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                Err(_) => {
                    self.poison.store(true, Ordering::Relaxed);
                    return Err(FaasError::comm(
                        "tree",
                        format!("fsd-warm-tree-p{}", self.key.workers),
                        "worker tree hung up mid-request",
                    ));
                }
            }
        }
        // Arrival order races across real threads; rank order is canonical.
        reports.sort_unstable_by_key(|(rank, _)| *rank);
        let final_batches = final_batches.ok_or_else(|| {
            FaasError::comm("tree", "rank 0", "root worker returned no final output")
        })?;
        Ok(TreeRunOutput {
            final_batches,
            reports,
            artifact_gets,
            work_done,
        })
    }

    /// Closes the control channels and joins every instance. Safe to call
    /// more than once. A poisoned tree's stragglers exit through the
    /// poison-raised abort in their limit checks, so this returns in real
    /// time even after a failure.
    pub(crate) fn shutdown(&mut self) {
        if self.joined {
            return;
        }
        self.joined = true;
        // Stop serve loops (they exit once queued items are drained)…
        self.controls.clear();
        // …and make sure nothing can park in a poll forever.
        self.poison.store(true, Ordering::Relaxed);
        for _ in 0..self.kills.len() {
            match self.handles.recv() {
                // Poisoned / killed instances legitimately return errors.
                Ok(handle) => {
                    let _ = handle.join();
                }
                Err(_) => break,
            }
        }
        // Every instance has joined: no receiver is left for any weight
        // frame still parked under the launch flow (aborted streams,
        // frames addressed to a rank that died booting) — drop them so
        // the residue audit stays clean.
        if self.stream {
            self.env.weight_net().close_flow(self.launch_flow);
        }
    }
}

impl Drop for WorkerTree {
    fn drop(&mut self) {
        self.shutdown();
    }
}
