//! The fully serverless communication channel abstraction.
//!
//! Both FSI algorithms share one shape: per layer, each worker *sends* row
//! blocks to a set of targets, computes its local product, then *receives*
//! until every expected source has delivered. [`FsiChannel`] captures that
//! shape; [`QueueChannel`](crate::QueueChannel) (Algorithm 1) and
//! [`ObjectChannel`](crate::ObjectChannel) (Algorithm 2) implement it over
//! pub-sub/queueing and object storage respectively.
//!
//! Collectives (`barrier`, `reduce`) are built on the same primitives using
//! reserved tags, exactly as the paper layers them on its channels.

use fsd_faas::{FaasError, WorkerCtx};
use fsd_sparse::SparseRows;
use std::collections::HashMap;

/// Message class carried in the `layer` attribute / key segment.
///
/// Layers use their index; collectives use reserved values well above any
/// real layer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Intermediate results entering layer `k` (0-based).
    Layer(u32),
    /// Barrier round `r`: arrival (worker → root).
    BarrierArrive(u32),
    /// Barrier round `r`: release (root → workers).
    BarrierRelease(u32),
    /// Output reduction for batch `b` (worker → root).
    Reduce(u32),
}

const TAG_BARRIER_ARRIVE: u32 = 0xFFFF_0000;
const TAG_BARRIER_RELEASE: u32 = 0xFFFE_0000;
const TAG_REDUCE: u32 = 0xFFFD_0000;

impl Tag {
    /// Encodes into the 32-bit attribute field.
    pub fn encode(self) -> u32 {
        match self {
            Tag::Layer(k) => {
                assert!(
                    k < TAG_BARRIER_RELEASE,
                    "layer index collides with control tags"
                );
                k
            }
            Tag::BarrierArrive(r) => TAG_BARRIER_ARRIVE | (r & 0xFFFF),
            Tag::BarrierRelease(r) => TAG_BARRIER_RELEASE | (r & 0xFFFF),
            Tag::Reduce(b) => TAG_REDUCE | (b & 0xFFFF),
        }
    }

    /// Decodes from the attribute field.
    pub fn decode(v: u32) -> Tag {
        match v & 0xFFFF_0000 {
            TAG_BARRIER_ARRIVE => Tag::BarrierArrive(v & 0xFFFF),
            TAG_BARRIER_RELEASE => Tag::BarrierRelease(v & 0xFFFF),
            TAG_REDUCE => Tag::Reduce(v & 0xFFFF),
            _ => Tag::Layer(v),
        }
    }

    /// Key segment for object-store paths.
    pub fn key_segment(self) -> String {
        match self {
            Tag::Layer(k) => format!("L{k}"),
            Tag::BarrierArrive(r) => format!("BA{r}"),
            Tag::BarrierRelease(r) => format!("BR{r}"),
            Tag::Reduce(b) => format!("RED{b}"),
        }
    }
}

/// Tracks which sources have completed delivery for one `(tag, receiver)`.
///
/// Queue channel: a source is complete when all `total_chunks` byte strings
/// have arrived (the count travels as a message attribute). Object channel:
/// a source is complete when its single `.dat`/`.nul` file has been seen.
#[derive(Debug, Default)]
pub struct RecvTracker {
    pending: HashMap<u32, ChunkState>,
    initial: usize,
}

#[derive(Debug, Clone, Copy)]
struct ChunkState {
    expected: Option<u32>,
    got: u32,
}

impl RecvTracker {
    /// Tracker expecting one delivery from each listed source.
    pub fn expecting(sources: impl IntoIterator<Item = u32>) -> RecvTracker {
        let pending: HashMap<u32, ChunkState> = sources
            .into_iter()
            .map(|s| {
                (
                    s,
                    ChunkState {
                        expected: None,
                        got: 0,
                    },
                )
            })
            .collect();
        let initial = pending.len();
        RecvTracker { pending, initial }
    }

    /// Number of sources that have fully delivered so far.
    pub fn completed(&self) -> usize {
        self.initial - self.pending.len()
    }

    /// Whether every source has fully delivered.
    pub fn done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of sources still outstanding.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Whether `source` still owes data (object channel ignores duplicate
    /// `.dat` files from completed sources — the paper's redundant-read
    /// optimization).
    pub fn is_pending(&self, source: u32) -> bool {
        self.pending.contains_key(&source)
    }

    /// Records one received chunk from `source` announcing `total_chunks`.
    /// Unknown sources are ignored (stale redeliveries).
    pub fn record_chunk(&mut self, source: u32, total_chunks: u32) {
        if let Some(state) = self.pending.get_mut(&source) {
            state.expected = Some(total_chunks.max(1));
            state.got += 1;
            if state.got >= state.expected.expect("just set") {
                self.pending.remove(&source);
            }
        }
    }

    /// Marks a source fully complete (object channel: file observed).
    pub fn complete(&mut self, source: u32) {
        self.pending.remove(&source);
    }
}

/// A fully serverless point-to-point channel for FSI.
///
/// Channels are **request-scoped**: [`crate::ChannelProvider`] builds one
/// instance per inference flow, so client-side statistics and service
/// resources (queues, subscriptions, object prefixes) belong to exactly one
/// request and concurrent requests never share mutable channel state.
pub trait FsiChannel: Send + Sync {
    /// Client-side statistics collected by this channel instance
    /// (cost-model inputs; request-local by construction).
    fn stats(&self) -> &crate::stats::ChannelStats;

    /// Releases the per-request service resources this channel set up
    /// (filter-policy subscriptions, queues, namespaced objects). Called by
    /// the service once the request's worker tree has been joined; safe to
    /// call more than once. Straggler workers holding `Arc` handles keep
    /// working against the detached resources until their timeout binds.
    fn teardown(&self) {}

    /// Ships `sends` (target, rows — possibly empty) for `tag`. Packing,
    /// chunking, compression and API batching are channel concerns; the
    /// caller's clock is advanced by the modeled (multi-threaded) cost.
    fn send_layer(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        src: u32,
        sends: &[(u32, SparseRows)],
    ) -> Result<(), FaasError>;

    /// One receive round for `me`: returns zero or more `(source, rows)`
    /// blocks and updates `tracker`. Callers loop until `tracker.done()`,
    /// re-checking FaaS limits between rounds (a worker that waits past its
    /// timeout budget dies with [`FaasError::Timeout`]).
    fn receive_round(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        me: u32,
        tracker: &mut RecvTracker,
    ) -> Result<Vec<(u32, SparseRows)>, FaasError>;

    /// Receives until every source in `tracker` delivered; the common loop.
    fn receive_all(
        &self,
        ctx: &mut WorkerCtx,
        tag: Tag,
        me: u32,
        tracker: &mut RecvTracker,
    ) -> Result<Vec<(u32, SparseRows)>, FaasError> {
        let mut all = Vec::new();
        while !tracker.done() {
            ctx.check_limits()?;
            let got = self.receive_round(ctx, tag, me, tracker)?;
            all.extend(got);
        }
        Ok(all)
    }
}

/// Barrier across all `n_workers` (paper line `barrier(P_all)`): everyone
/// reports to worker 0, which releases everyone. Built on the channel's own
/// primitives so it is exactly as serverless as the data path.
pub fn barrier(
    channel: &dyn FsiChannel,
    ctx: &mut WorkerCtx,
    me: u32,
    n_workers: u32,
    round: u32,
) -> Result<(), FaasError> {
    if n_workers <= 1 {
        return Ok(());
    }
    let empty = SparseRows::new(0);
    if me == 0 {
        let mut tracker = RecvTracker::expecting(1..n_workers);
        channel.receive_all(ctx, Tag::BarrierArrive(round), 0, &mut tracker)?;
        let releases: Vec<(u32, SparseRows)> = (1..n_workers).map(|w| (w, empty.clone())).collect();
        channel.send_layer(ctx, Tag::BarrierRelease(round), 0, &releases)?;
    } else {
        channel.send_layer(ctx, Tag::BarrierArrive(round), me, &[(0, empty)])?;
        let mut tracker = RecvTracker::expecting([0u32]);
        channel.receive_all(ctx, Tag::BarrierRelease(round), me, &mut tracker)?;
    }
    Ok(())
}

/// Reduce to worker 0 (paper line `reduce(P_0, x^L_m)`): every worker ships
/// its final rows for batch `batch` to the root, which merges them into the
/// inference result.
pub fn reduce(
    channel: &dyn FsiChannel,
    ctx: &mut WorkerCtx,
    me: u32,
    n_workers: u32,
    mine: SparseRows,
    batch: u32,
) -> Result<Option<SparseRows>, FaasError> {
    if n_workers <= 1 {
        return Ok(Some(mine));
    }
    if me == 0 {
        let mut tracker = RecvTracker::expecting(1..n_workers);
        let blocks = channel.receive_all(ctx, Tag::Reduce(batch), 0, &mut tracker)?;
        let mut out = mine;
        for (_, block) in blocks {
            out.merge(&block);
        }
        Ok(Some(out))
    } else {
        channel.send_layer(ctx, Tag::Reduce(batch), me, &[(0, mine)])?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for tag in [
            Tag::Layer(0),
            Tag::Layer(119),
            Tag::BarrierArrive(0),
            Tag::BarrierArrive(7),
            Tag::BarrierRelease(7),
            Tag::Reduce(0),
            Tag::Reduce(3),
        ] {
            assert_eq!(Tag::decode(tag.encode()), tag, "{tag:?}");
        }
    }

    #[test]
    fn tag_key_segments_are_distinct() {
        let tags = [
            Tag::Layer(3),
            Tag::BarrierArrive(3),
            Tag::BarrierRelease(3),
            Tag::Reduce(3),
        ];
        let mut segs: Vec<String> = tags.iter().map(|t| t.key_segment()).collect();
        segs.sort();
        segs.dedup();
        assert_eq!(segs.len(), tags.len());
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn absurd_layer_index_rejected() {
        Tag::Layer(0xFFFF_0001).encode();
    }

    #[test]
    fn tracker_multi_chunk_source() {
        let mut t = RecvTracker::expecting([1u32, 2]);
        assert!(!t.done());
        assert_eq!(t.outstanding(), 2);
        t.record_chunk(1, 3);
        t.record_chunk(1, 3);
        assert!(t.is_pending(1));
        t.record_chunk(1, 3);
        assert!(!t.is_pending(1));
        t.record_chunk(2, 1);
        assert!(t.done());
    }

    #[test]
    fn tracker_ignores_unknown_sources() {
        let mut t = RecvTracker::expecting([5u32]);
        t.record_chunk(9, 1);
        assert!(!t.done());
        t.complete(9);
        assert!(!t.done());
        t.complete(5);
        assert!(t.done());
    }

    #[test]
    fn tracker_zero_chunk_announcement_counts_as_one() {
        // An empty send still produces one (empty) message; total_chunks=0
        // is clamped so the source completes.
        let mut t = RecvTracker::expecting([1u32]);
        t.record_chunk(1, 0);
        assert!(t.done());
    }

    #[test]
    fn empty_tracker_is_done() {
        let t = RecvTracker::expecting([]);
        assert!(t.done());
    }
}
