//! The FSI worker routine (Algorithms 1 & 2, channel-generic).
//!
//! Each worker: launches its subtree of children (hierarchical launch),
//! loads its weight/map artifacts once, then — per inference batch (paper
//! Fig. 1: "Batch 1 … Batch n, SYNC") — per layer: sends its owed rows,
//! computes the local product to overlap communication with computation,
//! receives and accumulates inbound rows until its receive map is
//! satisfied, and applies the activation. A barrier + reduce per batch
//! delivers that batch's result to rank 0. Launch and weight-load costs
//! amortize across batches — the data-parallel batch processing the paper
//! builds in.

use crate::artifacts::{load_full_model, load_input_share, load_worker_artifacts};
use crate::channel::{barrier, reduce, FsiChannel, RecvTracker, Tag};
use crate::weight_cache::WeightCache;
use fsd_faas::{launch, FaasError, FunctionConfig, InvocationReport, WorkerCtx};
use fsd_model::DnnSpec;
use fsd_sparse::{codec, layer_forward_reference, LayerAccumulator, SparseRows};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Parameters shared by every worker of a run.
#[derive(Clone)]
pub struct WorkerParams {
    /// Total workers `P`.
    pub n_workers: u32,
    /// Launch-tree branching factor.
    pub branching: usize,
    /// Worker memory (MB).
    pub memory_mb: u32,
    /// Staged model prefix.
    pub model_key: String,
    /// Staged input prefix (batch `b` lives under `{input_key}/b{b}`).
    pub input_key: String,
    /// Model shape/activation parameters.
    pub spec: DnnSpec,
    /// Width (samples) of each successive batch.
    pub batch_widths: Vec<usize>,
    /// λScale-style streamed cold start: workers are provisioned flat (no
    /// child launches) and weights arrive multicast from rank 0 instead
    /// of independent per-worker loads.
    pub stream: bool,
    /// The service-wide weight-block cache streamed loads read through.
    pub cache: Arc<WeightCache>,
    /// Run-wide abort flag: raised by the first failing worker (including
    /// a child whose *launch* was refused), observed by every peer's
    /// [`WorkerCtx::check_limits`] mid-collective — a dead instance must
    /// fail its tree fast, not leave peers polling until their timeout.
    pub abort: Arc<AtomicBool>,
}

/// What bubbles up from a worker: its own measurements plus everything from
/// its subtree, and (rank 0 only) the final inference outputs per batch.
pub struct WorkerOutput {
    /// Rank that produced this output.
    pub rank: u32,
    /// Final activations per batch (root only, after each reduce).
    pub final_batches: Option<Vec<SparseRows>>,
    /// `(rank, report)` for every descendant that has completed.
    pub subtree_reports: Vec<(u32, InvocationReport)>,
    /// Artifact GETs issued by this worker alone.
    pub artifact_gets: u64,
    /// Kernel work units this worker charged.
    pub work_done: u64,
}

/// Batch-aware layer tag: tags must be distinct across batches so early
/// arrivals stash correctly and object keys never collide with a previous
/// batch's persisted files.
fn layer_tag(spec: &DnnSpec, batch: usize, k: usize) -> Tag {
    Tag::Layer((batch * spec.layers + k) as u32)
}

/// What one worker produced for one request's batches (the per-request
/// slice of [`WorkerOutput`], shared by the one-shot path and the warm
/// serve loop).
pub(crate) struct BatchRunOutput {
    /// Final activations per batch (root only).
    pub final_batches: Option<Vec<SparseRows>>,
    /// Input-share GETs issued while running the batches.
    pub artifact_gets: u64,
    /// Kernel work units charged.
    pub work_done: u64,
}

/// Runs every batch of one request through an already-loaded worker: per
/// batch, the layer loop of Algorithms 1 & 2 followed by a barrier + reduce
/// to rank 0. This is the request-scoped core of [`run_worker`], factored
/// out so a warm (kept-alive) worker re-runs *exactly* the same code per
/// work item — outputs are bit-identical between cold and warm paths by
/// construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batches(
    ctx: &mut WorkerCtx,
    channel: &Arc<dyn FsiChannel>,
    rank: u32,
    n_workers: u32,
    spec: &DnnSpec,
    art: &mut crate::artifacts::WorkerArtifacts,
    input_key: &str,
    batch_widths: &[usize],
) -> Result<BatchRunOutput, FaasError> {
    let mut artifact_gets = 0u64;
    let mut work_done = 0u64;
    let mut final_batches: Vec<SparseRows> = Vec::new();
    for (b, &width) in batch_widths.iter().enumerate() {
        let mut x = load_input_share(ctx, &format!("{input_key}/b{b}"), n_workers, rank)?;
        artifact_gets += 1;
        let mut acc = LayerAccumulator::new(art.owned.len(), width);
        ctx.track_alloc(art.owned.len() * width * 4);
        ctx.check_limits()?;

        // --- the layer loop (Algorithms 1 & 2) --------------------------
        for k in 0..spec.layers {
            // Streamed cold starts leave layers encoded until compute
            // reaches them (execute-while-load); eager loads no-op here.
            art.ensure_layer(ctx, k)?;
            let tag = layer_tag(spec, b, k);
            // Sends: extract and ship the rows each target needs.
            let sends: Vec<(u32, SparseRows)> = art.send[k]
                .iter()
                .map(|(target, rows)| (*target, x.extract(rows)))
                .collect();
            channel.send_layer(ctx, tag, rank, &sends)?;
            drop(sends);

            // Local product overlaps with inbound communication: its
            // compute time is charged *now* (before polling), while the
            // numeric accumulation is deferred and done over the merged,
            // id-sorted input set — so the f32 summation order (and hence
            // the result) is bit-identical to the serial ground truth.
            let local_work = art.weight(k).matched_work(&x);
            ctx.charge_work(local_work);
            work_done += local_work;

            // Receive until every expected source delivered, charging each
            // block's accumulate work as it arrives (still overlapped).
            let mut tracker = RecvTracker::expecting(art.recv[k].iter().map(|(s, _)| *s));
            while !tracker.done() {
                ctx.check_limits()?;
                let blocks = channel.receive_round(ctx, tag, rank, &mut tracker)?;
                for (_, block) in blocks {
                    let w = art.weight(k).matched_work(&block);
                    ctx.charge_work(w);
                    work_done += w;
                    ctx.track_alloc(block.mem_bytes());
                    x.merge(&block);
                }
            }

            // One deterministic accumulation over all inputs (work already
            // charged above), then the activation x^k = f(z^k).
            acc.reset(art.owned.len());
            acc.accumulate(art.weight(k), &x);
            let old_mem = x.mem_bytes();
            let (next, fw) = acc.finalize(&art.owned, spec.bias, spec.clip);
            ctx.charge_work(fw);
            work_done += fw;
            ctx.track_free(old_mem);
            ctx.track_alloc(next.mem_bytes());
            x = next;
            ctx.check_limits()?;
        }

        // --- synchronize and reduce this batch to rank 0 ----------------
        barrier(channel.as_ref(), ctx, rank, n_workers, b as u32)?;
        let batch_mem = x.mem_bytes();
        if let Some(out) = reduce(channel.as_ref(), ctx, rank, n_workers, x, b as u32)? {
            final_batches.push(out);
        }
        ctx.track_free(batch_mem + art.owned.len() * width * 4);
    }
    Ok(BatchRunOutput {
        final_batches: if rank == 0 { Some(final_batches) } else { None },
        artifact_gets,
        work_done,
    })
}

/// Runs worker `rank` of a distributed FSI inference. Any failure raises
/// the run-wide abort flag on the way out, so peers blocked in collectives
/// unwedge at their next limit check instead of draining their timeout.
pub fn run_worker(
    ctx: &mut WorkerCtx,
    channel: Arc<dyn FsiChannel>,
    rank: u32,
    params: WorkerParams,
) -> Result<WorkerOutput, FaasError> {
    let abort = params.abort.clone();
    ctx.set_abort(abort.clone());
    let out = run_worker_inner(ctx, channel, rank, params);
    if out.is_err() {
        abort.store(true, Ordering::Relaxed);
    }
    out
}

fn run_worker_inner(
    ctx: &mut WorkerCtx,
    channel: Arc<dyn FsiChannel>,
    rank: u32,
    params: WorkerParams,
) -> Result<WorkerOutput, FaasError> {
    // --- 1. worker_invoke_children(): launch the subtree ---------------
    // Streamed launches are provisioned flat (FaaSNet-style): the
    // coordinator invokes every rank directly and the launch tree carries
    // *weight state* instead of invocations, so no worker launches
    // children here.
    let children = if params.stream {
        Vec::new()
    } else {
        launch::children_of(rank as usize, params.branching, params.n_workers as usize)
    };
    let mut child_invocations = Vec::with_capacity(children.len());
    let mut launch_refused = None;
    for &child in &children {
        // The (async) Invoke API call costs the parent one round trip.
        let lat = ctx.env().latency().lambda_invoke_us;
        let jittered = ctx.env().jitter().apply(lat);
        ctx.clock_mut().advance_micros(jittered);
        // Children inherit the parent's flow: the whole tree bills to the
        // request that launched it.
        let cfg = FunctionConfig::worker(format!("fsd-worker-{child}"), params.memory_mb)
            .for_flow(ctx.config().flow);
        let channel = channel.clone();
        let params_c = params.clone();
        let at = ctx.now();
        let inv = ctx.platform().clone().invoke(cfg, at, move |child_ctx| {
            run_worker(child_ctx, channel, child as u32, params_c)
        });
        // An injected launch fault is known synchronously (a real Invoke
        // API error): the subtree below that child will never exist, so
        // fail the whole tree now rather than wedging its collectives.
        if let Some(e) = inv.launch_error() {
            launch_refused.get_or_insert(e);
        }
        child_invocations.push((child as u32, inv));
    }
    // --- 2+3. load weights, run the batches (skipped when a child launch
    // was refused: that subtree will never exist, so the collectives can
    // only wedge) ---------------------------------------------------------
    let body = match launch_refused {
        Some(e) => Err(e),
        None => (|| {
            let mut art = if params.stream {
                crate::weight_stream::stream_load(
                    ctx,
                    &params.cache,
                    &params.model_key,
                    rank,
                    params.n_workers,
                    params.spec.layers,
                    params.branching,
                )?
            } else {
                load_worker_artifacts(
                    ctx,
                    &params.model_key,
                    params.n_workers,
                    rank,
                    params.spec.layers,
                )?
            };
            let gets = art.n_gets;
            let run = run_batches(
                ctx,
                &channel,
                rank,
                params.n_workers,
                &params.spec,
                &mut art,
                &params.input_key,
                &params.batch_widths,
            )?;
            Ok((gets, run))
        })(),
    };
    if body.is_err() {
        // Raise the run-wide abort *before* joining so the subtree's
        // collectives unwedge and every descendant exits promptly.
        params.abort.store(true, Ordering::Relaxed);
    }

    // --- 4. join the subtree and aggregate reports ----------------------
    // Unconditional, error or not: a child that outlived its parent's
    // return would keep billing the flow after the service released the
    // request's window (a tracked-flow leak, and a torn billing report).
    let mut subtree_reports = Vec::new();
    let mut child_gets = 0u64;
    let mut child_work = 0u64;
    let mut child_error = None;
    for (child_rank, inv) in child_invocations {
        match inv.join() {
            Ok((child_out, child_report)) => {
                debug_assert_eq!(child_out.rank, child_rank);
                subtree_reports.push((child_rank, child_report));
                subtree_reports.extend(child_out.subtree_reports);
                child_gets += child_out.artifact_gets;
                child_work += child_out.work_done;
            }
            Err(e) => {
                child_error.get_or_insert(e);
            }
        }
    }
    // This worker's own failure wins over a descendant's (it is the
    // proximate cause the service reports); either fails the tree.
    let (mut artifact_gets, run) = body?;
    if let Some(e) = child_error {
        return Err(e);
    }
    artifact_gets += child_gets;
    Ok(WorkerOutput {
        rank,
        final_batches: run.final_batches,
        subtree_reports,
        artifact_gets,
        work_done: run.work_done + child_work,
    })
}

/// FSD-Inf-Serial: one instance, whole model, no communication (Algorithm 1
/// with all communication steps removed), batches processed back to back.
pub fn run_serial(
    ctx: &mut WorkerCtx,
    model_key: &str,
    input_key: &str,
    spec: &DnnSpec,
    n_batches: usize,
) -> Result<WorkerOutput, FaasError> {
    let (layers, mut artifact_gets, _mem) = load_full_model(ctx, model_key, spec.layers)?;
    let mut work_done = 0u64;
    let mut final_batches = Vec::with_capacity(n_batches);
    for b in 0..n_batches {
        let mut x = load_full_inputs(ctx, &format!("{input_key}/b{b}"))?;
        artifact_gets += 1;
        for w in &layers {
            let (next, work) = layer_forward_reference(w, &x, spec.bias, spec.clip);
            ctx.charge_work(work);
            work_done += work;
            let old = x.mem_bytes();
            ctx.track_free(old);
            ctx.track_alloc(next.mem_bytes());
            x = next;
            ctx.check_limits()?;
        }
        final_batches.push(x);
    }
    Ok(WorkerOutput {
        rank: 0,
        final_batches: Some(final_batches),
        subtree_reports: Vec::new(),
        artifact_gets,
        work_done,
    })
}

/// Fetches the full (unpartitioned) input block for one batch.
fn load_full_inputs(ctx: &mut WorkerCtx, input_key: &str) -> Result<SparseRows, FaasError> {
    let env = ctx.env().clone();
    let body = env
        .object_store()
        .get(
            crate::artifacts::ARTIFACT_BUCKET,
            &format!("{input_key}/full"),
            ctx.clock_mut(),
        )
        .map_err(|e| FaasError::comm("get", input_key, e))?;
    let inputs = codec::decode(&body).map_err(|e| FaasError::comm("decode", "inputs", e))?;
    ctx.track_alloc(inputs.mem_bytes());
    ctx.check_limits()?;
    Ok(inputs)
}
