//! Bounded retry with exponential backoff and seeded jitter.
//!
//! Transient service faults (see `fsd_comm::FaultPlan`) surface as
//! [`CommError::Unavailable`] / [`CommError::Throttled`]; this module gives
//! the channels a uniform, deterministic recovery loop around them.
//!
//! **Idempotence contract.** A retry loop may wrap only operations that are
//! all-or-nothing in the communication model:
//!
//! * `publish_batch` — a failed publish bills its requests but delivers
//!   *nothing*, so republishing the same batch cannot duplicate messages;
//! * object `put` — a failed PUT bills but stores nothing;
//! * object `get` — a pure read.
//!
//! Queue **receives are never wrapped here**: redelivery of an unsettled
//! message is the visibility-timeout machinery's job, and the channels'
//! `settle_receives` path already reconstructs the billed poll sequence —
//! including fault-injected unproductive rounds — deterministically. The
//! `retry-idempotent` lint (`fsd-analysis`) enforces this allowlist.
//!
//! **Determinism.** Backoff jitter is a pure hash of the clock's
//! `(flow, now, attempt)`, so a replay under the same fault seed sleeps the
//! same virtual durations and re-draws the same fault decisions. Failed
//! attempts have already advanced the clock and billed their requests
//! (AWS semantics: you pay for the call that failed).

use fsd_comm::{mix64, unit_from, CommError, VClock};

/// Retry policy for transient communication faults. `Copy`, carried by
/// [`crate::ChannelOptions`]; the default is enabled (4 bounded attempts)
/// and adds **zero** behavior change when no faults are injected, because
/// retries only trigger on retryable [`CommError`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual microseconds.
    pub base_backoff_us: u64,
    /// Backoff ceiling (exponential doubling is clamped here).
    pub max_backoff_us: u64,
    /// Jitter half-width as a fraction of the backoff (0.25 ⇒ ±25%).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 10_000,
            max_backoff_us: 160_000,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The jittered backoff before retry number `attempt` (1-based), drawn
    /// deterministically from the clock position so replays are identical.
    fn backoff_us(&self, clock: &VClock, attempt: u32) -> u64 {
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.max_backoff_us);
        let h = mix64(
            clock
                .flow()
                .rotate_left(23)
                .wrapping_add(clock.now().as_micros())
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ attempt as u64,
        );
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit_from(h);
        ((exp as f64) * factor).round() as u64
    }

    /// Runs `op` under this policy: retries on retryable [`CommError`]s
    /// (transient/throttle faults), advancing `clock` by the jittered
    /// backoff between attempts. Returns the final outcome plus the number
    /// of retries performed (0 on first-attempt success), which callers
    /// fold into their client-side stats.
    ///
    /// `op` receives the clock so every attempt — including failed ones —
    /// bills its latency and charges at the attempt's own virtual instant.
    pub fn run<T>(
        &self,
        clock: &mut VClock,
        mut op: impl FnMut(&mut VClock) -> Result<T, CommError>,
    ) -> (Result<T, CommError>, u64) {
        let attempts = self.max_attempts.max(1);
        let mut retries = 0u64;
        loop {
            match op(clock) {
                Ok(v) => return (Ok(v), retries),
                Err(e) if e.is_retryable() && (retries as u32) < attempts - 1 => {
                    retries += 1;
                    clock.advance_micros(self.backoff_us(clock, retries as u32));
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::VirtualTime;

    fn clock() -> VClock {
        VClock::starting_at(VirtualTime::ZERO).with_flow(7)
    }

    #[test]
    fn first_attempt_success_is_free() {
        let mut c = clock();
        let (res, retries) = RetryPolicy::default().run(&mut c, |_| Ok::<_, CommError>(42));
        assert_eq!(res.expect("ok"), 42);
        assert_eq!(retries, 0);
        assert_eq!(c.now(), VirtualTime::ZERO, "no backoff on success");
    }

    #[test]
    fn transient_errors_are_retried_with_backoff() {
        let mut c = clock();
        let mut calls = 0u32;
        let (res, retries) = RetryPolicy::default().run(&mut c, |_| {
            calls += 1;
            if calls < 3 {
                Err(CommError::Unavailable { api: "x".into() })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(res.expect("recovered"), 3);
        assert_eq!(retries, 2);
        assert!(c.now() > VirtualTime::ZERO, "backoff advanced the clock");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mut c = clock();
        let mut calls = 0u32;
        let (res, retries) = RetryPolicy::default().run(&mut c, |_| {
            calls += 1;
            Err::<(), _>(CommError::Faulted { api: "x".into() })
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn attempts_are_bounded() {
        let mut c = clock();
        let mut calls = 0u32;
        let policy = RetryPolicy::default();
        let (res, retries) = policy.run(&mut c, |_| {
            calls += 1;
            Err::<(), _>(CommError::Throttled { api: "x".into() })
        });
        assert!(res.is_err());
        assert_eq!(calls, policy.max_attempts);
        assert_eq!(retries, (policy.max_attempts - 1) as u64);
    }

    #[test]
    fn none_policy_never_retries() {
        let mut c = clock();
        let mut calls = 0u32;
        let (res, _) = RetryPolicy::none().run(&mut c, |_| {
            calls += 1;
            Err::<(), _>(CommError::Unavailable { api: "x".into() })
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let c = clock();
        for attempt in 1..=3 {
            let a = policy.backoff_us(&c, attempt);
            let b = policy.backoff_us(&c, attempt);
            assert_eq!(a, b, "same clock position ⇒ same jitter");
            let exp = (policy.base_backoff_us << (attempt - 1)).min(policy.max_backoff_us) as f64;
            assert!((a as f64) >= exp * (1.0 - policy.jitter) - 1.0);
            assert!((a as f64) <= exp * (1.0 + policy.jitter) + 1.0);
        }
        // Doubling: attempt 2's band sits above attempt 1's.
        let a1 = policy.backoff_us(&c, 1) as f64;
        let a2 = policy.backoff_us(&c, 2) as f64;
        assert!(a2 > a1 * (1.0 - 2.0 * policy.jitter));
    }
}
