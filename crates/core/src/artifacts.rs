//! Model/input artifact staging and loading.
//!
//! Partitioning is *offline post-processing* of a trained model (paper
//! §III): weight row-blocks, ownership lists and send/recv maps are written
//! to object storage ahead of time. At inference time each worker GETs its
//! own artifacts — those requests and transfer times are part of the
//! measured run (the paper attributes serial's slow small-model latency to
//! exactly this unpartitioned-weight read).

use crate::wire;
use fsd_comm::{CloudEnv, VClock, VirtualTime};
use fsd_faas::{FaasError, WorkerCtx};
use fsd_model::SparseDnn;
use fsd_partition::{CommPlan, Partition};
use fsd_sparse::{codec, ColMajorBlock, CsrMatrix, SparseRows};
use std::sync::Arc;

/// Bucket holding model and input artifacts (distinct from the
/// intermediate-result buckets so channel LIST scans never see them).
pub const ARTIFACT_BUCKET: &str = "fsd-artifacts";

/// Artifact parsing throughput (bytes/second on one full vCPU).
pub(crate) const ARTIFACT_DECODE_BPS: f64 = 200e6;

/// Key layout helpers. The `worker_*` ones are crate-visible: the
/// weight-streaming source enumerates every rank's keys to build its
/// multicast manifest, and receivers enumerate their own to classify
/// incoming frames.
fn full_layer_key(model: &str, k: usize) -> String {
    format!("{model}/full/L{k}")
}
pub(crate) fn worker_layer_key(model: &str, p: u32, m: u32, k: usize) -> String {
    format!("{model}/p{p}/w{m}/L{k}")
}
pub(crate) fn worker_owned_key(model: &str, p: u32, m: u32) -> String {
    format!("{model}/p{p}/w{m}/owned")
}
pub(crate) fn worker_send_key(model: &str, p: u32, m: u32) -> String {
    format!("{model}/p{p}/w{m}/send")
}
pub(crate) fn worker_recv_key(model: &str, p: u32, m: u32) -> String {
    format!("{model}/p{p}/w{m}/recv")
}
fn input_full_key(input: &str) -> String {
    format!("{input}/full")
}
fn input_worker_key(input: &str, p: u32, m: u32) -> String {
    format!("{input}/p{p}/w{m}")
}

/// Stages the *unpartitioned* model (for FSD-Inf-Serial and the server
/// baselines). Offline: uses a throwaway clock; callers snapshot meters
/// after staging.
pub fn stage_full_model(env: &CloudEnv, model_key: &str, dnn: &SparseDnn) {
    env.object_store().create_bucket(ARTIFACT_BUCKET);
    for (k, layer) in dnn.layers().iter().enumerate() {
        env.object_store()
            .put_offline(
                ARTIFACT_BUCKET,
                &full_layer_key(model_key, k),
                wire::encode_csr(layer),
            )
            .expect("artifact bucket exists");
    }
}

/// Stages the partitioned model for `P = partition.n_parts()` workers:
/// per-worker weight blocks (rows owned, global columns), ownership lists
/// and per-layer send/recv maps.
pub fn stage_partitioned_model(
    env: &CloudEnv,
    model_key: &str,
    dnn: &SparseDnn,
    partition: &Partition,
    plan: &CommPlan,
) {
    env.object_store().create_bucket(ARTIFACT_BUCKET);
    let p = partition.n_parts() as u32;
    let store = env.object_store();
    for m in 0..p {
        let owned = partition.owned(m);
        store
            .put_offline(
                ARTIFACT_BUCKET,
                &worker_owned_key(model_key, p, m),
                wire::encode_ids(owned),
            )
            .expect("bucket exists");
        for (k, layer) in dnn.layers().iter().enumerate() {
            let sub = layer.select_rows(owned);
            store
                .put_offline(
                    ARTIFACT_BUCKET,
                    &worker_layer_key(model_key, p, m, k),
                    wire::encode_csr(&sub),
                )
                .expect("bucket exists");
        }
        let send: Vec<Vec<(u32, Vec<u32>)>> = (0..plan.n_layers())
            .map(|k| plan.layer(k).send[m as usize].clone())
            .collect();
        let recv: Vec<Vec<(u32, Vec<u32>)>> = (0..plan.n_layers())
            .map(|k| plan.layer(k).recv[m as usize].clone())
            .collect();
        store
            .put_offline(
                ARTIFACT_BUCKET,
                &worker_send_key(model_key, p, m),
                wire::encode_maps(&send),
            )
            .expect("bucket exists");
        store
            .put_offline(
                ARTIFACT_BUCKET,
                &worker_recv_key(model_key, p, m),
                wire::encode_maps(&recv),
            )
            .expect("bucket exists");
    }
}

/// Stages an input batch: the full block (serial) plus per-worker shares.
pub fn stage_inputs(
    env: &CloudEnv,
    input_key: &str,
    inputs: &SparseRows,
    partition: Option<&Partition>,
) {
    env.object_store().create_bucket(ARTIFACT_BUCKET);
    let store = env.object_store();
    store
        .put_offline(
            ARTIFACT_BUCKET,
            &input_full_key(input_key),
            codec::encode(inputs),
        )
        .expect("bucket exists");
    if let Some(part) = partition {
        let p = part.n_parts() as u32;
        for m in 0..p {
            let share = inputs.extract(part.owned(m));
            store
                .put_offline(
                    ARTIFACT_BUCKET,
                    &input_worker_key(input_key, p, m),
                    codec::encode(&share),
                )
                .expect("bucket exists");
        }
    }
}

/// One layer's weight block: decoded and ready, or still the encoded
/// bytes a streamed cold start received (λScale execute-while-load —
/// layers decode lazily as compute reaches them, so first-layer compute
/// overlaps later-layer transfer).
pub enum LayerSlot {
    /// Decoded column-major block, ready for the kernel.
    Ready(ColMajorBlock),
    /// Encoded bytes delivered by the weight stream, not yet decoded.
    Pending {
        /// The wire-encoded CSR sub-block.
        body: Arc<[u8]>,
        /// Virtual time the bytes finished arriving on this instance
        /// ([`VirtualTime::ZERO`] for blocks served from the process-wide
        /// weight cache: they are already resident memory).
        available_at: VirtualTime,
    },
}

/// Everything one distributed worker loads before inference starts
/// (inputs are fetched separately, per batch — see [`load_input_share`]).
pub struct WorkerArtifacts {
    /// Global row ids this worker owns (sorted).
    pub owned: Vec<u32>,
    /// Per-layer weight blocks. Eager loads fill every slot
    /// [`LayerSlot::Ready`]; streamed loads leave slots
    /// [`LayerSlot::Pending`] until [`WorkerArtifacts::ensure_layer`]
    /// decodes them on first use.
    pub weights: Vec<LayerSlot>,
    /// Per-layer send maps `[(target, rows)]`.
    pub send: Vec<Vec<(u32, Vec<u32>)>>,
    /// Per-layer recv maps `[(source, rows)]`.
    pub recv: Vec<Vec<(u32, Vec<u32>)>>,
    /// Number of artifact GET requests issued (cost-model input).
    pub n_gets: u64,
    /// Tracked resident bytes for the FaaS memory model.
    pub mem_bytes: usize,
}

impl WorkerArtifacts {
    /// Decodes layer `k` if it is still [`LayerSlot::Pending`]: waits (in
    /// virtual time) for the bytes to finish arriving, then charges the
    /// same decode bytes and transpose work an eager load charges — so a
    /// streamed load's decoded blocks, outputs and work totals are
    /// bit-identical to an independent load's. No-op on ready slots.
    pub fn ensure_layer(&mut self, ctx: &mut WorkerCtx, k: usize) -> Result<(), FaasError> {
        let (body, available_at) = match &self.weights[k] {
            LayerSlot::Ready(_) => return Ok(()),
            LayerSlot::Pending { body, available_at } => (body.clone(), *available_at),
        };
        ctx.clock_mut().observe(available_at);
        ctx.charge_bytes(body.len() as u64, ARTIFACT_DECODE_BPS);
        let sub = wire::decode_csr(&body)
            .map_err(|e| FaasError::comm("decode", format!("layer {k}"), e))?;
        let local_ids: Vec<u32> = (0..self.owned.len() as u32).collect();
        let block = ColMajorBlock::from_layer(&sub, &local_ids);
        ctx.charge_work(block.nnz() as u64 * 2); // transpose construction
        ctx.track_free(body.len());
        ctx.track_alloc(block.mem_bytes());
        self.mem_bytes = self.mem_bytes.saturating_sub(body.len()) + block.mem_bytes();
        ctx.check_limits()?;
        self.weights[k] = LayerSlot::Ready(block);
        Ok(())
    }

    /// The decoded block of layer `k`. Panics if the slot is still
    /// pending — call [`WorkerArtifacts::ensure_layer`] first.
    pub fn weight(&self, k: usize) -> &ColMajorBlock {
        match &self.weights[k] {
            LayerSlot::Ready(block) => block,
            LayerSlot::Pending { .. } => {
                // fsd_lint::allow(no-unwrap): load-order invariant — the
                // batch loop decodes slot k (`ensure_layer`) before any read
                // of it, so a pending slot here is a library bug, not a
                // recoverable runtime state.
                panic!("layer {k} weights not decoded; ensure_layer must run first")
            }
        }
    }
}

fn fetch(ctx: &mut WorkerCtx, key: &str) -> Result<Vec<u8>, FaasError> {
    let env = ctx.env().clone();
    // Artifact GETs are pure reads; a transient fault here would otherwise
    // kill the whole worker before inference even starts, so the default
    // retry policy wraps this single funnel.
    let (res, _) = crate::retry::RetryPolicy::default().run(ctx.clock_mut(), |clock| {
        env.object_store().get(ARTIFACT_BUCKET, key, clock)
    });
    let body = res.map_err(|e| FaasError::comm("artifact", key, e))?;
    ctx.charge_bytes(body.len() as u64, ARTIFACT_DECODE_BPS);
    Ok(body.to_vec())
}

/// Retry-wrapped artifact GET against an arbitrary clock, returning the
/// encoded bytes without charging decode time. The streaming source uses
/// this with its pipelined fetch-slot clocks; decode is charged later, on
/// whichever instance actually decodes ([`WorkerArtifacts::ensure_layer`]
/// / [`assemble_streamed`]).
pub(crate) fn fetch_encoded(
    env: &CloudEnv,
    clock: &mut VClock,
    key: &str,
) -> Result<Arc<[u8]>, FaasError> {
    let (res, _) = crate::retry::RetryPolicy::default().run(clock, |clock| {
        env.object_store().get(ARTIFACT_BUCKET, key, clock)
    });
    res.map_err(|e| FaasError::comm("artifact", key, e))
}

/// One artifact object as the weight stream delivered it: encoded bytes
/// plus the virtual time they finished arriving ([`VirtualTime::ZERO`]
/// when served from resident cache memory).
pub(crate) struct StreamedPart {
    pub body: Arc<[u8]>,
    pub available_at: VirtualTime,
}

/// A worker's full artifact set in streamed form, before assembly.
/// `n_gets` is the GET requests *this instance* issued (the multicast
/// source counts its fetches; pure receivers count zero unless they fell
/// back to direct loads).
pub(crate) struct StreamedArtifacts {
    pub owned: StreamedPart,
    pub send: StreamedPart,
    pub recv: StreamedPart,
    pub layers: Vec<StreamedPart>,
    pub n_gets: u64,
}

/// Assembles [`WorkerArtifacts`] from streamed parts: ownership and
/// send/recv maps decode eagerly (the serve loop needs them before the
/// first batch), weight layers stay [`LayerSlot::Pending`] for lazy
/// decode. The caller must already have `track_alloc`ed every raw body as
/// it arrived; this converts the map bodies to their decoded forms in the
/// memory tracker and leaves layer bodies resident.
pub(crate) fn assemble_streamed(
    ctx: &mut WorkerCtx,
    parts: StreamedArtifacts,
) -> Result<WorkerArtifacts, FaasError> {
    let StreamedArtifacts {
        owned,
        send,
        recv,
        layers,
        n_gets,
    } = parts;
    ctx.clock_mut().observe(owned.available_at);
    ctx.charge_bytes(owned.body.len() as u64, ARTIFACT_DECODE_BPS);
    let owned_ids =
        wire::decode_ids(&owned.body).map_err(|e| FaasError::comm("decode", "owned ids", e))?;
    ctx.clock_mut().observe(send.available_at);
    ctx.charge_bytes(send.body.len() as u64, ARTIFACT_DECODE_BPS);
    let send_maps =
        wire::decode_maps(&send.body).map_err(|e| FaasError::comm("decode", "send maps", e))?;
    ctx.clock_mut().observe(recv.available_at);
    ctx.charge_bytes(recv.body.len() as u64, ARTIFACT_DECODE_BPS);
    let recv_maps =
        wire::decode_maps(&recv.body).map_err(|e| FaasError::comm("decode", "recv maps", e))?;
    let decoded_mem = owned_ids.len() * 4
        + send_maps
            .iter()
            .chain(recv_maps.iter())
            .flatten()
            .map(|(_, r)| 8 + r.len() * 4)
            .sum::<usize>();
    ctx.track_free(owned.body.len() + send.body.len() + recv.body.len());
    ctx.track_alloc(decoded_mem);
    let mem = decoded_mem + layers.iter().map(|l| l.body.len()).sum::<usize>();
    let weights = layers
        .into_iter()
        .map(|l| LayerSlot::Pending {
            body: l.body,
            available_at: l.available_at,
        })
        .collect();
    ctx.check_limits()?;
    Ok(WorkerArtifacts {
        owned: owned_ids,
        weights,
        send: send_maps,
        recv: recv_maps,
        n_gets,
        mem_bytes: mem,
    })
}

/// Loads a distributed worker's artifacts, charging GET latencies, decode
/// work and resident memory against the FaaS context.
pub fn load_worker_artifacts(
    ctx: &mut WorkerCtx,
    model_key: &str,
    p: u32,
    m: u32,
    n_layers: usize,
) -> Result<WorkerArtifacts, FaasError> {
    let mut n_gets = 0u64;
    let owned = wire::decode_ids(&fetch(ctx, &worker_owned_key(model_key, p, m))?)
        .map_err(|e| FaasError::comm("decode", "owned ids", e))?;
    n_gets += 1;
    let local_ids: Vec<u32> = (0..owned.len() as u32).collect();
    let mut weights = Vec::with_capacity(n_layers);
    let mut mem = owned.len() * 4;
    for k in 0..n_layers {
        let sub = wire::decode_csr(&fetch(ctx, &worker_layer_key(model_key, p, m, k))?)
            .map_err(|e| FaasError::comm("decode", format!("layer {k}"), e))?;
        n_gets += 1;
        // The sub-block's rows are local (0..owned); columns stay global.
        let block = ColMajorBlock::from_layer(&sub, &local_ids);
        ctx.charge_work(block.nnz() as u64 * 2); // transpose construction
        mem += block.mem_bytes();
        weights.push(LayerSlot::Ready(block));
    }
    let send = wire::decode_maps(&fetch(ctx, &worker_send_key(model_key, p, m))?)
        .map_err(|e| FaasError::comm("decode", "send maps", e))?;
    let recv = wire::decode_maps(&fetch(ctx, &worker_recv_key(model_key, p, m))?)
        .map_err(|e| FaasError::comm("decode", "recv maps", e))?;
    n_gets += 2;
    mem += send
        .iter()
        .chain(recv.iter())
        .flatten()
        .map(|(_, r)| 8 + r.len() * 4)
        .sum::<usize>();
    ctx.track_alloc(mem);
    ctx.check_limits()?;
    Ok(WorkerArtifacts {
        owned,
        weights,
        send,
        recv,
        n_gets,
        mem_bytes: mem,
    })
}

/// Loads one worker's share of one input batch (a GET + decode, tracked
/// against the FaaS memory model).
pub fn load_input_share(
    ctx: &mut WorkerCtx,
    input_key: &str,
    p: u32,
    m: u32,
) -> Result<SparseRows, FaasError> {
    let inputs = codec::decode(&fetch(ctx, &input_worker_key(input_key, p, m))?)
        .map_err(|e| FaasError::comm("decode", "inputs", e))?;
    ctx.track_alloc(inputs.mem_bytes());
    ctx.check_limits()?;
    Ok(inputs)
}

/// Loads the full model (FSD-Inf-Serial path; inputs are fetched per batch).
/// Returns `(layers, n_gets, mem_bytes)`.
pub fn load_full_model(
    ctx: &mut WorkerCtx,
    model_key: &str,
    n_layers: usize,
) -> Result<(Vec<CsrMatrix>, u64, usize), FaasError> {
    let mut n_gets = 0u64;
    let mut layers = Vec::with_capacity(n_layers);
    let mut mem = 0usize;
    for k in 0..n_layers {
        let layer = wire::decode_csr(&fetch(ctx, &full_layer_key(model_key, k))?)
            .map_err(|e| FaasError::comm("decode", format!("layer {k}"), e))?;
        n_gets += 1;
        mem += layer.mem_bytes();
        layers.push(layer);
        // Track as we go: serial OOM must trigger while loading, exactly as
        // a real single instance would die mid-load.
        ctx.track_alloc(layers.last().expect("just pushed").mem_bytes());
        ctx.check_limits()?;
    }
    Ok((layers, n_gets, mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_comm::{CloudConfig, VirtualTime};
    use fsd_faas::{ComputeModel, FaasPlatform, FunctionConfig};
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
    use fsd_partition::{partition_model, PartitionScheme};
    use std::sync::Arc;

    fn setup() -> (Arc<CloudEnv>, SparseDnn, Partition, CommPlan, SparseRows) {
        let env = CloudEnv::new(CloudConfig::deterministic(7));
        let dnn = generate_dnn(&DnnSpec {
            neurons: 64,
            layers: 3,
            nnz_per_row: 8,
            bias: -0.2,
            clip: 32.0,
            seed: 5,
        });
        let part = partition_model(&dnn, 4, PartitionScheme::Block, 1);
        let plan = CommPlan::build(&dnn, &part);
        let inputs = generate_inputs(64, &InputSpec::scaled(16, 2));
        (env, dnn, part, plan, inputs)
    }

    #[test]
    fn staged_worker_artifacts_roundtrip() {
        let (env, dnn, part, plan, inputs) = setup();
        stage_partitioned_model(&env, "m1", &dnn, &part, &plan);
        stage_inputs(&env, "i1", &inputs, Some(&part));
        let platform = FaasPlatform::new(env, ComputeModel::default());
        for m in 0..4u32 {
            let part = part.clone();
            let plan = plan.clone();
            let inputs = inputs.clone();
            let (art, _) = platform
                .invoke(
                    FunctionConfig::worker("w", 4096),
                    VirtualTime::ZERO,
                    move |ctx| {
                        let art = load_worker_artifacts(ctx, "m1", 4, m, 3)?;
                        let share = load_input_share(ctx, "i1", 4, m)?;
                        assert_eq!(art.owned, part.owned(m));
                        assert_eq!(art.weights.len(), 3);
                        assert_eq!(art.send.len(), 3);
                        assert_eq!(art.send[0], plan.layer(0).send[m as usize]);
                        assert_eq!(art.recv[2], plan.layer(2).recv[m as usize]);
                        assert_eq!(share, inputs.extract(part.owned(m)));
                        assert!(art.n_gets >= 5);
                        assert!(art.mem_bytes > 0);
                        Ok(art.n_gets)
                    },
                )
                .join()
                .expect("load ok");
            assert!(art >= 6);
        }
    }

    #[test]
    fn staged_full_model_roundtrip() {
        let (env, dnn, _part, _plan, inputs) = setup();
        stage_full_model(&env, "m1", &dnn);
        stage_inputs(&env, "i1", &inputs, None);
        let platform = FaasPlatform::new(env, ComputeModel::default());
        let l0 = dnn.layer(0).clone();
        let (got, _) = platform
            .invoke(
                FunctionConfig::worker("w", 10_240),
                VirtualTime::ZERO,
                move |ctx| {
                    let (layers, gets, _mem) = load_full_model(ctx, "m1", 3)?;
                    assert_eq!(layers.len(), 3);
                    assert_eq!(layers[0], l0);
                    let _ = &inputs;
                    Ok(gets)
                },
            )
            .join()
            .expect("load ok");
        assert_eq!(got, 3);
    }

    #[test]
    fn serial_load_of_oversized_model_oomk() {
        let (env, dnn, _part, _plan, inputs) = setup();
        stage_full_model(&env, "m1", &dnn);
        stage_inputs(&env, "i1", &inputs, None);
        let platform = FaasPlatform::new(env, ComputeModel::default());
        // 128 MB box, but track_alloc counts real artifact bytes plus the
        // oversized claim below via a synthetic large model is overkill —
        // instead assert the mechanism: preallocate nearly all memory.
        let res = platform
            .invoke(
                FunctionConfig::worker("w", 128),
                VirtualTime::ZERO,
                move |ctx| {
                    ctx.track_alloc(128 * 1024 * 1024);
                    let _ = load_full_model(ctx, "m1", 3)?;
                    let _ = &inputs;
                    Ok(())
                },
            )
            .join();
        assert!(matches!(res, Err(FaasError::OutOfMemory { .. })));
    }

    #[test]
    fn missing_artifacts_error_cleanly() {
        let (env, ..) = setup();
        let platform = FaasPlatform::new(env, ComputeModel::default());
        let res = platform
            .invoke(
                FunctionConfig::worker("w", 1024),
                VirtualTime::ZERO,
                |ctx| load_worker_artifacts(ctx, "ghost", 4, 0, 3).map(|_| ()),
            )
            .join();
        assert!(matches!(res, Err(FaasError::Comm(_))));
    }
}
