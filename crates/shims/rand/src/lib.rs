//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! The build environment has no registry access, so this workspace vendors
//! the minimal API surface it uses: `rngs::StdRng`, `SeedableRng`
//! (`seed_from_u64`), `Rng::gen_range` over integer/float ranges, and
//! `seq::SliceRandom::shuffle`. The generator is splitmix64-fed
//! xoshiro256++ — fast, well distributed, and deterministic per seed
//! (the workspace relies on seeds for reproducibility, not on matching the
//! upstream crate's exact stream).

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sampling from a range, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans this workspace draws.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform value of a primitive type (`bool`, ints, unit floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Types drawable with [`Rng::gen`].
pub trait Standard {
    /// Builds a value from 64 uniform random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        bits as u32
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix cannot
            // produce it from any seed, but stay defensive.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), mirroring rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_and_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(
            (300..700).contains(&trues),
            "bool should be roughly fair, got {trues}"
        );
    }
}
