//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no registry access, so this workspace vendors
//! the minimal API surface it actually uses — `Mutex`, `RwLock` and
//! `Condvar` with parking_lot's poison-free signatures — implemented over
//! `std::sync`. Poisoned locks are recovered transparently (a panicked
//! holder is a test failure, not a reason to wedge every other thread).

use std::fmt;
use std::sync::TryLockError;
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's `lock() -> guard` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so [`Condvar`]
/// can temporarily take ownership of the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `wait_for(&mut guard, dur)` API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Blocks on the condvar for at most `timeout`, releasing `guard` while
    /// waiting and reacquiring it before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, WaitTimeoutResult(r.timed_out())),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, WaitTimeoutResult(r.timed_out()))
            }
        };
        guard.inner = Some(std_guard);
        res
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// A reader-writer lock with parking_lot's `read()`/`write()` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut guard = m.lock();
            while !*guard {
                c.wait_for(&mut guard, Duration::from_millis(50));
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().expect("waiter finishes");
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
