//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of criterion its benches use: `Criterion`,
//! `benchmark_group` (with `sample_size` / `throughput`),
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! There is no statistical analysis: each benchmark is warmed up briefly,
//! timed over `sample_size` batches, and the mean/min per-iteration times
//! are printed. Use it for relative comparisons, not publication numbers.
//! Benches must set `harness = false` (they do in this workspace).

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared workload size, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, first calibrating the per-sample iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for ~10 ms per sample, capped for slow routines.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 100_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_secs_f64() / bencher.iters_per_sample as f64;
    let mean = bencher.samples.iter().map(per_iter).sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .map(per_iter)
        .fold(f64::INFINITY, f64::min);
    let mut line = format!(
        "{label:<40} mean {:>10}  min {:>10}",
        fmt_duration(Duration::from_secs_f64(mean)),
        fmt_duration(Duration::from_secs_f64(min))
    );
    if let Some(t) = throughput {
        let rate = match t {
            Throughput::Bytes(b) => format!("{:.1} MiB/s", b as f64 / mean / (1 << 20) as f64),
            Throughput::Elements(e) => format!("{:.2} Melem/s", e as f64 / mean / 1e6),
        };
        line.push_str(&format!("  {rate:>14}"));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label());
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        report(&label, &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: 10,
        };
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert!(
            runs >= 4,
            "warmup + 3 samples should run the routine, got {runs}"
        );
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g2");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(128));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn ids_display() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
