//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of proptest it uses: the `proptest!` macro, `ProptestConfig`,
//! `Strategy` with `prop_map`/`prop_filter`, range/tuple/`any` strategies,
//! the `collection` module (`vec`, `btree_map`, `btree_set`), a simple
//! character-class string strategy (`"[a-z]{1,8}"`), and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: sampling is
//! **deterministic** (seeded from the test name, so CI failures reproduce
//! locally without a persistence file), and failing cases are **not
//! shrunk** — the panic message carries the case number instead.

use std::ops::Range;

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
    /// Maximum rejected (filtered / assumed-away) cases tolerated.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic generator used for strategy sampling (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f` (regenerating up to an attempt cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Character-class string strategy: supports the `"[a-z]{1,8}"` pattern
/// shape (one class, one repetition count or range) plus plain literals.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[x-y…]{m,n}` / `[x-y…]{m}` / a bare literal. Returns the
/// candidate characters and the length bounds.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    if !pattern.starts_with('[') {
        // Bare literal: generate it verbatim.
        let chars: Vec<char> = pattern.chars().collect();
        let n = chars.len();
        return Some((chars, n, n)).filter(|_| n > 0);
    }
    let close = pattern.find(']')?;
    let class: Vec<char> = {
        let body: Vec<char> = pattern[1..close].chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                for c in lo..=hi {
                    out.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        out
    };
    if class.is_empty() {
        return None;
    }
    let rest = &pattern[close + 1..];
    if rest.is_empty() {
        return Some((class, 1, 1));
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((class, min, max))
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() * 2.0 - 1.0) * 1e12
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` strategy; key collisions may yield fewer than the drawn
    /// target size (matching upstream's best-effort semantics).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` strategy; the minimum size is enforced where the value
    /// space allows it.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            // Push toward the minimum if duplicates starved the set.
            let mut extra = 0usize;
            while out.len() < self.size.min && extra < 100_000 {
                out.insert(self.element.generate(rng));
                extra += 1;
            }
            assert!(
                out.len() >= self.size.min,
                "btree_set strategy could not reach minimum size {}",
                self.size.min
            );
            out
        }
    }
}

// Re-exports so `use proptest::prelude::*` provides the expected names.
pub use collection::SizeRange;

/// The glob-import module mirroring upstream.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn __new_test_rng(name: &str) -> TestRng {
    TestRng::from_name(name)
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The `proptest!` test-block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::__new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest {} failed at case {}/{}:\n{}",
                               stringify!($name), case + 1, config.cases, msg);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_class_pattern, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u32..9), &mut rng);
            assert!((5..9).contains(&v));
            let f = Strategy::generate(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn class_pattern_parsing() {
        let (chars, min, max) = parse_class_pattern("[a-z]{1,8}").expect("parses");
        assert_eq!(chars.len(), 26);
        assert_eq!((min, max), (1, 8));
        let (chars, min, max) = parse_class_pattern("[0-9a-f]{4}").expect("parses");
        assert_eq!(chars.len(), 16);
        assert_eq!((min, max), (4, 4));
        assert!(parse_class_pattern("[]{1,2}").is_none());
    }

    #[test]
    fn string_strategy_generates_in_class() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::from_name("collections");
        for _ in 0..100 {
            let v = Strategy::generate(&super::collection::vec(any::<u8>(), 0..10), &mut rng);
            assert!(v.len() < 10);
            let s = Strategy::generate(&super::collection::btree_set(0u32..512, 1..20), &mut rng);
            assert!(!s.is_empty() && s.len() < 20);
            let m = Strategy::generate(
                &super::collection::btree_map(0u32..100, 0.0f32..1.0, 0..8),
                &mut rng,
            );
            assert!(m.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 100);
        }

        #[test]
        fn combinators_compose(x in (0u32..10).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(x < 20 && x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_reports_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        inner();
    }
}
