//! SNS-like pub-sub topics with filter-policy fan-out.
//!
//! FSD-Inf-Queue publishes message batches to one of several parallel topics
//! (`topic-{m % 10}` in the paper — parallel topics raise aggregate
//! throughput and dodge per-topic API limits). Each topic holds filter-policy
//! subscriptions keyed by the `target` message attribute; delivery of each
//! message is offloaded to the service, which routes it into the matching
//! worker's dedicated queue. Messages whose target has no subscription are
//! silently dropped — exact SNS filter semantics.

use crate::fault::{ApiClass, FaultPlane};
use crate::latency::{Jitter, LatencyModel};
use crate::message::{quota, CommError, Message};
use crate::meter::ServiceMeter;
use crate::queue::SqsQueue;
use crate::time::VClock;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

struct Topic {
    /// Filter policy: `(flow, target)` attributes → subscribed queue.
    subs: RwLock<HashMap<(u64, u32), Arc<SqsQueue>>>,
}

/// The pub-sub service: a fixed set of pre-created topics (the paper
/// pre-creates all communication resources to keep them off the inference
/// critical path — they carry no idle cost).
pub struct PubSub {
    topics: Vec<Topic>,
    meter: Arc<ServiceMeter>,
    latency: LatencyModel,
    jitter: Arc<Jitter>,
    faults: Arc<FaultPlane>,
}

impl PubSub {
    pub(crate) fn new(
        n_topics: usize,
        meter: Arc<ServiceMeter>,
        latency: LatencyModel,
        jitter: Arc<Jitter>,
        faults: Arc<FaultPlane>,
    ) -> PubSub {
        let topics = (0..n_topics.max(1))
            .map(|_| Topic {
                subs: RwLock::new(HashMap::new()),
            })
            .collect();
        PubSub {
            topics,
            meter,
            latency,
            jitter,
            faults,
        }
    }

    /// Number of parallel topics.
    pub fn n_topics(&self) -> usize {
        self.topics.len()
    }

    /// Subscribes `queue` to `topic` with a filter policy matching messages
    /// whose `(flow, target)` attributes equal the given pair. Flows scope
    /// concurrent inference requests onto the same shared topics without
    /// cross-delivery.
    pub fn subscribe(
        &self,
        topic: usize,
        flow: u64,
        target: u32,
        queue: Arc<SqsQueue>,
    ) -> Result<(), CommError> {
        let t = self
            .topics
            .get(topic)
            .ok_or(CommError::NoSuchTopic { topic })?;
        t.subs.write().insert((flow, target), queue);
        Ok(())
    }

    /// Removes the `(flow, target)` filter-policy subscription from `topic`
    /// (request teardown). Unknown subscriptions are ignored.
    pub fn unsubscribe(&self, topic: usize, flow: u64, target: u32) -> Result<(), CommError> {
        let t = self
            .topics
            .get(topic)
            .ok_or(CommError::NoSuchTopic { topic })?;
        t.subs.write().remove(&(flow, target));
        Ok(())
    }

    /// Number of live subscriptions on `topic` (diagnostics/tests).
    pub fn subscription_count(&self, topic: usize) -> usize {
        self.topics.get(topic).map_or(0, |t| t.subs.read().len())
    }

    /// One `PublishBatch` call: validates quotas, advances the caller's
    /// clock by the publish round trip, bills `ceil(total/64 KiB)` requests,
    /// and fan-outs each message to its target's queue with the topic→queue
    /// delivery delay.
    ///
    /// Returns the number of billed requests.
    pub fn publish_batch(
        &self,
        topic: usize,
        clock: &mut VClock,
        messages: Vec<Message>,
    ) -> Result<u64, CommError> {
        let t = self
            .topics
            .get(topic)
            .ok_or(CommError::NoSuchTopic { topic })?;
        if messages.len() > quota::MAX_BATCH_MESSAGES {
            return Err(CommError::TooManyMessages {
                got: messages.len(),
            });
        }
        let total: usize = messages.iter().map(|m| m.len()).sum();
        if total > quota::MAX_PUBLISH_BYTES {
            return Err(CommError::PayloadTooLarge { bytes: total });
        }
        // Billed in 64 KiB increments, minimum one request per batch.
        let billed = (total.div_ceil(quota::BILLING_INCREMENT)).max(1) as u64;
        // Injected publish failure: the API call is billed and takes the
        // full round trip (AWS bills failed requests), but nothing is
        // delivered — the batch is all-or-nothing, so a retry republishes
        // it whole and cannot double-deliver.
        if let Some(kind) = self.faults.check(
            ApiClass::TopicPublish,
            clock.flow(),
            clock.now(),
            &topic_name(topic),
        ) {
            self.meter.record_sns_publish(clock.flow(), billed);
            clock.advance_micros(self.jitter.apply(self.latency.sns_publish_total_us(total)));
            return Err(kind.to_error(format!("sns:publish {}", topic_name(topic))));
        }
        self.meter.record_sns_publish(clock.flow(), billed);
        clock.advance_micros(self.jitter.apply(self.latency.sns_publish_total_us(total)));

        // Service-side distribution: each message becomes visible in its
        // target queue after an independent delivery delay.
        let subs = t.subs.read();
        for msg in messages {
            if let Some(queue) = subs.get(&(msg.attributes.flow, msg.attributes.target)) {
                let mut delay = self.jitter.apply(self.latency.sns_delivery_us);
                // Injected delivery fault: SNS retries queue delivery
                // internally, so the message is *delayed*, never lost — a
                // lost delivery after a successful publish would be
                // unrecoverable for the receiver (no failed call to retry).
                if self
                    .faults
                    .check(
                        ApiClass::QueueSend,
                        msg.attributes.flow,
                        clock.now(),
                        queue.name(),
                    )
                    .is_some()
                {
                    delay += self.latency.sns_delivery_us.max(1) * 4;
                }
                let available_at = clock.now().plus_micros(delay);
                // Delivery is attributed to the *message's* flow — the
                // service-side fan-out belongs to the request that published
                // the message, whatever clock carried the API call.
                self.meter
                    .record_sns_delivery(msg.attributes.flow, msg.len() as u64);
                queue.enqueue(available_at, msg);
            }
            // No matching filter policy: dropped, exactly like SNS.
        }
        Ok(billed)
    }
}

/// Canonical topic naming: `topic-{m}` as in the paper's `topic-{m % 10}`
/// parallel-topic scheme. Topics are addressed by index everywhere; this is
/// the single place the display form is assembled (diagnostics, errors).
pub fn topic_name(topic: usize) -> String {
    format!("topic-{topic}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageAttributes;
    use crate::queue::PollKind;
    use crate::time::VirtualTime;

    fn plane() -> Arc<FaultPlane> {
        Arc::new(FaultPlane::disabled())
    }

    fn setup(n_topics: usize) -> (PubSub, Arc<SqsQueue>, Arc<SqsQueue>) {
        let meter = Arc::new(ServiceMeter::new());
        let jitter = Arc::new(Jitter::new(3, 0.0));
        let lat = LatencyModel::deterministic();
        let ps = PubSub::new(n_topics, meter.clone(), lat, jitter.clone(), plane());
        let q0 = Arc::new(SqsQueue::new(
            "q0".into(),
            meter.clone(),
            lat,
            jitter.clone(),
            plane(),
        ));
        let q1 = Arc::new(SqsQueue::new("q1".into(), meter, lat, jitter, plane()));
        ps.subscribe(0, 0, 0, q0.clone()).expect("subscribe q0");
        ps.subscribe(0, 0, 1, q1.clone()).expect("subscribe q1");
        (ps, q0, q1)
    }

    fn msg(target: u32, body: &[u8]) -> Message {
        Message {
            attributes: MessageAttributes {
                flow: 0,
                source: 9,
                target,
                layer: 0,
                total_chunks: 1,
                batch: 0,
            },
            body: body.to_vec(),
        }
    }

    fn msg_in_flow(flow: u64, target: u32, body: &[u8]) -> Message {
        let mut m = msg(target, body);
        m.attributes.flow = flow;
        m
    }

    #[test]
    fn fan_out_routes_by_target_attribute() {
        let (ps, q0, q1) = setup(1);
        let mut clock = VClock::default();
        ps.publish_batch(
            0,
            &mut clock,
            vec![msg(0, b"to-0"), msg(1, b"to-1"), msg(0, b"to-0b")],
        )
        .expect("publish");
        assert_eq!(q0.visible_len(), 2);
        assert_eq!(q1.visible_len(), 1);
        let mut c = VClock::starting_at(VirtualTime::from_secs_f64(10.0));
        let got = q1.poll(&mut c, PollKind::Long { wait_secs: 1.0 });
        assert_eq!(got[0].message.body, b"to-1");
    }

    #[test]
    fn unmatched_target_is_dropped() {
        let (ps, q0, q1) = setup(1);
        let mut clock = VClock::default();
        ps.publish_batch(0, &mut clock, vec![msg(7, b"nobody")])
            .expect("publish");
        assert_eq!(q0.visible_len(), 0);
        assert_eq!(q1.visible_len(), 0);
    }

    #[test]
    fn rejects_oversized_batches() {
        let (ps, _q0, _q1) = setup(1);
        let mut clock = VClock::default();
        let too_many: Vec<Message> = (0..11).map(|_| msg(0, b"x")).collect();
        assert_eq!(
            ps.publish_batch(0, &mut clock, too_many),
            Err(CommError::TooManyMessages { got: 11 })
        );
        let huge = vec![msg(0, &vec![0u8; 300 * 1024])];
        assert!(matches!(
            ps.publish_batch(0, &mut clock, huge),
            Err(CommError::PayloadTooLarge { .. })
        ));
        // Two messages summing over the cap also rejected (batch-level cap).
        let pair = vec![
            msg(0, &vec![0u8; 200 * 1024]),
            msg(1, &vec![0u8; 100 * 1024]),
        ];
        assert!(matches!(
            ps.publish_batch(0, &mut clock, pair),
            Err(CommError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn billing_in_64k_increments() {
        let meter = Arc::new(ServiceMeter::new());
        let jitter = Arc::new(Jitter::new(3, 0.0));
        let lat = LatencyModel::deterministic();
        let ps = PubSub::new(1, meter.clone(), lat, jitter.clone(), plane());
        let q = Arc::new(SqsQueue::new(
            "q".into(),
            meter.clone(),
            lat,
            jitter,
            plane(),
        ));
        ps.subscribe(0, 0, 0, q).expect("subscribe");
        let mut clock = VClock::default();
        // Tiny batch: 1 billed request.
        let b = ps
            .publish_batch(0, &mut clock, vec![msg(0, b"small")])
            .expect("ok");
        assert_eq!(b, 1);
        // 256 KiB across 4 messages: billed as 4 (the paper's example).
        let batch: Vec<Message> = (0..4).map(|_| msg(0, &vec![0u8; 64 * 1024])).collect();
        let b = ps.publish_batch(0, &mut clock, batch).expect("ok");
        assert_eq!(b, 4);
        // 64 KiB + 1 byte: 2 requests.
        let b = ps
            .publish_batch(0, &mut clock, vec![msg(0, &vec![0u8; 64 * 1024 + 1])])
            .expect("ok");
        assert_eq!(b, 2);
        assert_eq!(meter.snapshot().sns_publish_requests, 7);
        assert_eq!(meter.snapshot().sns_publish_batches, 3);
    }

    #[test]
    fn delivery_bytes_metered_only_for_matches() {
        let (ps, _q0, _q1) = setup(1);
        let meter_before = ps.meter.snapshot();
        let mut clock = VClock::default();
        ps.publish_batch(0, &mut clock, vec![msg(0, b"match"), msg(9, b"drop-me")])
            .expect("publish");
        let d = ps.meter.snapshot().since(&meter_before);
        assert_eq!(d.sns_delivered_bytes, 5);
    }

    #[test]
    fn delivery_stamp_is_after_publish() {
        let (ps, q0, _q1) = setup(1);
        let mut clock = VClock::default();
        ps.publish_batch(0, &mut clock, vec![msg(0, b"timed")])
            .expect("publish");
        let publish_done = clock.now();
        let mut c = VClock::default();
        let got = q0.poll(&mut c, PollKind::Long { wait_secs: 1.0 });
        assert!(
            got[0].available_at > publish_done,
            "delivery must add topic→queue delay"
        );
    }

    #[test]
    fn bad_topic_is_an_error() {
        let (ps, q0, _q1) = setup(2);
        let mut clock = VClock::default();
        assert_eq!(
            ps.publish_batch(5, &mut clock, vec![msg(0, b"x")]),
            Err(CommError::NoSuchTopic { topic: 5 })
        );
        assert!(matches!(
            ps.subscribe(9, 0, 0, q0),
            Err(CommError::NoSuchTopic { topic: 9 })
        ));
    }

    #[test]
    fn flows_are_isolated_on_shared_topics() {
        // Two concurrent requests subscribe the same worker rank (target 0)
        // on the same topic; each flow's messages reach only its own queue.
        let meter = Arc::new(ServiceMeter::new());
        let jitter = Arc::new(Jitter::new(3, 0.0));
        let lat = LatencyModel::deterministic();
        let ps = PubSub::new(1, meter.clone(), lat, jitter.clone(), plane());
        let qa = Arc::new(SqsQueue::new(
            "flow-a".into(),
            meter.clone(),
            lat,
            jitter.clone(),
            plane(),
        ));
        let qb = Arc::new(SqsQueue::new("flow-b".into(), meter, lat, jitter, plane()));
        ps.subscribe(0, 1, 0, qa.clone()).expect("subscribe flow 1");
        ps.subscribe(0, 2, 0, qb.clone()).expect("subscribe flow 2");
        let mut clock = VClock::default();
        ps.publish_batch(0, &mut clock, vec![msg_in_flow(1, 0, b"for-a")])
            .expect("publish");
        ps.publish_batch(0, &mut clock, vec![msg_in_flow(2, 0, b"for-b")])
            .expect("publish");
        assert_eq!(qa.visible_len(), 1);
        assert_eq!(qb.visible_len(), 1);
        let mut c = VClock::starting_at(VirtualTime::from_secs_f64(1.0));
        assert_eq!(
            qa.poll(&mut c, PollKind::Long { wait_secs: 0.1 })[0]
                .message
                .body,
            b"for-a"
        );
        assert_eq!(
            qb.poll(&mut c, PollKind::Long { wait_secs: 0.1 })[0]
                .message
                .body,
            b"for-b"
        );
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let (ps, q0, _q1) = setup(1);
        let mut clock = VClock::default();
        ps.publish_batch(0, &mut clock, vec![msg(0, b"first")])
            .expect("publish");
        assert_eq!(q0.visible_len(), 1);
        assert_eq!(ps.subscription_count(0), 2);
        ps.unsubscribe(0, 0, 0).expect("unsubscribe");
        assert_eq!(ps.subscription_count(0), 1);
        ps.publish_batch(0, &mut clock, vec![msg(0, b"second")])
            .expect("publish");
        assert_eq!(
            q0.visible_len(),
            1,
            "post-unsubscribe message must be dropped"
        );
    }
}
