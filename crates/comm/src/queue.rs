//! SQS-like message queues with long/short polling.
//!
//! Each FSD-Inference worker owns a dedicated queue (one queue per consumer
//! avoids consumer-side filtering entirely — Section III-A). Semantics
//! modeled after SQS:
//!
//! * `ReceiveMessage` returns at most 10 messages per call;
//! * **long polling** (`W > 0`) visits "all servers": every visible message
//!   is eligible, and an empty response costs the full wait `W`;
//! * **short polling** (`W = 0`) samples a subset of servers: each visible
//!   message is seen with fixed probability, so polls can return
//!   empty-handed even when messages exist (the behaviour the paper's
//!   analysis found strictly worse);
//! * received messages become *in flight* until deleted; a failure-injection
//!   hook re-queues them, modeling visibility-timeout expiry.

use crate::fault::{ApiClass, FaultPlane};
use crate::latency::{Jitter, LatencyModel};
use crate::message::{quota, Message, QueuedMessage, ReceivedMessage};
use crate::meter::ServiceMeter;
use crate::time::{VClock, VirtualTime};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a receive call polls the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PollKind {
    /// Long polling with wait parameter `W` (seconds of virtual time).
    Long { wait_secs: f64 },
    /// Short polling: immediate response, may miss visible messages.
    Short,
}

/// Probability that short polling sees any given message (subset-of-servers
/// model). Deterministic per queue seed.
const SHORT_POLL_VISIBILITY: f64 = 0.7;

/// How long a poll blocks in *real* time waiting for producers before
/// returning empty. Real time is never load-bearing — this only prevents
/// busy-spinning while producer threads catch up.
const REAL_WAIT: Duration = Duration::from_millis(2);

/// Real-time grace used by [`SqsQueue::receive_wait`]: producers that take
/// longer than this in *real* time cause a billed empty long poll, which is
/// harmless (the algorithm just polls again) but keeps stuck runs moving
/// toward their virtual timeout.
const REAL_WAIT_LONG: Duration = Duration::from_millis(150);

/// Cap on consecutive injected receive/delete failures modeled inside one
/// [`SqsQueue::settle_receives`] round. Bounds the settle loop even under
/// a pathological 100% fault rate; in that regime the visibility timeout
/// would expire and redeliver the batch anyway, which is exactly what the
/// capped re-settle models.
const MAX_SETTLE_RETRIES: u32 = 8;

struct QueueInner {
    visible: VecDeque<QueuedMessage>,
    in_flight: HashMap<u64, QueuedMessage>,
}

/// A single simulated queue.
pub struct SqsQueue {
    name: String,
    inner: Mutex<QueueInner>,
    cond: Condvar,
    next_handle: AtomicU64,
    meter: Arc<ServiceMeter>,
    latency: LatencyModel,
    jitter: Arc<Jitter>,
    faults: Arc<FaultPlane>,
}

impl SqsQueue {
    /// Creates a queue bound to an environment's meter/latency/jitter.
    pub(crate) fn new(
        name: String,
        meter: Arc<ServiceMeter>,
        latency: LatencyModel,
        jitter: Arc<Jitter>,
        faults: Arc<FaultPlane>,
    ) -> SqsQueue {
        SqsQueue {
            name,
            inner: Mutex::new(QueueInner {
                visible: VecDeque::new(),
                in_flight: HashMap::new(),
            }),
            cond: Condvar::new(),
            next_handle: AtomicU64::new(1),
            meter,
            latency,
            jitter,
            faults,
        }
    }

    /// Queue name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueues a message stamped with its virtual availability time.
    /// Called by the pub-sub fan-out (and directly by tests).
    pub fn enqueue(&self, available_at: VirtualTime, message: Message) {
        let mut inner = self.inner.lock();
        inner.visible.push_back(QueuedMessage {
            available_at,
            message,
        });
        drop(inner);
        self.cond.notify_all();
    }

    /// Number of currently visible messages (diagnostics/tests).
    pub fn visible_len(&self) -> usize {
        self.inner.lock().visible.len()
    }

    /// Number of in-flight (received, undeleted) messages.
    pub fn in_flight_len(&self) -> usize {
        self.inner.lock().in_flight.len()
    }

    /// One `ReceiveMessage` call. Advances `clock` by the poll round trip
    /// (plus the wait `W` when a long poll comes back empty) and joins the
    /// clock against the returned messages' availability stamps.
    pub fn poll(&self, clock: &mut VClock, kind: PollKind) -> Vec<ReceivedMessage> {
        let mut inner = self.inner.lock();
        if inner.visible.is_empty() {
            if let PollKind::Long { .. } = kind {
                // Block briefly in real time so producer threads can run;
                // virtual cost is accounted below regardless.
                self.cond.wait_for(&mut inner, REAL_WAIT);
            }
        }
        let mut out = Vec::new();
        let mut taken_bytes = 0usize;
        let mut kept: VecDeque<QueuedMessage> = VecDeque::new();
        while let Some(qm) = inner.visible.pop_front() {
            if out.len() == quota::MAX_BATCH_MESSAGES {
                kept.push_back(qm);
                continue;
            }
            let seen = match kind {
                PollKind::Long { .. } => true,
                // Deterministic subset-of-servers sampling.
                PollKind::Short => self.jitter.unit() < SHORT_POLL_VISIBILITY,
            };
            if seen {
                let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
                taken_bytes += qm.message.len();
                inner.in_flight.insert(
                    handle,
                    QueuedMessage {
                        available_at: qm.available_at,
                        message: qm.message.clone(),
                    },
                );
                out.push(ReceivedMessage {
                    handle,
                    available_at: qm.available_at,
                    message: qm.message,
                });
            } else {
                kept.push_back(qm);
            }
        }
        inner.visible = kept;
        drop(inner);

        self.meter
            .record_sqs_call(clock.flow(), out.len() as u64, out.is_empty());
        clock.advance_micros(
            self.jitter
                .apply(self.latency.sqs_poll_total_us(taken_bytes)),
        );
        if out.is_empty() {
            if let PollKind::Long { wait_secs } = kind {
                clock.advance_micros(VirtualTime::from_secs_f64(wait_secs).as_micros());
            }
        } else {
            let latest = out
                .iter()
                .map(|m| m.available_at)
                .max()
                .expect("non-empty poll result");
            clock.observe(latest);
        }
        out
    }

    /// The FSI receive primitive: blocks (briefly, in real time) until
    /// messages are visible, then returns up to 10 — billing the number of
    /// long-poll rounds the consumer *would* have issued while waiting in
    /// virtual time: `max(1, ceil(virtual_gap / W))` calls, where
    /// `virtual_gap` is how far ahead of the consumer's clock the earliest
    /// returned message was stamped. This decouples the billed call count
    /// `Q` from real-thread scheduling, keeping the cost model reproducible.
    ///
    /// Returns empty only when no producer showed up within the real-time
    /// grace period — in that case one empty long poll is billed and the
    /// clock advances by the full wait `W` (exactly AWS semantics), letting
    /// the caller re-check its timeout budget.
    pub fn receive_wait(&self, clock: &mut VClock, wait_secs: f64) -> (Vec<ReceivedMessage>, u64) {
        let wait_us = VirtualTime::from_secs_f64(wait_secs).as_micros().max(1);
        let mut inner = self.inner.lock();
        if inner.visible.is_empty() {
            // Real-time grace for producer threads; not billed by itself.
            let deadline = std::time::Instant::now() + REAL_WAIT_LONG;
            while inner.visible.is_empty() {
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    break;
                }
                self.cond.wait_for(&mut inner, timeout);
            }
        }
        if inner.visible.is_empty() {
            drop(inner);
            self.meter.record_sqs_call(clock.flow(), 0, true);
            clock.advance_micros(self.jitter.apply(self.latency.sqs_poll_us));
            clock.advance_micros(wait_us);
            return (Vec::new(), 1);
        }
        let mut out = Vec::new();
        let mut taken_bytes = 0usize;
        while out.len() < quota::MAX_BATCH_MESSAGES {
            let Some(qm) = inner.visible.pop_front() else {
                break;
            };
            let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
            taken_bytes += qm.message.len();
            inner.in_flight.insert(
                handle,
                QueuedMessage {
                    available_at: qm.available_at,
                    message: qm.message.clone(),
                },
            );
            out.push(ReceivedMessage {
                handle,
                available_at: qm.available_at,
                message: qm.message,
            });
        }
        drop(inner);
        // Bill the virtual long-poll rounds spent waiting for the earliest
        // returned message, then the round that returned data.
        let earliest = out.iter().map(|m| m.available_at).min().expect("non-empty");
        let gap = earliest.as_micros().saturating_sub(clock.now().as_micros());
        let rounds = 1 + gap / wait_us;
        for _ in 0..rounds - 1 {
            self.meter.record_sqs_call(clock.flow(), 0, true);
        }
        self.meter
            .record_sqs_call(clock.flow(), out.len() as u64, false);
        clock.advance_micros(
            self.jitter
                .apply(self.latency.sqs_poll_total_us(taken_bytes)),
        );
        let latest = out.iter().map(|m| m.available_at).max().expect("non-empty");
        clock.observe(latest);
        (out, rounds)
    }

    /// Raw destructive take for the deterministic channel receive path:
    /// blocks briefly in *real* time for producers, then removes and
    /// returns up to `max` visible messages — **no billing, no clock
    /// movement**. The caller later reconstructs the billed long-poll
    /// sequence from the returned availability stamps with
    /// [`SqsQueue::settle_receives`], which is what decouples billing and
    /// timing from real-thread batching entirely.
    pub fn take_visible(&self, max: usize) -> Vec<ReceivedMessage> {
        let mut inner = self.inner.lock();
        if inner.visible.is_empty() {
            let deadline = std::time::Instant::now() + REAL_WAIT_LONG;
            while inner.visible.is_empty() {
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    break;
                }
                self.cond.wait_for(&mut inner, timeout);
            }
        }
        let mut out = Vec::new();
        while out.len() < max {
            let Some(qm) = inner.visible.pop_front() else {
                break;
            };
            let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
            out.push(ReceivedMessage {
                handle,
                available_at: qm.available_at,
                message: qm.message,
            });
        }
        out
    }

    /// Bills one empty long poll (timeout after the full wait `W`) —
    /// the liveness escape hatch of the deterministic receive path when a
    /// producer has really not shown up within the real-time grace: the
    /// consumer's virtual clock keeps moving toward its timeout budget.
    pub fn empty_poll(&self, clock: &mut VClock, wait_secs: f64) {
        self.meter.record_sqs_call(clock.flow(), 0, true);
        clock.advance_micros(self.jitter.apply(self.latency.sqs_poll_us));
        clock.advance_micros(VirtualTime::from_secs_f64(wait_secs).as_micros().max(1));
    }

    /// Reconstructs — deterministically, from virtual stamps alone — the
    /// long-poll sequence a consumer starting at `clock` with wait `W`
    /// would have issued to collect messages with the given
    /// `(availability stamp, body bytes)` set, billing every receive
    /// (including empty timeout rounds while a stamp is still in the
    /// virtual future) and one `DeleteMessageBatch` per productive round,
    /// and advancing the clock through the whole sequence. Returns the
    /// number of billed SQS calls.
    ///
    /// Because the stamp set of a request's layer is a pure function of
    /// the workload, so is everything this bills — regardless of how real
    /// threads happened to batch the physical arrivals.
    pub fn settle_receives(
        &self,
        clock: &mut VClock,
        wait_secs: f64,
        taken: &[(VirtualTime, usize)],
    ) -> u64 {
        let wait_us = VirtualTime::from_secs_f64(wait_secs).as_micros().max(1);
        let mut msgs: Vec<(VirtualTime, usize)> = taken.to_vec();
        msgs.sort_unstable();
        let mut calls = 0u64;
        let mut i = 0usize;
        while i < msgs.len() {
            let next = msgs[i].0;
            if next.as_micros() > clock.now().as_micros().saturating_add(wait_us) {
                // The poll would have timed out empty before this message
                // became visible.
                self.meter.record_sqs_call(clock.flow(), 0, true);
                calls += 1;
                clock.advance_micros(self.jitter.apply(self.latency.sqs_poll_us));
                clock.advance_micros(wait_us);
                continue;
            }
            // Long polling returns as soon as the earliest message lands;
            // the round takes everything visible at that instant (≤ 10).
            clock.observe(next);
            // Injected receive failure: the `ReceiveMessage` round trip
            // is billed but returns nothing; the messages stay governed
            // by the visibility machinery and the next round re-settles
            // them — retries here are *never* a blind re-call.
            let mut retries = 0u32;
            while retries < MAX_SETTLE_RETRIES
                && self
                    .faults
                    .check(
                        ApiClass::QueueReceive,
                        clock.flow(),
                        clock.now(),
                        &self.name,
                    )
                    .is_some()
            {
                self.meter.record_sqs_call(clock.flow(), 0, true);
                calls += 1;
                clock.advance_micros(self.jitter.apply(self.latency.sqs_poll_us));
                retries += 1;
            }
            let mut batch_bytes = 0usize;
            let mut n = 0u64;
            while i < msgs.len() && msgs[i].0 <= clock.now() && n < quota::MAX_BATCH_MESSAGES as u64
            {
                batch_bytes += msgs[i].1;
                n += 1;
                i += 1;
            }
            self.meter.record_sqs_call(clock.flow(), n, false);
            calls += 1;
            clock.advance_micros(
                self.jitter
                    .apply(self.latency.sqs_poll_total_us(batch_bytes)),
            );
            // Injected delete failure: the `DeleteMessageBatch` is billed
            // and retried with the same receipt handles (idempotent).
            let mut retries = 0u32;
            while retries < MAX_SETTLE_RETRIES
                && self
                    .faults
                    .check(ApiClass::QueueDelete, clock.flow(), clock.now(), &self.name)
                    .is_some()
            {
                self.meter.record_sqs_call(clock.flow(), 0, false);
                calls += 1;
                clock.advance_micros(self.jitter.apply(self.latency.sqs_delete_us));
                retries += 1;
            }
            // Algorithm 1 line 15: delete the polled batch.
            self.meter.record_sqs_call(clock.flow(), 0, false);
            calls += 1;
            clock.advance_micros(self.jitter.apply(self.latency.sqs_delete_us));
        }
        calls
    }

    /// One `DeleteMessageBatch` call for up to 10 receipt handles.
    pub fn delete_batch(&self, clock: &mut VClock, handles: &[u64]) {
        assert!(
            handles.len() <= quota::MAX_BATCH_MESSAGES,
            "delete batch too large"
        );
        let mut inner = self.inner.lock();
        for h in handles {
            inner.in_flight.remove(h);
        }
        drop(inner);
        self.meter.record_sqs_call(clock.flow(), 0, false);
        clock.advance_micros(self.jitter.apply(self.latency.sqs_delete_us));
    }

    /// Failure injection: every in-flight message's visibility timeout
    /// "expires" and it returns to the queue (as after a consumer crash).
    pub fn requeue_in_flight(&self) {
        let mut inner = self.inner.lock();
        let handles: Vec<u64> = inner.in_flight.keys().copied().collect();
        for h in handles {
            let qm = inner.in_flight.remove(&h).expect("handle just listed");
            inner.visible.push_back(qm);
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// Drops all queue state (between benchmark repetitions).
    pub fn purge(&self) {
        let mut inner = self.inner.lock();
        inner.visible.clear();
        inner.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageAttributes;

    fn queue() -> SqsQueue {
        SqsQueue::new(
            "q-test".into(),
            Arc::new(ServiceMeter::new()),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(1, 0.0)),
            Arc::new(FaultPlane::disabled()),
        )
    }

    fn msg(source: u32, body: &[u8]) -> Message {
        Message {
            attributes: MessageAttributes {
                flow: 0,
                source,
                target: 0,
                layer: 0,
                total_chunks: 1,
                batch: 0,
            },
            body: body.to_vec(),
        }
    }

    #[test]
    fn poll_returns_enqueued_messages_and_advances_clock() {
        let q = queue();
        q.enqueue(VirtualTime::from_micros(500), msg(1, b"hello"));
        let mut clock = VClock::default();
        let got = q.poll(&mut clock, PollKind::Long { wait_secs: 1.0 });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].message.body, b"hello");
        // Clock advanced by poll RTT and joined to the availability stamp.
        assert!(clock.now().as_micros() >= 8_000);
    }

    #[test]
    fn poll_joins_clock_to_future_message_stamp() {
        let q = queue();
        q.enqueue(VirtualTime::from_secs_f64(5.0), msg(1, b"late"));
        let mut clock = VClock::default();
        q.poll(&mut clock, PollKind::Long { wait_secs: 2.0 });
        assert!(
            clock.now() >= VirtualTime::from_secs_f64(5.0),
            "clock not pulled forward"
        );
    }

    #[test]
    fn empty_long_poll_costs_the_wait() {
        let q = queue();
        let mut clock = VClock::default();
        let got = q.poll(&mut clock, PollKind::Long { wait_secs: 3.0 });
        assert!(got.is_empty());
        assert!(clock.now() >= VirtualTime::from_secs_f64(3.0));
    }

    #[test]
    fn empty_short_poll_returns_immediately() {
        let q = queue();
        let mut clock = VClock::default();
        let got = q.poll(&mut clock, PollKind::Short);
        assert!(got.is_empty());
        assert!(clock.now() < VirtualTime::from_secs_f64(0.5));
    }

    #[test]
    fn poll_caps_at_ten_messages() {
        let q = queue();
        for i in 0..25 {
            q.enqueue(VirtualTime::ZERO, msg(i, b"x"));
        }
        let mut clock = VClock::default();
        let got = q.poll(&mut clock, PollKind::Long { wait_secs: 1.0 });
        assert_eq!(got.len(), 10);
        assert_eq!(q.visible_len(), 15);
        assert_eq!(q.in_flight_len(), 10);
    }

    #[test]
    fn delete_batch_removes_in_flight() {
        let q = queue();
        for i in 0..5 {
            q.enqueue(VirtualTime::ZERO, msg(i, b"x"));
        }
        let mut clock = VClock::default();
        let got = q.poll(&mut clock, PollKind::Long { wait_secs: 1.0 });
        let handles: Vec<u64> = got.iter().map(|m| m.handle).collect();
        q.delete_batch(&mut clock, &handles);
        assert_eq!(q.in_flight_len(), 0);
        assert_eq!(q.visible_len(), 0);
    }

    #[test]
    fn requeue_in_flight_redelivers() {
        let q = queue();
        q.enqueue(VirtualTime::ZERO, msg(1, b"again"));
        let mut clock = VClock::default();
        let got = q.poll(&mut clock, PollKind::Long { wait_secs: 1.0 });
        assert_eq!(got.len(), 1);
        q.requeue_in_flight();
        let got2 = q.poll(&mut clock, PollKind::Long { wait_secs: 1.0 });
        assert_eq!(got2.len(), 1);
        assert_eq!(got2[0].message.body, b"again");
        // A fresh receipt handle is issued on redelivery.
        assert_ne!(got[0].handle, got2[0].handle);
    }

    #[test]
    fn meter_counts_polls_and_empties() {
        let meter = Arc::new(ServiceMeter::new());
        let q = SqsQueue::new(
            "q".into(),
            meter.clone(),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(1, 0.0)),
            Arc::new(FaultPlane::disabled()),
        );
        let mut clock = VClock::default();
        q.poll(&mut clock, PollKind::Long { wait_secs: 0.1 });
        q.enqueue(VirtualTime::ZERO, msg(0, b"x"));
        let got = q.poll(&mut clock, PollKind::Long { wait_secs: 0.1 });
        q.delete_batch(&mut clock, &[got[0].handle]);
        let s = meter.snapshot();
        assert_eq!(s.sqs_api_calls, 3);
        assert_eq!(s.sqs_empty_polls, 1);
        assert_eq!(s.sqs_messages, 1);
    }

    #[test]
    fn blocked_long_poll_wakes_on_enqueue() {
        let q = Arc::new(queue());
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            let mut clock = VClock::default();
            // Poll until the message arrives (bounded by the test harness).
            for _ in 0..10_000 {
                let got = q2.poll(&mut clock, PollKind::Long { wait_secs: 0.5 });
                if !got.is_empty() {
                    return got[0].message.body.clone();
                }
            }
            Vec::new()
        });
        std::thread::sleep(Duration::from_millis(5));
        q.enqueue(VirtualTime::from_micros(10), msg(3, b"wake"));
        assert_eq!(t.join().expect("join"), b"wake");
    }

    #[test]
    fn receive_wait_bills_virtual_rounds_for_future_stamps() {
        let meter = Arc::new(ServiceMeter::new());
        let q = SqsQueue::new(
            "q".into(),
            meter.clone(),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(1, 0.0)),
            Arc::new(FaultPlane::disabled()),
        );
        // Message stamped 5s into the consumer's future; W = 2s → consumer
        // would have issued 2 empty polls + 1 successful one.
        q.enqueue(VirtualTime::from_secs_f64(5.0), msg(1, b"later"));
        let mut clock = VClock::default();
        let (got, rounds) = q.receive_wait(&mut clock, 2.0);
        assert_eq!(got.len(), 1);
        assert_eq!(rounds, 3);
        let s = meter.snapshot();
        assert_eq!(s.sqs_api_calls, 3, "expected 2 empty rounds + 1 delivery");
        assert_eq!(s.sqs_empty_polls, 2);
        assert!(clock.now() >= VirtualTime::from_secs_f64(5.0));
    }

    #[test]
    fn receive_wait_single_round_for_ready_messages() {
        let meter = Arc::new(ServiceMeter::new());
        let q = SqsQueue::new(
            "q".into(),
            meter.clone(),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(1, 0.0)),
            Arc::new(FaultPlane::disabled()),
        );
        q.enqueue(VirtualTime::ZERO, msg(1, b"now"));
        let mut clock = VClock::starting_at(VirtualTime::from_secs_f64(1.0));
        let (got, rounds) = q.receive_wait(&mut clock, 2.0);
        assert_eq!(got.len(), 1);
        assert_eq!(rounds, 1);
        assert_eq!(meter.snapshot().sqs_api_calls, 1);
    }

    #[test]
    fn receive_wait_empty_bills_one_and_advances_w() {
        let meter = Arc::new(ServiceMeter::new());
        let q = SqsQueue::new(
            "q".into(),
            meter.clone(),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(1, 0.0)),
            Arc::new(FaultPlane::disabled()),
        );
        let mut clock = VClock::default();
        let (got, rounds) = q.receive_wait(&mut clock, 2.0);
        assert!(got.is_empty());
        assert_eq!(rounds, 1);
        assert_eq!(meter.snapshot().sqs_api_calls, 1);
        assert_eq!(meter.snapshot().sqs_empty_polls, 1);
        assert!(clock.now() >= VirtualTime::from_secs_f64(2.0));
    }

    #[test]
    fn purge_clears_everything() {
        let q = queue();
        q.enqueue(VirtualTime::ZERO, msg(0, b"x"));
        let mut clock = VClock::default();
        q.poll(&mut clock, PollKind::Long { wait_secs: 0.1 });
        q.enqueue(VirtualTime::ZERO, msg(1, b"y"));
        q.purge();
        assert_eq!(q.visible_len(), 0);
        assert_eq!(q.in_flight_len(), 0);
    }
}
