//! Billing meters — the simulation's "AWS Cost & Usage report".
//!
//! Every simulated service increments these counters as API events happen,
//! *independently* of the cost model's predictions (Section IV of the
//! paper). Cost-model validation (§VI-F) compares the two.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters of billable service events.
#[derive(Debug, Default)]
pub struct ServiceMeter {
    /// SNS billed publish requests (64 KiB increments, min 1 per batch).
    sns_publish_requests: AtomicU64,
    /// Raw SNS `PublishBatch` API calls (un-billed unit, for diagnostics).
    sns_publish_batches: AtomicU64,
    /// Bytes delivered from topics into queues (`Z` in the cost model).
    sns_delivered_bytes: AtomicU64,
    /// SQS API calls: receives + deletes (`Q` in the cost model).
    sqs_api_calls: AtomicU64,
    /// SQS receive calls that returned no messages (long-poll timeouts).
    sqs_empty_polls: AtomicU64,
    /// Messages delivered through queues.
    sqs_messages: AtomicU64,
    /// S3 PUT requests (`V`).
    s3_put_requests: AtomicU64,
    /// S3 GET requests (`R`).
    s3_get_requests: AtomicU64,
    /// S3 LIST requests (`L`).
    s3_list_requests: AtomicU64,
    /// Bytes written to object storage.
    s3_put_bytes: AtomicU64,
    /// Bytes read from object storage.
    s3_get_bytes: AtomicU64,
}

/// A point-in-time copy of the meters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    pub sns_publish_requests: u64,
    pub sns_publish_batches: u64,
    pub sns_delivered_bytes: u64,
    pub sqs_api_calls: u64,
    pub sqs_empty_polls: u64,
    pub sqs_messages: u64,
    pub s3_put_requests: u64,
    pub s3_get_requests: u64,
    pub s3_list_requests: u64,
    pub s3_put_bytes: u64,
    pub s3_get_bytes: u64,
}

impl MeterSnapshot {
    /// Difference `self − earlier`, for windowed measurements.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            sns_publish_requests: self.sns_publish_requests - earlier.sns_publish_requests,
            sns_publish_batches: self.sns_publish_batches - earlier.sns_publish_batches,
            sns_delivered_bytes: self.sns_delivered_bytes - earlier.sns_delivered_bytes,
            sqs_api_calls: self.sqs_api_calls - earlier.sqs_api_calls,
            sqs_empty_polls: self.sqs_empty_polls - earlier.sqs_empty_polls,
            sqs_messages: self.sqs_messages - earlier.sqs_messages,
            s3_put_requests: self.s3_put_requests - earlier.s3_put_requests,
            s3_get_requests: self.s3_get_requests - earlier.s3_get_requests,
            s3_list_requests: self.s3_list_requests - earlier.s3_list_requests,
            s3_put_bytes: self.s3_put_bytes - earlier.s3_put_bytes,
            s3_get_bytes: self.s3_get_bytes - earlier.s3_get_bytes,
        }
    }
}

impl ServiceMeter {
    /// Fresh meter, all zeros.
    pub fn new() -> ServiceMeter {
        ServiceMeter::default()
    }

    pub(crate) fn record_sns_publish(&self, billed_requests: u64) {
        self.sns_publish_batches.fetch_add(1, Ordering::Relaxed);
        self.sns_publish_requests
            .fetch_add(billed_requests, Ordering::Relaxed);
    }

    pub(crate) fn record_sns_delivery(&self, bytes: u64) {
        self.sns_delivered_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_sqs_call(&self, messages: u64, empty: bool) {
        self.sqs_api_calls.fetch_add(1, Ordering::Relaxed);
        self.sqs_messages.fetch_add(messages, Ordering::Relaxed);
        if empty {
            self.sqs_empty_polls.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_s3_put(&self, bytes: u64) {
        self.s3_put_requests.fetch_add(1, Ordering::Relaxed);
        self.s3_put_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_s3_get(&self, bytes: u64) {
        self.s3_get_requests.fetch_add(1, Ordering::Relaxed);
        self.s3_get_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_s3_list(&self) {
        self.s3_list_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            sns_publish_requests: self.sns_publish_requests.load(Ordering::Relaxed),
            sns_publish_batches: self.sns_publish_batches.load(Ordering::Relaxed),
            sns_delivered_bytes: self.sns_delivered_bytes.load(Ordering::Relaxed),
            sqs_api_calls: self.sqs_api_calls.load(Ordering::Relaxed),
            sqs_empty_polls: self.sqs_empty_polls.load(Ordering::Relaxed),
            sqs_messages: self.sqs_messages.load(Ordering::Relaxed),
            s3_put_requests: self.s3_put_requests.load(Ordering::Relaxed),
            s3_get_requests: self.s3_get_requests.load(Ordering::Relaxed),
            s3_list_requests: self.s3_list_requests.load(Ordering::Relaxed),
            s3_put_bytes: self.s3_put_bytes.load(Ordering::Relaxed),
            s3_get_bytes: self.s3_get_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = ServiceMeter::new();
        m.record_sns_publish(4);
        m.record_sns_publish(1);
        m.record_sns_delivery(1000);
        m.record_sqs_call(10, false);
        m.record_sqs_call(0, true);
        m.record_s3_put(500);
        m.record_s3_get(300);
        m.record_s3_list();
        let s = m.snapshot();
        assert_eq!(s.sns_publish_requests, 5);
        assert_eq!(s.sns_publish_batches, 2);
        assert_eq!(s.sns_delivered_bytes, 1000);
        assert_eq!(s.sqs_api_calls, 2);
        assert_eq!(s.sqs_empty_polls, 1);
        assert_eq!(s.sqs_messages, 10);
        assert_eq!(s.s3_put_requests, 1);
        assert_eq!(s.s3_get_requests, 1);
        assert_eq!(s.s3_list_requests, 1);
        assert_eq!(s.s3_put_bytes, 500);
        assert_eq!(s.s3_get_bytes, 300);
    }

    #[test]
    fn since_computes_window() {
        let m = ServiceMeter::new();
        m.record_s3_put(100);
        let a = m.snapshot();
        m.record_s3_put(250);
        m.record_s3_list();
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.s3_put_requests, 1);
        assert_eq!(d.s3_put_bytes, 250);
        assert_eq!(d.s3_list_requests, 1);
        assert_eq!(d.sqs_api_calls, 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = std::sync::Arc::new(ServiceMeter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_sqs_call(1, false);
                }
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(m.snapshot().sqs_api_calls, 8000);
        assert_eq!(m.snapshot().sqs_messages, 8000);
    }
}
