//! Billing meters — the simulation's "AWS Cost & Usage report".
//!
//! Every simulated service increments these counters as API events happen,
//! *independently* of the cost model's predictions (Section IV of the
//! paper). Cost-model validation (§VI-F) compares the two.
//!
//! Counters exist at two granularities:
//!
//! * **global** — everything billed in the region since it came up;
//! * **per flow** — the same events bucketed by the request flow id that
//!   caused them (flow `0` is "unattributed" and is only counted
//!   globally). Per-flow windows are what make `InferenceReport::comm`
//!   request-local under concurrent load: two overlapping requests each
//!   see exactly their own traffic instead of a shared global delta.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters of billable service events.
#[derive(Debug, Default)]
pub struct ServiceMeter {
    /// SNS billed publish requests (64 KiB increments, min 1 per batch).
    sns_publish_requests: AtomicU64,
    /// Raw SNS `PublishBatch` API calls (un-billed unit, for diagnostics).
    sns_publish_batches: AtomicU64,
    /// Bytes delivered from topics into queues (`Z` in the cost model).
    sns_delivered_bytes: AtomicU64,
    /// SQS API calls: receives + deletes (`Q` in the cost model).
    sqs_api_calls: AtomicU64,
    /// SQS receive calls that returned no messages (long-poll timeouts).
    sqs_empty_polls: AtomicU64,
    /// Messages delivered through queues.
    sqs_messages: AtomicU64,
    /// S3 PUT requests (`V`).
    s3_put_requests: AtomicU64,
    /// S3 GET requests (`R`).
    s3_get_requests: AtomicU64,
    /// S3 LIST requests (`L`).
    s3_list_requests: AtomicU64,
    /// Bytes written to object storage.
    s3_put_bytes: AtomicU64,
    /// Bytes read from object storage.
    s3_get_bytes: AtomicU64,
    /// Direct-exchange punch attempts (successful handshakes).
    direct_punches: AtomicU64,
    /// Direct-exchange punch attempts that failed.
    direct_punch_failures: AtomicU64,
    /// Frames delivered over punched direct connections.
    direct_messages: AtomicU64,
    /// Bytes moved over punched direct connections (un-billed — direct's
    /// whole point is zero per-message API cost; tracked for validation).
    direct_bytes: AtomicU64,
    /// Weight-stream frames forwarded down the launch cascade.
    weight_frames: AtomicU64,
    /// Weight bytes forwarded down the launch cascade (un-billed in
    /// dollars — intra-flow transfer like direct — but attributed to the
    /// *forwarding* flow so chaos replays and per-flow windows stay exact).
    weight_bytes: AtomicU64,
    /// The same events bucketed per request flow (flow 0 excluded).
    flows: Mutex<HashMap<u64, MeterSnapshot>>,
}

/// A point-in-time copy of the meters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    pub sns_publish_requests: u64,
    pub sns_publish_batches: u64,
    pub sns_delivered_bytes: u64,
    pub sqs_api_calls: u64,
    pub sqs_empty_polls: u64,
    pub sqs_messages: u64,
    pub s3_put_requests: u64,
    pub s3_get_requests: u64,
    pub s3_list_requests: u64,
    pub s3_put_bytes: u64,
    pub s3_get_bytes: u64,
    pub direct_punches: u64,
    pub direct_punch_failures: u64,
    pub direct_messages: u64,
    pub direct_bytes: u64,
    pub weight_frames: u64,
    pub weight_bytes: u64,
}

impl MeterSnapshot {
    /// Difference `self − earlier`, for windowed measurements.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            sns_publish_requests: self.sns_publish_requests - earlier.sns_publish_requests,
            sns_publish_batches: self.sns_publish_batches - earlier.sns_publish_batches,
            sns_delivered_bytes: self.sns_delivered_bytes - earlier.sns_delivered_bytes,
            sqs_api_calls: self.sqs_api_calls - earlier.sqs_api_calls,
            sqs_empty_polls: self.sqs_empty_polls - earlier.sqs_empty_polls,
            sqs_messages: self.sqs_messages - earlier.sqs_messages,
            s3_put_requests: self.s3_put_requests - earlier.s3_put_requests,
            s3_get_requests: self.s3_get_requests - earlier.s3_get_requests,
            s3_list_requests: self.s3_list_requests - earlier.s3_list_requests,
            s3_put_bytes: self.s3_put_bytes - earlier.s3_put_bytes,
            s3_get_bytes: self.s3_get_bytes - earlier.s3_get_bytes,
            direct_punches: self.direct_punches - earlier.direct_punches,
            direct_punch_failures: self.direct_punch_failures - earlier.direct_punch_failures,
            direct_messages: self.direct_messages - earlier.direct_messages,
            direct_bytes: self.direct_bytes - earlier.direct_bytes,
            weight_frames: self.weight_frames - earlier.weight_frames,
            weight_bytes: self.weight_bytes - earlier.weight_bytes,
        }
    }

    /// Element-wise sum (aggregating per-flow windows).
    pub fn plus(&self, other: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            sns_publish_requests: self.sns_publish_requests + other.sns_publish_requests,
            sns_publish_batches: self.sns_publish_batches + other.sns_publish_batches,
            sns_delivered_bytes: self.sns_delivered_bytes + other.sns_delivered_bytes,
            sqs_api_calls: self.sqs_api_calls + other.sqs_api_calls,
            sqs_empty_polls: self.sqs_empty_polls + other.sqs_empty_polls,
            sqs_messages: self.sqs_messages + other.sqs_messages,
            s3_put_requests: self.s3_put_requests + other.s3_put_requests,
            s3_get_requests: self.s3_get_requests + other.s3_get_requests,
            s3_list_requests: self.s3_list_requests + other.s3_list_requests,
            s3_put_bytes: self.s3_put_bytes + other.s3_put_bytes,
            s3_get_bytes: self.s3_get_bytes + other.s3_get_bytes,
            direct_punches: self.direct_punches + other.direct_punches,
            direct_punch_failures: self.direct_punch_failures + other.direct_punch_failures,
            direct_messages: self.direct_messages + other.direct_messages,
            direct_bytes: self.direct_bytes + other.direct_bytes,
            weight_frames: self.weight_frames + other.weight_frames,
            weight_bytes: self.weight_bytes + other.weight_bytes,
        }
    }
}

impl ServiceMeter {
    /// Fresh meter, all zeros.
    pub fn new() -> ServiceMeter {
        ServiceMeter::default()
    }

    /// Applies `f` to the flow's bucket (creating it), unless `flow` is 0.
    fn with_flow(&self, flow: u64, f: impl FnOnce(&mut MeterSnapshot)) {
        if flow == 0 {
            return;
        }
        f(self.flows.lock().entry(flow).or_default());
    }

    pub(crate) fn record_sns_publish(&self, flow: u64, billed_requests: u64) {
        self.sns_publish_batches.fetch_add(1, Ordering::Relaxed);
        self.sns_publish_requests
            .fetch_add(billed_requests, Ordering::Relaxed);
        self.with_flow(flow, |s| {
            s.sns_publish_batches += 1;
            s.sns_publish_requests += billed_requests;
        });
    }

    pub(crate) fn record_sns_delivery(&self, flow: u64, bytes: u64) {
        self.sns_delivered_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.with_flow(flow, |s| s.sns_delivered_bytes += bytes);
    }

    pub(crate) fn record_sqs_call(&self, flow: u64, messages: u64, empty: bool) {
        self.sqs_api_calls.fetch_add(1, Ordering::Relaxed);
        self.sqs_messages.fetch_add(messages, Ordering::Relaxed);
        if empty {
            self.sqs_empty_polls.fetch_add(1, Ordering::Relaxed);
        }
        self.with_flow(flow, |s| {
            s.sqs_api_calls += 1;
            s.sqs_messages += messages;
            if empty {
                s.sqs_empty_polls += 1;
            }
        });
    }

    pub(crate) fn record_s3_put(&self, flow: u64, bytes: u64) {
        self.s3_put_requests.fetch_add(1, Ordering::Relaxed);
        self.s3_put_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.with_flow(flow, |s| {
            s.s3_put_requests += 1;
            s.s3_put_bytes += bytes;
        });
    }

    pub(crate) fn record_s3_get(&self, flow: u64, bytes: u64) {
        self.s3_get_requests.fetch_add(1, Ordering::Relaxed);
        self.s3_get_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.with_flow(flow, |s| {
            s.s3_get_requests += 1;
            s.s3_get_bytes += bytes;
        });
    }

    pub(crate) fn record_s3_list(&self, flow: u64) {
        self.s3_list_requests.fetch_add(1, Ordering::Relaxed);
        self.with_flow(flow, |s| s.s3_list_requests += 1);
    }

    pub(crate) fn record_direct_punch(&self, flow: u64, ok: bool) {
        if ok {
            self.direct_punches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.direct_punch_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.with_flow(flow, |s| {
            if ok {
                s.direct_punches += 1;
            } else {
                s.direct_punch_failures += 1;
            }
        });
    }

    pub(crate) fn record_direct_send(&self, flow: u64, messages: u64, bytes: u64) {
        self.direct_messages.fetch_add(messages, Ordering::Relaxed);
        self.direct_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.with_flow(flow, |s| {
            s.direct_messages += messages;
            s.direct_bytes += bytes;
        });
    }

    pub(crate) fn record_weight_send(&self, flow: u64, frames: u64, bytes: u64) {
        self.weight_frames.fetch_add(frames, Ordering::Relaxed);
        self.weight_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.with_flow(flow, |s| {
            s.weight_frames += frames;
            s.weight_bytes += bytes;
        });
    }

    /// Copies the current global counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            sns_publish_requests: self.sns_publish_requests.load(Ordering::Relaxed),
            sns_publish_batches: self.sns_publish_batches.load(Ordering::Relaxed),
            sns_delivered_bytes: self.sns_delivered_bytes.load(Ordering::Relaxed),
            sqs_api_calls: self.sqs_api_calls.load(Ordering::Relaxed),
            sqs_empty_polls: self.sqs_empty_polls.load(Ordering::Relaxed),
            sqs_messages: self.sqs_messages.load(Ordering::Relaxed),
            s3_put_requests: self.s3_put_requests.load(Ordering::Relaxed),
            s3_get_requests: self.s3_get_requests.load(Ordering::Relaxed),
            s3_list_requests: self.s3_list_requests.load(Ordering::Relaxed),
            s3_put_bytes: self.s3_put_bytes.load(Ordering::Relaxed),
            s3_get_bytes: self.s3_get_bytes.load(Ordering::Relaxed),
            direct_punches: self.direct_punches.load(Ordering::Relaxed),
            direct_punch_failures: self.direct_punch_failures.load(Ordering::Relaxed),
            direct_messages: self.direct_messages.load(Ordering::Relaxed),
            direct_bytes: self.direct_bytes.load(Ordering::Relaxed),
            weight_frames: self.weight_frames.load(Ordering::Relaxed),
            weight_bytes: self.weight_bytes.load(Ordering::Relaxed),
        }
    }

    /// The events attributed to `flow` so far (zeros for unknown flows).
    pub fn flow_snapshot(&self, flow: u64) -> MeterSnapshot {
        self.flows.lock().get(&flow).copied().unwrap_or_default()
    }

    /// Removes `flow`'s bucket and returns its final window (request
    /// teardown — a long-lived service must not accrete one bucket per
    /// request ever served).
    pub fn release_flow(&self, flow: u64) -> MeterSnapshot {
        self.flows.lock().remove(&flow).unwrap_or_default()
    }

    /// Number of flows currently holding a bucket (leak checks in tests).
    pub fn tracked_flows(&self) -> usize {
        self.flows.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = ServiceMeter::new();
        m.record_sns_publish(0, 4);
        m.record_sns_publish(0, 1);
        m.record_sns_delivery(0, 1000);
        m.record_sqs_call(0, 10, false);
        m.record_sqs_call(0, 0, true);
        m.record_s3_put(0, 500);
        m.record_s3_get(0, 300);
        m.record_s3_list(0);
        m.record_direct_punch(0, true);
        m.record_direct_punch(0, false);
        m.record_direct_send(0, 3, 900);
        m.record_weight_send(0, 2, 700);
        let s = m.snapshot();
        assert_eq!(s.sns_publish_requests, 5);
        assert_eq!(s.sns_publish_batches, 2);
        assert_eq!(s.sns_delivered_bytes, 1000);
        assert_eq!(s.sqs_api_calls, 2);
        assert_eq!(s.sqs_empty_polls, 1);
        assert_eq!(s.sqs_messages, 10);
        assert_eq!(s.s3_put_requests, 1);
        assert_eq!(s.s3_get_requests, 1);
        assert_eq!(s.s3_list_requests, 1);
        assert_eq!(s.s3_put_bytes, 500);
        assert_eq!(s.s3_get_bytes, 300);
        assert_eq!(s.direct_punches, 1);
        assert_eq!(s.direct_punch_failures, 1);
        assert_eq!(s.direct_messages, 3);
        assert_eq!(s.direct_bytes, 900);
        assert_eq!(s.weight_frames, 2);
        assert_eq!(s.weight_bytes, 700);
        assert_eq!(m.tracked_flows(), 0, "flow 0 is never bucketed");
    }

    #[test]
    fn since_computes_window() {
        let m = ServiceMeter::new();
        m.record_s3_put(0, 100);
        let a = m.snapshot();
        m.record_s3_put(0, 250);
        m.record_s3_list(0);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.s3_put_requests, 1);
        assert_eq!(d.s3_put_bytes, 250);
        assert_eq!(d.s3_list_requests, 1);
        assert_eq!(d.sqs_api_calls, 0);
    }

    #[test]
    fn flows_are_bucketed_disjointly() {
        let m = ServiceMeter::new();
        m.record_s3_put(1, 100);
        m.record_s3_put(2, 40);
        m.record_s3_put(2, 60);
        m.record_sqs_call(1, 3, false);
        m.record_sns_publish(0, 2); // unattributed: global only
        let f1 = m.flow_snapshot(1);
        let f2 = m.flow_snapshot(2);
        assert_eq!(f1.s3_put_requests, 1);
        assert_eq!(f1.s3_put_bytes, 100);
        assert_eq!(f1.sqs_api_calls, 1);
        assert_eq!(f2.s3_put_requests, 2);
        assert_eq!(f2.s3_put_bytes, 100);
        assert_eq!(f2.sqs_api_calls, 0);
        // Per-flow windows are disjoint and sum (with unattributed events)
        // to the global counters.
        let global = m.snapshot();
        let summed = f1.plus(&f2);
        assert_eq!(summed.s3_put_requests, global.s3_put_requests);
        assert_eq!(summed.s3_put_bytes, global.s3_put_bytes);
        assert_eq!(summed.sqs_api_calls, global.sqs_api_calls);
        assert_eq!(global.sns_publish_requests, 2);
        assert_eq!(summed.sns_publish_requests, 0);
    }

    #[test]
    fn release_flow_returns_and_clears() {
        let m = ServiceMeter::new();
        m.record_s3_get(9, 123);
        assert_eq!(m.tracked_flows(), 1);
        let window = m.release_flow(9);
        assert_eq!(window.s3_get_requests, 1);
        assert_eq!(window.s3_get_bytes, 123);
        assert_eq!(m.tracked_flows(), 0);
        assert_eq!(m.flow_snapshot(9), MeterSnapshot::default());
        assert_eq!(m.release_flow(9), MeterSnapshot::default());
        // The global counters keep the released flow's history.
        assert_eq!(m.snapshot().s3_get_requests, 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = std::sync::Arc::new(ServiceMeter::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_sqs_call(t % 2 + 1, 1, false);
                }
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(m.snapshot().sqs_api_calls, 8000);
        assert_eq!(m.snapshot().sqs_messages, 8000);
        assert_eq!(m.flow_snapshot(1).sqs_api_calls, 4000);
        assert_eq!(m.flow_snapshot(2).sqs_api_calls, 4000);
    }
}
