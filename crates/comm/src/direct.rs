//! FMI-style direct exchange between workers.
//!
//! FSD-Inf-Direct moves intermediate results over NAT-punched TCP
//! connections between function instances (FMI: "Fast and Cheap Message
//! Passing for Serverless Functions") instead of going through a managed
//! service. The economics are the inverse of SNS/SQS and S3: connection
//! *establishment* costs a hole-punching handshake through a rendezvous
//! (and can fail — functions sit behind NAT), but once punched, frames
//! move at in-region TCP latency with **zero per-message API cost**.
//! Connections are directed — each sender hole-punches its own outbound
//! half — so handshake billing and fault draws depend only on the
//! sender's own clock.
//!
//! The punch is the only step the fault plane intercepts
//! ([`ApiClass::DirectPunch`]); established connections never drop
//! in-model. Frames are stamped with the sender's virtual clock; the
//! receive path mirrors the object store's deterministic split — a free
//! real-time-grace [`DirectNet::fetch`], then [`DirectNet::settle_recv`]
//! joins the receiver's clock against the stamps — so billing (here:
//! byte/message accounting only) and timing never depend on real-thread
//! scheduling.

use crate::fault::{ApiClass, FaultPlane};
use crate::latency::{Jitter, LatencyModel};
use crate::message::CommError;
use crate::meter::ServiceMeter;
use crate::time::{VClock, VirtualTime};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Real-time grace used by [`DirectNet::fetch`] before giving up and
/// letting the caller take the (virtual-time) idle-wait escape hatch.
const REAL_WAIT_LONG: Duration = Duration::from_millis(150);

/// One frame delivered over a punched connection.
#[derive(Clone)]
pub struct DirectFrame {
    /// Sending worker id.
    pub src: usize,
    /// Frame body.
    pub body: Arc<[u8]>,
    /// Virtual instant the frame lands in the receiver's mailbox.
    pub available_at: VirtualTime,
}

#[derive(Default)]
struct NetState {
    /// Punched outbound connections, keyed `(flow, src, dst)`. Directed:
    /// each endpoint runs its *own* hole punch through the rendezvous, so
    /// who pays a handshake (and which clock the fault plane draws
    /// against) is a pure function of the sender's lane — never of which
    /// of two concurrent workers reached a shared pair first.
    connections: HashSet<(u64, usize, usize)>,
    /// Undrained frames, keyed `(flow, receiver, tag)`. Frames persist
    /// until [`DirectNet::close_flow`] — receivers track how many they
    /// have consumed, exactly like object-channel prefix scans.
    mailboxes: HashMap<(u64, usize, String), Vec<DirectFrame>>,
}

/// The direct-exchange fabric of one region: punched connections and
/// per-(flow, receiver, tag) mailboxes.
pub struct DirectNet {
    state: Mutex<NetState>,
    cond: Condvar,
    meter: Arc<ServiceMeter>,
    latency: LatencyModel,
    jitter: Arc<Jitter>,
    faults: Arc<FaultPlane>,
}

impl DirectNet {
    pub(crate) fn new(
        meter: Arc<ServiceMeter>,
        latency: LatencyModel,
        jitter: Arc<Jitter>,
        faults: Arc<FaultPlane>,
    ) -> DirectNet {
        DirectNet {
            state: Mutex::new(NetState::default()),
            cond: Condvar::new(),
            meter,
            latency,
            jitter,
            faults,
        }
    }

    /// Establishes `src`'s outbound punched connection to `dst` for the
    /// caller's flow (idempotent; an existing connection is free). The
    /// handshake round trip elapses whether or not it succeeds — the
    /// rendezvous relay does its work either way — and failed punches are
    /// what the fault plane injects under [`ApiClass::DirectPunch`].
    pub fn punch(&self, clock: &mut VClock, src: usize, dst: usize) -> Result<(), CommError> {
        let flow = clock.flow();
        let key = (flow, src, dst);
        if self.state.lock().connections.contains(&key) {
            return Ok(());
        }
        let resource = format!("f{flow}/{src}-{dst}");
        let dur = self.jitter.apply(self.latency.direct_punch_us);
        if let Some(kind) = self
            .faults
            .check(ApiClass::DirectPunch, flow, clock.now(), &resource)
        {
            self.meter.record_direct_punch(flow, false);
            clock.advance_micros(dur);
            return Err(kind.to_error(format!("direct:punch {resource}")));
        }
        clock.advance_micros(dur);
        self.meter.record_direct_punch(flow, true);
        self.state.lock().connections.insert(key);
        Ok(())
    }

    /// Whether `src`'s outbound connection to `dst` is punched for `flow`.
    pub fn is_connected(&self, flow: u64, src: usize, dst: usize) -> bool {
        self.state.lock().connections.contains(&(flow, src, dst))
    }

    /// Sends one frame from `src` to `dst` under `tag`, punching the
    /// outbound connection first if needed (the first send in a direction
    /// pays the handshake; a retried send re-attempts the punch). The
    /// frame is stamped with
    /// the sender's clock after the transfer — unlike the managed
    /// services there is no billed API call, only bytes on the wire.
    pub fn send(
        &self,
        clock: &mut VClock,
        src: usize,
        dst: usize,
        tag: &str,
        body: impl Into<Arc<[u8]>>,
    ) -> Result<(), CommError> {
        self.punch(clock, src, dst)?;
        let body = body.into();
        clock.advance_micros(
            self.jitter
                .apply(self.latency.direct_send_total_us(body.len())),
        );
        let flow = clock.flow();
        self.meter.record_direct_send(flow, 1, body.len() as u64);
        let frame = DirectFrame {
            src,
            body,
            available_at: clock.now(),
        };
        self.state
            .lock()
            .mailboxes
            .entry((flow, dst, tag.to_string()))
            .or_default()
            .push(frame);
        self.cond.notify_all();
        Ok(())
    }

    /// Raw mailbox read for the deterministic receive path: blocks briefly
    /// in *real* time while no more than `known` frames sit under
    /// `(flow, dst, tag)`, then returns every frame — **no clock movement,
    /// no visibility filter**. The caller later settles timing from the
    /// stamps with [`DirectNet::settle_recv`].
    pub fn fetch(&self, flow: u64, dst: usize, tag: &str, known: usize) -> Vec<DirectFrame> {
        let key = (flow, dst, tag.to_string());
        let mut state = self.state.lock();
        let grab = |s: &NetState| s.mailboxes.get(&key).cloned().unwrap_or_default();
        let mut found = grab(&state);
        if found.len() <= known {
            let deadline = std::time::Instant::now() + REAL_WAIT_LONG;
            while found.len() <= known {
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    break;
                }
                self.cond.wait_for(&mut state, timeout);
                found = grab(&state);
            }
        }
        found
    }

    /// Joins the receiver's clock against frame stamps: a blocked receiver
    /// wakes when the last frame lands, plus one local round trip of
    /// processing. Nothing is billed — receiving over a punched
    /// connection costs no API call.
    pub fn settle_recv(&self, clock: &mut VClock, stamps: &[VirtualTime]) {
        for s in stamps {
            clock.observe(*s);
        }
        clock.advance_micros(self.jitter.apply(self.latency.direct_latency_us));
    }

    /// The liveness escape hatch when a producer has really not shown up
    /// within the real-time grace: one blocking-receive timeout slice
    /// elapses on the receiver's clock (so `receive_all` walks toward its
    /// deadline), again with no billed call.
    pub fn idle_wait(&self, clock: &mut VClock) {
        clock.advance_micros(self.jitter.apply(self.latency.direct_punch_us / 2));
    }

    /// Tears down everything the flow holds: punched connections and
    /// undrained mailboxes. Returns `(connections, frames)` dropped.
    pub fn close_flow(&self, flow: u64) -> (usize, usize) {
        let mut state = self.state.lock();
        let conns_before = state.connections.len();
        state.connections.retain(|&(f, _, _)| f != flow);
        let conns = conns_before - state.connections.len();
        let mut frames = 0usize;
        state.mailboxes.retain(|&(f, _, _), v| {
            if f == flow {
                frames += v.len();
                false
            } else {
                true
            }
        });
        drop(state);
        self.cond.notify_all();
        (conns, frames)
    }

    /// Live punched connections across all flows (residue audit).
    pub fn connection_count(&self) -> usize {
        self.state.lock().connections.len()
    }

    /// Undrained frames across all flows (residue audit).
    pub fn undrained_frames(&self) -> usize {
        self.state.lock().mailboxes.values().map(Vec::len).sum()
    }

    /// Drops all connections and mailboxes (between benchmark
    /// repetitions; never while a request is in flight).
    pub fn reset(&self) {
        let mut state = self.state.lock();
        state.connections.clear();
        state.mailboxes.clear();
        drop(state);
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, TargetedFault};

    fn net() -> DirectNet {
        DirectNet::new(
            Arc::new(ServiceMeter::new()),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(3, 0.0)),
            Arc::new(FaultPlane::disabled()),
        )
    }

    #[test]
    fn punch_is_billed_once_per_direction_and_idempotent() {
        let n = net();
        let mut clock = VClock::default().with_flow(7);
        n.punch(&mut clock, 2, 5).expect("punch");
        let after_first = clock.now();
        assert_eq!(after_first.as_micros(), n.latency.direct_punch_us);
        assert!(n.is_connected(7, 2, 5));
        // Re-punching the same direction is free…
        n.punch(&mut clock, 2, 5).expect("repunch");
        assert_eq!(clock.now(), after_first);
        assert_eq!(n.meter.snapshot().direct_punches, 1);
        assert_eq!(n.connection_count(), 1);
        // …but the reverse direction is its own outbound hole punch.
        assert!(!n.is_connected(7, 5, 2));
        n.punch(&mut clock, 5, 2).expect("reverse punch");
        assert_eq!(n.meter.snapshot().direct_punches, 2);
        assert_eq!(n.connection_count(), 2);
    }

    #[test]
    fn punch_fault_fails_billed_and_elapsed() {
        let n = DirectNet::new(
            Arc::new(ServiceMeter::new()),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(3, 0.0)),
            Arc::new(FaultPlane::new(Some(FaultPlan::new(1)))),
        );
        n.faults
            .inject(TargetedFault::first(ApiClass::DirectPunch, "f9/"));
        let mut clock = VClock::default().with_flow(9);
        let err = n.punch(&mut clock, 0, 1).expect_err("injected punch fault");
        assert!(err.is_retryable());
        assert_eq!(clock.now().as_micros(), n.latency.direct_punch_us);
        assert_eq!(n.meter.snapshot().direct_punch_failures, 1);
        assert!(!n.is_connected(9, 0, 1));
        // The schedule is one-shot: the retry punches through.
        n.punch(&mut clock, 0, 1).expect("retry succeeds");
        assert!(n.is_connected(9, 0, 1));
    }

    #[test]
    fn send_punches_stamps_and_meters() {
        let n = net();
        let mut clock = VClock::default().with_flow(4);
        n.send(&mut clock, 1, 2, "L0", &b"payload"[..])
            .expect("send");
        let snap = n.meter.snapshot();
        assert_eq!(snap.direct_punches, 1);
        assert_eq!(snap.direct_messages, 1);
        assert_eq!(snap.direct_bytes, 7);
        let frames = n.fetch(4, 2, "L0", 0);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].src, 1);
        assert_eq!(&frames[0].body[..], b"payload");
        assert_eq!(frames[0].available_at, clock.now());
        // A second send in the same direction pays no second punch; the
        // reverse direction pays its own.
        n.send(&mut clock, 1, 2, "L1", &b"x"[..]).expect("send");
        assert_eq!(n.meter.snapshot().direct_punches, 1);
        n.send(&mut clock, 2, 1, "L1", &b"y"[..]).expect("send");
        assert_eq!(n.meter.snapshot().direct_punches, 2);
    }

    #[test]
    fn settle_recv_joins_stamps() {
        let n = net();
        let mut sender = VClock::starting_at(VirtualTime::from_secs_f64(2.0)).with_flow(1);
        n.send(&mut sender, 0, 1, "L0", &b"abc"[..]).expect("send");
        let frames = n.fetch(1, 1, "L0", 0);
        let stamps: Vec<VirtualTime> = frames.iter().map(|f| f.available_at).collect();
        let mut receiver = VClock::default().with_flow(1);
        n.settle_recv(&mut receiver, &stamps);
        assert!(receiver.now() >= sender.now());
        // A receiver already past the stamps only pays the local RTT.
        let mut late = VClock::starting_at(VirtualTime::from_secs_f64(100.0)).with_flow(1);
        n.settle_recv(&mut late, &stamps);
        assert_eq!(
            late.now().as_micros(),
            VirtualTime::from_secs_f64(100.0).as_micros() + n.latency.direct_latency_us
        );
    }

    #[test]
    fn idle_wait_moves_the_clock() {
        let n = net();
        let mut clock = VClock::default();
        n.idle_wait(&mut clock);
        assert!(clock.now() > VirtualTime::ZERO);
    }

    #[test]
    fn fetch_honors_known_and_returns_everything() {
        let n = net();
        let mut clock = VClock::default().with_flow(2);
        n.send(&mut clock, 0, 3, "L5", &b"a"[..]).expect("send");
        n.send(&mut clock, 1, 3, "L5", &b"b"[..]).expect("send");
        // known=2: nothing new — returns after the grace with both frames.
        let frames = n.fetch(2, 3, "L5", 2);
        assert_eq!(frames.len(), 2);
        // Other tags and receivers are isolated.
        assert!(n.fetch(2, 3, "L6", 0).is_empty());
        assert!(n.fetch(2, 4, "L5", 0).is_empty());
    }

    #[test]
    fn concurrent_senders_wake_a_fetching_receiver() {
        let n = Arc::new(net());
        let reader = {
            let n = n.clone();
            std::thread::spawn(move || n.fetch(1, 9, "L0", 1))
        };
        let mut handles = Vec::new();
        for src in 0..2usize {
            let n = n.clone();
            handles.push(std::thread::spawn(move || {
                let mut clock = VClock::default().with_flow(1);
                n.send(&mut clock, src, 9, "L0", &b"z"[..]).expect("send");
            }));
        }
        for h in handles {
            h.join().expect("sender");
        }
        let frames = reader.join().expect("reader");
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn close_flow_drops_only_that_flow() {
        let n = net();
        let mut f1 = VClock::default().with_flow(1);
        let mut f2 = VClock::default().with_flow(2);
        n.send(&mut f1, 0, 1, "L0", &b"a"[..]).expect("send");
        n.send(&mut f2, 0, 1, "L0", &b"b"[..]).expect("send");
        assert_eq!(n.connection_count(), 2);
        assert_eq!(n.undrained_frames(), 2);
        let (conns, frames) = n.close_flow(1);
        assert_eq!((conns, frames), (1, 1));
        assert_eq!(n.connection_count(), 1);
        assert_eq!(n.undrained_frames(), 1);
        assert!(!n.is_connected(1, 0, 1));
        assert!(n.is_connected(2, 0, 1));
        n.reset();
        assert_eq!(n.connection_count() + n.undrained_frames(), 0);
    }
}
