//! Messages and service quotas.

use crate::time::VirtualTime;

/// AWS-documented quotas the paper designs against (Section III-A).
pub mod quota {
    /// Maximum messages per `PublishBatch` / `ReceiveMessage` response.
    pub const MAX_BATCH_MESSAGES: usize = 10;
    /// Maximum total payload bytes per publish batch (also the per-message cap).
    pub const MAX_PUBLISH_BYTES: usize = 256 * 1024;
    /// SNS billing granularity: one billed request per 64 KiB (or part).
    pub const BILLING_INCREMENT: usize = 64 * 1024;
}

/// Attributes carried alongside each message body — the paper attaches the
/// source worker id, the layer, and the total number of byte strings the
/// source will send to this target in this layer (so the receiver knows
/// when a source is complete). The `(flow, target)` pair drives the
/// SNS → SQS filter policy: `flow` isolates concurrent inference requests
/// sharing the region's topics, `target` routes within a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageAttributes {
    /// Request-flow id scoping the filter policy (one per inference run).
    pub flow: u64,
    /// Sending worker id.
    pub source: u32,
    /// Receiving worker id (filter-policy routing key within the flow).
    pub target: u32,
    /// Layer index the payload belongs to.
    pub layer: u32,
    /// Total byte strings `source` ships to `target` in `layer`.
    pub total_chunks: u32,
    /// Inference batch identifier (multi-batch requests).
    pub batch: u32,
}

/// A pub-sub / queue message: attributes plus an opaque byte-string body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub attributes: MessageAttributes,
    pub body: Vec<u8>,
}

impl Message {
    /// Body size in bytes (what quotas and billing look at).
    #[inline]
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

/// A message as it sits in a queue: stamped with the virtual time at which
/// it becomes visible to consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedMessage {
    pub available_at: VirtualTime,
    pub message: Message,
}

/// A message handed to a consumer by a poll, with the receipt handle needed
/// to delete it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedMessage {
    pub handle: u64,
    pub available_at: VirtualTime,
    pub message: Message,
}

/// Errors raised by the simulated communication services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Publish batch exceeds [`quota::MAX_BATCH_MESSAGES`].
    TooManyMessages { got: usize },
    /// Publish batch or single message exceeds [`quota::MAX_PUBLISH_BYTES`].
    PayloadTooLarge { bytes: usize },
    /// Referenced topic was never created.
    NoSuchTopic { topic: usize },
    /// Referenced bucket was never created.
    NoSuchBucket { bucket: String },
    /// GET on a key that does not exist (or is not yet visible).
    NoSuchKey { key: String },
    /// Injected 5xx-class transient service failure; retryable.
    Unavailable { api: String },
    /// Injected 429-class throttle; retryable after backoff.
    Throttled { api: String },
    /// Injected permanent failure (targeted fault schedule); not
    /// retryable.
    Faulted { api: String },
}

impl CommError {
    /// Whether a bounded retry of the same call may succeed. Quota and
    /// missing-resource errors are logic errors — retrying them burns
    /// billed calls for nothing — so only injected transient/throttle
    /// failures qualify.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            CommError::Unavailable { .. } | CommError::Throttled { .. }
        )
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::TooManyMessages { got } => {
                write!(
                    f,
                    "publish batch of {got} messages exceeds {}",
                    quota::MAX_BATCH_MESSAGES
                )
            }
            CommError::PayloadTooLarge { bytes } => {
                write!(
                    f,
                    "payload of {bytes} bytes exceeds {}",
                    quota::MAX_PUBLISH_BYTES
                )
            }
            CommError::NoSuchTopic { topic } => write!(f, "topic {topic} does not exist"),
            CommError::NoSuchBucket { bucket } => write!(f, "bucket {bucket} does not exist"),
            CommError::NoSuchKey { key } => write!(f, "key {key} does not exist"),
            CommError::Unavailable { api } => {
                write!(f, "{api}: service unavailable (injected transient fault)")
            }
            CommError::Throttled { api } => write!(f, "{api}: throttled (injected fault)"),
            CommError::Faulted { api } => write!(f, "{api}: permanent injected fault"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_len_reports_body() {
        let m = Message {
            attributes: MessageAttributes {
                flow: 0,
                source: 0,
                target: 1,
                layer: 2,
                total_chunks: 3,
                batch: 0,
            },
            body: vec![1, 2, 3],
        };
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn errors_display() {
        assert!(CommError::TooManyMessages { got: 11 }
            .to_string()
            .contains("11"));
        assert!(CommError::PayloadTooLarge { bytes: 300_000 }
            .to_string()
            .contains("300000"));
        assert!(CommError::NoSuchKey { key: "a/b".into() }
            .to_string()
            .contains("a/b"));
    }
}
