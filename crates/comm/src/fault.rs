//! Seeded fault injection for the simulated cloud services.
//!
//! Real SQS/SNS/S3/Lambda APIs fail transiently and throttle; the paper's
//! design (and every retry/degradation layer above it) has to survive
//! that. This module models those failures *deterministically*: every
//! injection decision is a pure hash of the plan seed, the API class, the
//! calling flow, the caller's virtual clock, and the resource name — no
//! hidden RNG state — so a chaos run replays bit-identically under the
//! same seed, and a fault-free run draws nothing at all (zero overhead,
//! zero baseline drift).
//!
//! Two surfaces:
//!
//! * a [`FaultPlan`] on `CloudConfig` — `Copy`, per-class transient /
//!   throttle probabilities plus optional burst windows;
//! * runtime [`TargetedFault`] schedules installed on the live
//!   [`FaultPlane`] — "fail the Nth call of this class whose resource
//!   name matches" — for surgical tests (e.g. killing one warm worker).
//!
//! Targeted schedules use a per-entry match counter, so they are meant
//! for sequential test scenarios, not for races between concurrent flows.

use crate::latency::splitmix;
use crate::message::CommError;
use crate::time::VirtualTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The API classes fault injection distinguishes. Each class corresponds
/// to one billed (or, for deletes, lifecycle) cloud operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiClass {
    /// SNS → SQS delivery of a published message into a target queue.
    QueueSend,
    /// SQS `ReceiveMessage` (settled through the visibility machinery).
    QueueReceive,
    /// SQS `DeleteMessageBatch`.
    QueueDelete,
    /// SNS `PublishBatch`.
    TopicPublish,
    /// S3 `PUT`.
    ObjectPut,
    /// S3 `GET`.
    ObjectGet,
    /// S3 `DELETE` (lifecycle cleanup; free and idempotent in-model).
    ObjectDelete,
    /// Lambda `Invoke` — launching a worker instance.
    InstanceLaunch,
    /// Direct-exchange NAT punch / pairwise connection handshake.
    DirectPunch,
    /// Weight-block frame forwarded down the launch cascade (multicast
    /// weight streaming; a fault aborts the stream mid-flight).
    WeightStream,
}

impl ApiClass {
    /// Number of API classes (per-class table width).
    pub const COUNT: usize = 10;

    /// Every class, in index order.
    pub const ALL: [ApiClass; Self::COUNT] = [
        ApiClass::QueueSend,
        ApiClass::QueueReceive,
        ApiClass::QueueDelete,
        ApiClass::TopicPublish,
        ApiClass::ObjectPut,
        ApiClass::ObjectGet,
        ApiClass::ObjectDelete,
        ApiClass::InstanceLaunch,
        ApiClass::DirectPunch,
        ApiClass::WeightStream,
    ];

    /// Dense index for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            ApiClass::QueueSend => "queue-send",
            ApiClass::QueueReceive => "queue-receive",
            ApiClass::QueueDelete => "queue-delete",
            // fsd_lint::allow(raw-channel-name): API-class label, not a topic name.
            ApiClass::TopicPublish => "topic-publish",
            ApiClass::ObjectPut => "object-put",
            ApiClass::ObjectGet => "object-get",
            ApiClass::ObjectDelete => "object-delete",
            ApiClass::InstanceLaunch => "instance-launch",
            ApiClass::DirectPunch => "direct-punch",
            ApiClass::WeightStream => "weight-stream",
        }
    }
}

/// What kind of failure an injection produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// 5xx-class transient service failure — retryable immediately.
    Transient,
    /// 429-class throttle — retryable after backoff.
    Throttle,
    /// Permanent failure (targeted schedules only) — not retryable.
    Permanent,
}

impl FaultKind {
    /// The [`CommError`] an injection of this kind surfaces as.
    pub fn to_error(self, api: impl Into<String>) -> CommError {
        let api = api.into();
        match self {
            FaultKind::Transient => CommError::Unavailable { api },
            FaultKind::Throttle => CommError::Throttled { api },
            FaultKind::Permanent => CommError::Faulted { api },
        }
    }
}

/// Per-class fault probabilities and burst gating.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassFaults {
    /// Per-op probability of a transient failure, `[0, 1]`.
    pub transient: f64,
    /// Per-op probability of a throttle, `[0, 1]` (drawn after transient).
    pub throttle: f64,
    /// Burst period in virtual microseconds; `0` means faults are active
    /// at all times.
    pub burst_period_us: u64,
    /// Active window at the start of each burst period. Outside the
    /// window no probabilistic faults fire for this class.
    pub burst_len_us: u64,
}

impl ClassFaults {
    /// Whether this class can ever inject probabilistically.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.transient > 0.0 || self.throttle > 0.0
    }

    /// Whether the burst gate is open at virtual time `now`.
    #[inline]
    fn burst_open(&self, now: VirtualTime) -> bool {
        self.burst_period_us == 0 || now.as_micros() % self.burst_period_us < self.burst_len_us
    }
}

/// A seeded, per-class fault-injection plan. `Copy` so it rides on
/// `CloudConfig`; runtime-only targeted schedules live on the
/// [`FaultPlane`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision hash chain (independent of the latency
    /// jitter seed so fault schedules can vary while timing stays fixed).
    pub seed: u64,
    /// Per-class settings, indexed by [`ApiClass::index`].
    pub classes: [ClassFaults; ApiClass::COUNT],
}

impl FaultPlan {
    /// An inert plan (no class enabled) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            classes: [ClassFaults::default(); ApiClass::COUNT],
        }
    }

    /// A plan injecting transient failures at `rate` on every class.
    pub fn uniform_transient(seed: u64, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for c in plan.classes.iter_mut() {
            c.transient = rate;
        }
        plan
    }

    /// Replaces one class's settings.
    pub fn with_class(mut self, class: ApiClass, faults: ClassFaults) -> FaultPlan {
        self.classes[class.index()] = faults;
        self
    }

    /// Sets one class's transient-failure probability.
    pub fn with_transient(mut self, class: ApiClass, rate: f64) -> FaultPlan {
        self.classes[class.index()].transient = rate;
        self
    }

    /// Sets one class's throttle probability.
    pub fn with_throttle(mut self, class: ApiClass, rate: f64) -> FaultPlan {
        self.classes[class.index()].throttle = rate;
        self
    }

    /// Gates one class behind a burst window (`len` active out of every
    /// `period` virtual microseconds).
    pub fn with_burst(mut self, class: ApiClass, period_us: u64, len_us: u64) -> FaultPlan {
        self.classes[class.index()].burst_period_us = period_us;
        self.classes[class.index()].burst_len_us = len_us;
        self
    }

    /// Whether any class can inject.
    pub fn is_enabled(&self) -> bool {
        self.classes.iter().any(|c| c.is_enabled())
    }
}

/// A one-shot targeted fault: fail the `nth` call (1-based) of `class`
/// whose resource name contains `resource_contains` (empty matches all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetedFault {
    /// API class to intercept.
    pub class: ApiClass,
    /// Which matching call fails (1-based; `0` is treated as `1`).
    pub nth: u64,
    /// Substring predicate over the resource name (queue name, object
    /// key, topic name, function name). Empty matches every call.
    pub resource_contains: String,
    /// Failure kind the interception produces.
    pub kind: FaultKind,
}

impl TargetedFault {
    /// Fail the first matching call with a transient error.
    pub fn first(class: ApiClass, resource_contains: impl Into<String>) -> TargetedFault {
        TargetedFault {
            class,
            nth: 1,
            resource_contains: resource_contains.into(),
            kind: FaultKind::Transient,
        }
    }

    /// Same schedule, but the injected failure is permanent.
    pub fn permanent(mut self) -> TargetedFault {
        self.kind = FaultKind::Permanent;
        self
    }

    /// Same predicate, but failing the `nth` match instead of the first.
    pub fn nth_match(mut self, nth: u64) -> TargetedFault {
        self.nth = nth;
        self
    }
}

struct TargetedState {
    fault: TargetedFault,
    seen: u64,
    fired: bool,
}

/// Point-in-time fault statistics, per API class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Injection decisions evaluated per class (only counted while a
    /// plan or targeted schedule is armed).
    pub checks: [u64; ApiClass::COUNT],
    /// Faults injected per class.
    pub injected: [u64; ApiClass::COUNT],
}

impl FaultStatsSnapshot {
    /// Total faults injected across all classes.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Faults injected for one class.
    pub fn injected_for(&self, class: ApiClass) -> u64 {
        self.injected[class.index()]
    }
}

/// The live fault-injection plane of one cloud region. Shared (via the
/// `CloudEnv`) by every simulated service; decisions are pure hashes, so
/// concurrent callers never contend on RNG state.
pub struct FaultPlane {
    plan: Option<FaultPlan>,
    targeted: Mutex<Vec<TargetedState>>,
    /// Count of unfired targeted entries — lock-free fast path.
    armed: AtomicUsize,
    checks: [AtomicU64; ApiClass::COUNT],
    injected: [AtomicU64; ApiClass::COUNT],
}

impl FaultPlane {
    /// Builds the plane from an optional plan.
    pub(crate) fn new(plan: Option<FaultPlan>) -> FaultPlane {
        FaultPlane {
            plan: plan.filter(|p| p.is_enabled()),
            targeted: Mutex::new(Vec::new()),
            armed: AtomicUsize::new(0),
            checks: Default::default(),
            injected: Default::default(),
        }
    }

    /// A plane that never injects (standalone service tests).
    #[cfg(test)]
    pub(crate) fn disabled() -> FaultPlane {
        FaultPlane::new(None)
    }

    /// The probabilistic plan, if one is armed.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Whether anything (plan or targeted schedule) can currently inject.
    pub fn is_active(&self) -> bool {
        self.plan.is_some() || self.armed.load(Ordering::Relaxed) > 0
    }

    /// Installs a targeted fault schedule.
    pub fn inject(&self, fault: TargetedFault) {
        self.targeted.lock().push(TargetedState {
            fault,
            seen: 0,
            fired: false,
        });
        self.armed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of installed-but-unfired targeted faults.
    pub fn pending_targets(&self) -> usize {
        self.armed.load(Ordering::Relaxed)
    }

    /// The injection decision for one API call: `class` op by `flow` at
    /// virtual time `now` on `resource`. Pure in (plan seed, class, flow,
    /// now, resource) for the probabilistic path; targeted schedules
    /// consume their match counter. Returns the fault to inject, if any.
    pub fn check(
        &self,
        class: ApiClass,
        flow: u64,
        now: VirtualTime,
        resource: &str,
    ) -> Option<FaultKind> {
        if self.plan.is_none() && self.armed.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let i = class.index();
        self.checks[i].fetch_add(1, Ordering::Relaxed);
        if self.armed.load(Ordering::Relaxed) > 0 {
            let mut targeted = self.targeted.lock();
            for t in targeted.iter_mut() {
                if t.fired || t.fault.class != class {
                    continue;
                }
                if !t.fault.resource_contains.is_empty()
                    && !resource.contains(&t.fault.resource_contains)
                {
                    continue;
                }
                t.seen += 1;
                if t.seen >= t.fault.nth.max(1) {
                    t.fired = true;
                    self.armed.fetch_sub(1, Ordering::Relaxed);
                    self.injected[i].fetch_add(1, Ordering::Relaxed);
                    return Some(t.fault.kind);
                }
            }
        }
        let plan = self.plan.as_ref()?;
        let cf = &plan.classes[i];
        if !cf.is_enabled() || !cf.burst_open(now) {
            return None;
        }
        let u = decision_unit(plan.seed, class, flow, now, resource);
        let kind = if u < cf.transient {
            FaultKind::Transient
        } else if u < cf.transient + cf.throttle {
            FaultKind::Throttle
        } else {
            return None;
        };
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// Current statistics.
    pub fn stats(&self) -> FaultStatsSnapshot {
        let mut snap = FaultStatsSnapshot::default();
        for i in 0..ApiClass::COUNT {
            snap.checks[i] = self.checks[i].load(Ordering::Relaxed);
            snap.injected[i] = self.injected[i].load(Ordering::Relaxed);
        }
        snap
    }
}

/// One step of the splitmix64 finalizer — the repo-wide deterministic
/// hash (also used for retry-backoff and hint jitter outside this crate).
pub fn mix64(z: u64) -> u64 {
    splitmix(z)
}

/// Uniform `[0, 1)` from a 64-bit hash.
pub fn unit_from(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// FNV-1a over the resource name: decorrelates calls issued by different
/// lanes at the *same* virtual instant (parallel PUT/publish fan-outs).
fn resource_salt(resource: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in resource.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The pure decision draw. Retried calls naturally re-draw because every
/// failed attempt bills latency (and backoff) onto the caller's clock, so
/// `now` differs on the next attempt.
fn decision_unit(seed: u64, class: ApiClass, flow: u64, now: VirtualTime, resource: &str) -> f64 {
    let mut z = splitmix(seed ^ 0xD1B5_4A32_D192_ED03);
    z = splitmix(z ^ (class.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = splitmix(z ^ flow.rotate_left(17));
    z = splitmix(z ^ now.as_micros());
    z = splitmix(z ^ resource_salt(resource));
    unit_from(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plane_never_injects_or_counts() {
        let plane = FaultPlane::disabled();
        for class in ApiClass::ALL {
            for t in 0..50 {
                assert_eq!(
                    plane.check(class, 1, VirtualTime::from_micros(t), "r"),
                    None
                );
            }
        }
        assert_eq!(plane.stats().checks.iter().sum::<u64>(), 0);
        assert!(!plane.is_active());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlane::new(Some(FaultPlan::uniform_transient(7, 0.3)));
        let b = FaultPlane::new(Some(FaultPlan::uniform_transient(7, 0.3)));
        for class in ApiClass::ALL {
            for t in 0..200 {
                let now = VirtualTime::from_micros(t * 131);
                assert_eq!(a.check(class, 3, now, "res"), b.check(class, 3, now, "res"));
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected_total() > 0, "rate 0.3 never fired");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plane = FaultPlane::new(Some(
            FaultPlan::new(11).with_transient(ApiClass::ObjectGet, 0.2),
        ));
        let mut hits = 0;
        for t in 0..5000u64 {
            if plane
                .check(
                    ApiClass::ObjectGet,
                    5,
                    VirtualTime::from_micros(t * 997),
                    "k",
                )
                .is_some()
            {
                hits += 1;
            }
        }
        assert!(
            (700..1300).contains(&hits),
            "0.2 rate produced {hits}/5000 hits"
        );
        // Other classes untouched.
        assert_eq!(
            plane.check(ApiClass::ObjectPut, 5, VirtualTime::ZERO, "k"),
            None
        );
    }

    #[test]
    fn distinct_resources_decorrelate_at_the_same_instant() {
        let plane = FaultPlane::new(Some(
            FaultPlan::new(3).with_transient(ApiClass::ObjectPut, 0.5),
        ));
        let now = VirtualTime::from_micros(1000);
        let mut outcomes = std::collections::HashSet::new();
        for k in 0..64 {
            outcomes.insert(
                plane
                    .check(ApiClass::ObjectPut, 9, now, &format!("f9/key-{k}"))
                    .is_some(),
            );
        }
        assert_eq!(outcomes.len(), 2, "resource salt failed to decorrelate");
    }

    #[test]
    fn burst_window_gates_injection() {
        let plan = FaultPlan::new(1)
            .with_transient(ApiClass::TopicPublish, 1.0)
            .with_burst(ApiClass::TopicPublish, 1000, 200);
        let plane = FaultPlane::new(Some(plan));
        // Inside the window: always fires (rate 1.0).
        assert!(plane
            .check(
                ApiClass::TopicPublish,
                1,
                VirtualTime::from_micros(2100),
                "t"
            )
            .is_some());
        // Outside the window: never fires.
        assert_eq!(
            plane.check(
                ApiClass::TopicPublish,
                1,
                VirtualTime::from_micros(2500),
                "t"
            ),
            None
        );
    }

    #[test]
    fn throttle_band_sits_above_transient() {
        let plan = FaultPlan::new(5)
            .with_transient(ApiClass::QueueReceive, 0.15)
            .with_throttle(ApiClass::QueueReceive, 0.15);
        let plane = FaultPlane::new(Some(plan));
        let (mut transients, mut throttles) = (0, 0);
        for t in 0..4000u64 {
            match plane.check(
                ApiClass::QueueReceive,
                2,
                VirtualTime::from_micros(t * 313),
                "q",
            ) {
                Some(FaultKind::Transient) => transients += 1,
                Some(FaultKind::Throttle) => throttles += 1,
                _ => {}
            }
        }
        assert!(transients > 300 && throttles > 300);
    }

    #[test]
    fn targeted_fault_fires_on_nth_match_once() {
        let plane = FaultPlane::disabled();
        plane.inject(TargetedFault::first(ApiClass::ObjectGet, "f3/").nth_match(3));
        assert!(plane.is_active());
        assert_eq!(plane.pending_targets(), 1);
        let now = VirtualTime::ZERO;
        // Non-matching resource never counts.
        assert_eq!(plane.check(ApiClass::ObjectGet, 1, now, "f4/x"), None);
        // Wrong class never counts.
        assert_eq!(plane.check(ApiClass::ObjectPut, 1, now, "f3/x"), None);
        assert_eq!(plane.check(ApiClass::ObjectGet, 1, now, "f3/a"), None);
        assert_eq!(plane.check(ApiClass::ObjectGet, 1, now, "f3/b"), None);
        assert_eq!(
            plane.check(ApiClass::ObjectGet, 1, now, "f3/c"),
            Some(FaultKind::Transient)
        );
        // One-shot: consumed after firing.
        assert_eq!(plane.check(ApiClass::ObjectGet, 1, now, "f3/d"), None);
        assert_eq!(plane.pending_targets(), 0);
        assert_eq!(plane.stats().injected_for(ApiClass::ObjectGet), 1);
    }

    #[test]
    fn fault_kinds_map_to_errors() {
        assert!(FaultKind::Transient.to_error("x").is_retryable());
        assert!(FaultKind::Throttle.to_error("x").is_retryable());
        assert!(!FaultKind::Permanent.to_error("x").is_retryable());
    }
}
