//! Latency model for the simulated cloud services.
//!
//! Figures are round-trip latencies observed from inside a Lambda-class
//! container in the same region as the services, per published measurements
//! and the ranges reported in the serverless-analytics literature (Lambada,
//! Starling, PyWren). Each call site draws a deterministic jitter factor so
//! runs are reproducible per seed but not artificially smooth.

use std::sync::atomic::{AtomicU64, Ordering};

/// Latency/throughput parameters, in microseconds and bytes/second.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// SNS `PublishBatch` API round trip.
    pub sns_publish_us: u64,
    /// Topic → queue fan-out delivery delay (filter evaluation + enqueue).
    pub sns_delivery_us: u64,
    /// SQS `ReceiveMessage` round trip (non-empty response).
    pub sqs_poll_us: u64,
    /// SQS `DeleteMessageBatch` round trip.
    pub sqs_delete_us: u64,
    /// S3 `PUT` first-byte latency.
    pub s3_put_us: u64,
    /// S3 `GET` first-byte latency.
    pub s3_get_us: u64,
    /// S3 `LIST` round trip.
    pub s3_list_us: u64,
    /// S3 per-stream bandwidth, bytes/second (PUT and GET bodies).
    pub s3_bandwidth_bps: u64,
    /// SNS/SQS per-message body bandwidth, bytes/second.
    pub mq_bandwidth_bps: u64,
    /// Lambda `Invoke` API round trip (asynchronous invocation accepted).
    pub lambda_invoke_us: u64,
    /// Cold-start delay before a fresh instance runs user code.
    pub lambda_cold_start_us: u64,
    /// Direct-exchange NAT punch / handshake round trip (one-time per
    /// connection pair; relayed through the hole-punching rendezvous).
    pub direct_punch_us: u64,
    /// Direct-exchange per-message latency over an established punched
    /// connection (in-region TCP round trip, no service API in the path).
    pub direct_latency_us: u64,
    /// Direct-exchange per-connection bandwidth, bytes/second.
    pub direct_bandwidth_bps: u64,
    /// Relative jitter half-width (0.2 = ±20 %); 0 disables jitter.
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            sns_publish_us: 12_000,
            sns_delivery_us: 35_000,
            sqs_poll_us: 8_000,
            sqs_delete_us: 5_000,
            s3_put_us: 25_000,
            s3_get_us: 15_000,
            s3_list_us: 20_000,
            s3_bandwidth_bps: 85_000_000,
            mq_bandwidth_bps: 60_000_000,
            lambda_invoke_us: 30_000,
            lambda_cold_start_us: 250_000,
            direct_punch_us: 40_000,
            direct_latency_us: 700,
            direct_bandwidth_bps: 160_000_000,
            jitter: 0.15,
        }
    }
}

impl LatencyModel {
    /// A model with no jitter — bit-identical timing across runs, used by
    /// the deterministic tests and cost-model validation.
    pub fn deterministic() -> LatencyModel {
        LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        }
    }

    /// Transfer time for `bytes` at `bps`, in microseconds.
    pub fn transfer_us(bytes: usize, bps: u64) -> u64 {
        if bps == 0 {
            return 0;
        }
        (bytes as u128 * 1_000_000 / bps as u128) as u64
    }

    /// S3 PUT duration for a body of `bytes`.
    pub fn s3_put_total_us(&self, bytes: usize) -> u64 {
        self.s3_put_us + Self::transfer_us(bytes, self.s3_bandwidth_bps)
    }

    /// S3 GET duration for a body of `bytes`.
    pub fn s3_get_total_us(&self, bytes: usize) -> u64 {
        self.s3_get_us + Self::transfer_us(bytes, self.s3_bandwidth_bps)
    }

    /// SNS publish duration for a batch totalling `bytes`.
    pub fn sns_publish_total_us(&self, bytes: usize) -> u64 {
        self.sns_publish_us + Self::transfer_us(bytes, self.mq_bandwidth_bps)
    }

    /// SQS poll duration returning `bytes` of bodies.
    pub fn sqs_poll_total_us(&self, bytes: usize) -> u64 {
        self.sqs_poll_us + Self::transfer_us(bytes, self.mq_bandwidth_bps)
    }

    /// Direct-exchange send duration for a frame of `bytes` over an
    /// already-punched connection.
    pub fn direct_send_total_us(&self, bytes: usize) -> u64 {
        self.direct_latency_us + Self::transfer_us(bytes, self.direct_bandwidth_bps)
    }
}

/// Deterministic jitter source: a seeded counter hashed per draw, producing
/// factors in `[1 − j, 1 + j]`. Thread-safe and allocation-free.
#[derive(Debug)]
pub struct Jitter {
    state: AtomicU64,
    half_width: f64,
}

impl Jitter {
    /// Creates a jitter source; `half_width` typically comes from
    /// [`LatencyModel::jitter`].
    pub fn new(seed: u64, half_width: f64) -> Jitter {
        Jitter {
            state: AtomicU64::new(seed | 1),
            half_width,
        }
    }

    /// Applies a fresh jitter factor to a duration in microseconds.
    pub fn apply(&self, us: u64) -> u64 {
        if self.half_width == 0.0 {
            return us;
        }
        let u = self.unit() * 2.0 - 1.0; // uniform in [-1, 1)
        let factor = 1.0 + u * self.half_width;
        (us as f64 * factor).round().max(0.0) as u64
    }

    /// A fresh deterministic uniform draw in `[0, 1)`, independent of the
    /// jitter half-width (used for sampling decisions such as short-poll
    /// visibility).
    pub fn unit(&self) -> f64 {
        let n = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        (splitmix(n) >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        assert_eq!(LatencyModel::transfer_us(1_000_000, 1_000_000), 1_000_000);
        assert_eq!(LatencyModel::transfer_us(0, 1_000_000), 0);
        assert_eq!(LatencyModel::transfer_us(500, 0), 0);
    }

    #[test]
    fn totals_include_base_and_body() {
        let m = LatencyModel::deterministic();
        assert_eq!(m.s3_put_total_us(0), m.s3_put_us);
        assert!(m.s3_put_total_us(10_000_000) > m.s3_put_us + 100_000);
        assert!(m.sns_publish_total_us(256 * 1024) > m.sns_publish_us);
    }

    #[test]
    fn zero_jitter_is_identity() {
        let j = Jitter::new(1, 0.0);
        for us in [0u64, 1, 1000, 123_456] {
            assert_eq!(j.apply(us), us);
        }
    }

    #[test]
    fn jitter_stays_in_band_and_varies() {
        let j = Jitter::new(7, 0.2);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = j.apply(10_000);
            assert!((8_000..=12_000).contains(&v), "jittered {v} outside ±20%");
            distinct.insert(v);
        }
        assert!(distinct.len() > 50, "jitter barely varies");
    }

    #[test]
    fn unit_draws_cover_the_interval() {
        let j = Jitter::new(9, 0.0);
        let draws: Vec<f64> = (0..1000).map(|_| j.unit()).collect();
        assert!(draws.iter().all(|&u| (0.0..1.0).contains(&u)));
        let below = draws.iter().filter(|&&u| u < 0.5).count();
        assert!(
            (350..650).contains(&below),
            "unit() heavily skewed: {below}/1000 below 0.5"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = Jitter::new(42, 0.1);
        let b = Jitter::new(42, 0.1);
        let va: Vec<u64> = (0..20).map(|_| a.apply(5_000)).collect();
        let vb: Vec<u64> = (0..20).map(|_| b.apply(5_000)).collect();
        assert_eq!(va, vb);
    }
}
