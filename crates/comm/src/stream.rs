//! λScale-style weight multicast down the launch cascade.
//!
//! On a cold tree launch every worker used to fetch its weight partition
//! from object storage independently. λScale ("λScale: Enabling Fast
//! Scaling for Serverless Large Language Model Inference") shows the
//! faster shape: the first instance fetches once and *multicasts* model
//! state down the scaling tree while loading its own partition. The
//! launch cascade (`fsd_faas::launch::children_of`) is already that tree;
//! this module is the fabric the weight blocks ride on.
//!
//! The model mirrors [`crate::direct`]: frames move at direct-exchange
//! bandwidth with **zero per-frame API cost**, are stamped with the
//! sender's virtual clock after the transfer (so forwarded bytes are
//! billed — as [`crate::meter::MeterSnapshot::weight_bytes`] — to the
//! *forwarding* flow's lane, and chaos replays stay bit-identical under
//! any thread interleaving), and the receive path is a free
//! real-time-grace [`WeightNet::fetch`] whose timing is settled later by
//! observing the per-frame stamps — which is exactly what makes λScale's
//! execute-while-load expressible: a worker's clock only waits for the
//! layers it actually touches.
//!
//! Frames are addressed hop-by-hop: a mailbox is keyed `(flow, hop)` and
//! each frame names its final destination rank, so an interior worker of
//! a deep tree keeps its own blocks and relays the rest toward their
//! destination on its own lane. [`ApiClass::WeightStream`] faults
//! intercept block sends; a faulted send kills the stream below that hop
//! (the sender emits [`WeightPayload::Abort`] and every descendant falls
//! back to an independent load).

use crate::fault::{ApiClass, FaultPlane};
use crate::latency::{Jitter, LatencyModel};
use crate::message::CommError;
use crate::meter::ServiceMeter;
use crate::time::{VClock, VirtualTime};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Real-time grace used by [`WeightNet::fetch`] before returning whatever
/// has arrived so far (virtual timing never depends on this).
const REAL_WAIT_LONG: Duration = Duration::from_millis(150);

/// Payload of one weight-stream frame.
#[derive(Clone)]
pub enum WeightPayload {
    /// One encoded weight block — an artifact object, byte-identical to
    /// what object storage holds, so streamed decodes match independent
    /// loads bit for bit.
    Block {
        /// Artifact object key the block decodes as.
        key: String,
        /// Encoded bytes.
        body: Arc<[u8]>,
    },
    /// The sender has forwarded every block for the receiver's subtree.
    End,
    /// The stream died mid-flight; the receiver's subtree must fall back
    /// to independent loads.
    Abort,
}

/// One frame moving down the weight-stream tree.
#[derive(Clone)]
pub struct WeightFrame {
    /// Final destination rank. Relays forward frames whose `dst` is not
    /// their own rank; control frames carry the hop's own rank.
    pub dst: usize,
    /// Payload.
    pub payload: WeightPayload,
    /// Virtual instant the frame lands in the hop's mailbox.
    pub available_at: VirtualTime,
}

/// The weight-multicast fabric of one region: per-`(flow, hop)` mailboxes
/// of in-flight weight frames.
pub struct WeightNet {
    mailboxes: Mutex<HashMap<(u64, usize), Vec<WeightFrame>>>,
    cond: Condvar,
    meter: Arc<ServiceMeter>,
    latency: LatencyModel,
    jitter: Arc<Jitter>,
    faults: Arc<FaultPlane>,
}

impl WeightNet {
    pub(crate) fn new(
        meter: Arc<ServiceMeter>,
        latency: LatencyModel,
        jitter: Arc<Jitter>,
        faults: Arc<FaultPlane>,
    ) -> WeightNet {
        WeightNet {
            mailboxes: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            meter,
            latency,
            jitter,
            faults,
        }
    }

    fn push(&self, flow: u64, hop: usize, frame: WeightFrame) {
        self.mailboxes
            .lock()
            .entry((flow, hop))
            .or_default()
            .push(frame);
        self.cond.notify_all();
    }

    /// Sends one weight block to `hop`, addressed to `dst`, on the
    /// caller's lane clock. The transfer elapses at direct-exchange
    /// bandwidth whether or not it succeeds; on success the frame is
    /// stamped with the sender's clock and the bytes are attributed to
    /// the sender's (forwarding) flow. [`ApiClass::WeightStream`] faults
    /// surface here — a failed send delivers nothing.
    pub fn send_block(
        &self,
        clock: &mut VClock,
        hop: usize,
        dst: usize,
        key: &str,
        body: Arc<[u8]>,
    ) -> Result<(), CommError> {
        let flow = clock.flow();
        let fault = self
            .faults
            .check(ApiClass::WeightStream, flow, clock.now(), key);
        clock.advance_micros(
            self.jitter
                .apply(self.latency.direct_send_total_us(body.len())),
        );
        if let Some(kind) = fault {
            return Err(kind.to_error(format!("weight-stream:{key}")));
        }
        self.meter.record_weight_send(flow, 1, body.len() as u64);
        self.push(
            flow,
            hop,
            WeightFrame {
                dst,
                payload: WeightPayload::Block {
                    key: key.to_string(),
                    body,
                },
                available_at: clock.now(),
            },
        );
        Ok(())
    }

    /// Marks `hop`'s stream complete: every block for its subtree has
    /// been forwarded. Control frames are never faulted — the stream's
    /// outcome must reach the receiver either way.
    pub fn send_end(&self, clock: &mut VClock, hop: usize) {
        self.send_control(clock, hop, WeightPayload::End);
    }

    /// Aborts `hop`'s stream: the receiver (and its whole subtree) must
    /// fall back to an independent load.
    pub fn send_abort(&self, clock: &mut VClock, hop: usize) {
        self.send_control(clock, hop, WeightPayload::Abort);
    }

    fn send_control(&self, clock: &mut VClock, hop: usize, payload: WeightPayload) {
        clock.advance_micros(self.jitter.apply(self.latency.direct_latency_us));
        let flow = clock.flow();
        self.meter.record_weight_send(flow, 1, 0);
        self.push(
            flow,
            hop,
            WeightFrame {
                dst: hop,
                payload,
                available_at: clock.now(),
            },
        );
    }

    /// Raw mailbox read for the deterministic receive path: blocks
    /// briefly in *real* time while no more than `known` frames sit under
    /// `(flow, hop)`, then returns every frame — no clock movement. The
    /// receiver settles timing lazily by observing frame stamps as the
    /// blocks are actually decoded (execute-while-load).
    pub fn fetch(&self, flow: u64, hop: usize, known: usize) -> Vec<WeightFrame> {
        let key = (flow, hop);
        let mut state = self.mailboxes.lock();
        let grab =
            |s: &HashMap<(u64, usize), Vec<WeightFrame>>| s.get(&key).cloned().unwrap_or_default();
        let mut found = grab(&state);
        if found.len() <= known {
            let deadline = std::time::Instant::now() + REAL_WAIT_LONG;
            while found.len() <= known {
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    break;
                }
                self.cond.wait_for(&mut state, timeout);
                found = grab(&state);
            }
        }
        found
    }

    /// Tears down one hop's mailbox (the receiver calls this once its
    /// stream has ended — each hop has exactly one receiver, so a drained
    /// mailbox is dead weight). Returns the number of frames dropped.
    pub fn close_hop(&self, flow: u64, hop: usize) -> usize {
        let frames = self
            .mailboxes
            .lock()
            .remove(&(flow, hop))
            .map_or(0, |v| v.len());
        self.cond.notify_all();
        frames
    }

    /// Tears down every mailbox the flow holds. Returns the number of
    /// frames dropped.
    pub fn close_flow(&self, flow: u64) -> usize {
        let mut state = self.mailboxes.lock();
        let mut frames = 0usize;
        state.retain(|&(f, _), v| {
            if f == flow {
                frames += v.len();
                false
            } else {
                true
            }
        });
        drop(state);
        self.cond.notify_all();
        frames
    }

    /// Undrained frames across all flows (residue audit).
    pub fn undrained_frames(&self) -> usize {
        self.mailboxes.lock().values().map(Vec::len).sum()
    }

    /// Drops every mailbox (between benchmark repetitions; never while a
    /// launch is in flight).
    pub fn reset(&self) {
        self.mailboxes.lock().clear();
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, TargetedFault};

    fn net() -> WeightNet {
        WeightNet::new(
            Arc::new(ServiceMeter::new()),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(3, 0.0)),
            Arc::new(FaultPlane::new(None)),
        )
    }

    #[test]
    fn block_send_bills_the_forwarding_flow_and_stamps() {
        let n = net();
        let mut clock = VClock::default().with_flow(7);
        n.send_block(
            &mut clock,
            1,
            3,
            "model/p4/w3/L0",
            Arc::from(&b"weights"[..]),
        )
        .expect("send");
        let snap = n.meter.snapshot();
        assert_eq!(snap.weight_frames, 1);
        assert_eq!(snap.weight_bytes, 7);
        assert_eq!(n.meter.flow_snapshot(7).weight_bytes, 7);
        assert_eq!(
            clock.now().as_micros(),
            n.latency.direct_send_total_us(7),
            "transfer elapses on the sender's lane"
        );
        let frames = n.fetch(7, 1, 0);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].dst, 3);
        assert_eq!(frames[0].available_at, clock.now());
        match &frames[0].payload {
            WeightPayload::Block { key, body } => {
                assert_eq!(key, "model/p4/w3/L0");
                assert_eq!(&body[..], b"weights");
            }
            _ => panic!("expected a block"),
        }
        n.meter.release_flow(7);
    }

    #[test]
    fn control_frames_are_free_of_bytes_but_counted() {
        let n = net();
        let mut clock = VClock::default().with_flow(2);
        n.send_end(&mut clock, 5);
        n.send_abort(&mut clock, 5);
        let snap = n.meter.snapshot();
        assert_eq!(snap.weight_frames, 2);
        assert_eq!(snap.weight_bytes, 0);
        let frames = n.fetch(2, 5, 1);
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0].payload, WeightPayload::End));
        assert!(matches!(frames[1].payload, WeightPayload::Abort));
        assert_eq!(frames[0].dst, 5, "control frames address the hop itself");
    }

    #[test]
    fn injected_fault_elapses_but_delivers_and_bills_nothing() {
        let n = WeightNet::new(
            Arc::new(ServiceMeter::new()),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(3, 0.0)),
            Arc::new(FaultPlane::new(Some(FaultPlan::new(1)))),
        );
        n.faults
            .inject(TargetedFault::first(ApiClass::WeightStream, "w2/L1"));
        let mut clock = VClock::default().with_flow(9);
        let err = n
            .send_block(&mut clock, 2, 2, "model/p4/w2/L1", Arc::from(&b"x"[..]))
            .expect_err("injected stream fault");
        assert!(err.is_retryable());
        assert!(clock.now() > VirtualTime::ZERO, "failed transfer elapses");
        assert_eq!(n.meter.snapshot().weight_frames, 0);
        assert_eq!(n.undrained_frames(), 0);
        // The schedule is one-shot: a later frame moves again.
        n.send_block(&mut clock, 2, 2, "model/p4/w2/L1", Arc::from(&b"x"[..]))
            .expect("retry succeeds");
        assert_eq!(n.undrained_frames(), 1);
        n.meter.release_flow(9);
    }

    #[test]
    fn fetch_honors_known_and_isolates_hops() {
        let n = net();
        let mut clock = VClock::default().with_flow(4);
        n.send_block(&mut clock, 1, 1, "a", Arc::from(&b"a"[..]))
            .expect("send");
        n.send_block(&mut clock, 1, 1, "b", Arc::from(&b"b"[..]))
            .expect("send");
        assert_eq!(n.fetch(4, 1, 2).len(), 2);
        assert!(n.fetch(4, 2, 0).is_empty());
        assert!(n.fetch(5, 1, 0).is_empty());
        n.meter.release_flow(4);
    }

    #[test]
    fn concurrent_sender_wakes_a_fetching_receiver() {
        let n = Arc::new(net());
        let reader = {
            let n = n.clone();
            std::thread::spawn(move || n.fetch(1, 6, 0))
        };
        let mut clock = VClock::default().with_flow(1);
        n.send_block(&mut clock, 6, 6, "k", Arc::from(&b"z"[..]))
            .expect("send");
        let frames = reader.join().expect("reader");
        assert_eq!(frames.len(), 1);
        n.meter.release_flow(1);
    }

    #[test]
    fn close_flow_drops_only_that_flow() {
        let n = net();
        let mut f1 = VClock::default().with_flow(1);
        let mut f2 = VClock::default().with_flow(2);
        n.send_block(&mut f1, 1, 1, "a", Arc::from(&b"a"[..]))
            .expect("send");
        n.send_end(&mut f2, 1);
        assert_eq!(n.undrained_frames(), 2);
        assert_eq!(n.close_hop(1, 2), 0, "untouched hops drop nothing");
        assert_eq!(n.close_flow(1), 1);
        assert_eq!(n.undrained_frames(), 1);
        assert_eq!(n.close_hop(2, 1), 1, "a drained hop's mailbox dies");
        n.reset();
        assert_eq!(n.undrained_frames(), 0);
        n.meter.release_flow(1);
        n.meter.release_flow(2);
    }
}
