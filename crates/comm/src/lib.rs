//! # fsd-comm — simulated serverless communication services
//!
//! The substrate replacing AWS in this reproduction: SNS-like pub-sub with
//! filter-policy fan-out ([`PubSub`]), SQS-like queues with long/short
//! polling ([`SqsQueue`]), and S3-like object storage ([`ObjectStore`]) —
//! all sharing one billing meter ([`ServiceMeter`]) and a deterministic
//! latency/jitter model ([`LatencyModel`]).
//!
//! **Timing model.** Latencies are *modeled in virtual time*, not slept:
//! each worker carries a [`VClock`]; payloads are stamped with virtual
//! availability times; receivers join their clock against the stamps. Real
//! threads still move real bytes, so distributed executions are genuinely
//! concurrent while timing stays reproducible. See `DESIGN.md` §2.
//!
//! ```
//! use fsd_comm::{bucket_name, CloudConfig, CloudEnv, VClock};
//!
//! let env = CloudEnv::new(CloudConfig::deterministic(7));
//! let mut clock = VClock::default();
//! env.object_store().put(&bucket_name(0), "k", &b"v"[..], &mut clock).unwrap();
//! let body = env.object_store().get(&bucket_name(0), "k", &mut clock).unwrap();
//! assert_eq!(&body[..], b"v");
//! assert_eq!(env.snapshot().s3_put_requests, 1);
//! ```
#![forbid(unsafe_code)]

mod direct;
mod env;
mod fault;
mod latency;
mod message;
mod meter;
mod object;
mod pubsub;
mod queue;
mod stream;
mod time;

pub use direct::{DirectFrame, DirectNet};
pub use env::{bucket_name, CloudConfig, CloudEnv};
pub use fault::{
    mix64, unit_from, ApiClass, ClassFaults, FaultKind, FaultPlan, FaultPlane, FaultStatsSnapshot,
    TargetedFault,
};
pub use latency::{Jitter, LatencyModel};
pub use message::{quota, CommError, Message, MessageAttributes, QueuedMessage, ReceivedMessage};
pub use meter::{MeterSnapshot, ServiceMeter};
pub use object::ObjectStore;
pub use pubsub::{topic_name, PubSub};
pub use queue::{PollKind, SqsQueue};
pub use stream::{WeightFrame, WeightNet, WeightPayload};
pub use time::{VClock, VirtualTime};
